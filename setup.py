"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so
``pip install -e .`` must take the legacy ``setup.py develop`` path; all
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
