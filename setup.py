"""Packaging metadata for the DTR robust-routing reproduction.

Metadata lives here (not in a ``pyproject.toml`` ``[project]`` table) so
that offline environments without ``wheel`` can still take the legacy
``setup.py develop`` path; CI installs with ``pip install -e .`` and gets
the ``repro-exp`` console entry point either way.
"""

from setuptools import find_packages, setup

setup(
    name="repro-dtr-routing",
    version="1.0.0",
    description=(
        "Reproduction of 'Balancing Performance, Robustness and "
        "Flexibility in Routing Systems' (CoNEXT 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
        ],
        # Optional JIT routing backend (routing_backend="numba").
        "jit": [
            "numba>=0.57",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-exp=repro.exp.runner:main",
        ],
    },
)
