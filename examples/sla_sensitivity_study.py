#!/usr/bin/env python3
"""SLA-bound sensitivity: is a looser SLA a substitute for robustness?

Reproduces the Section V-E investigation in miniature: sweep the SLA
bound over {25, 45, 100} ms on a RandTopo whose propagation diameter is
pinned to 25 ms, and measure (i) SLA violations across failures for the
regular routing, (ii) how the end-to-end delay distribution drifts
toward the bound, and (iii) what robust optimization adds at each bound.

The paper's counter-intuitive finding — relaxing the bound does NOT
reduce failure violations under regular optimization — emerges from the
delay distribution: flows drift up to whatever bound is offered.

Run:
    python examples/sla_sensitivity_study.py
"""

import dataclasses

import numpy as np

from repro import PAPER_CONFIG, RobustDtrOptimizer
from repro.analysis import render_table, sorted_pair_delays_ms, sparkline
from repro.config import SamplingParams, SearchParams
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization

SEED = 21
BOUNDS_MS = (25.0, 45.0, 100.0)


def build_instance():
    rng = np.random.default_rng(SEED)
    network = scale_to_diameter(
        rand_topology(12, 5.0, rng), 0.025
    )  # diameter pinned at 25 ms regardless of the SLA bound
    traffic = scale_to_utilization(
        network, dtr_traffic(12, rng, 1.0), 0.43, "mean"
    )
    return network, traffic


def search_config(theta_s: float):
    return PAPER_CONFIG.replace(
        sla=dataclasses.replace(PAPER_CONFIG.sla, theta=theta_s),
        search=SearchParams(
            phase1_diversification_interval=5,
            phase1_diversifications=2,
            phase2_diversification_interval=3,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.4,
            round_iteration_cap_factor=4,
            max_iterations=200,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=3, max_extra_samples=800
        ),
    )


def main() -> None:
    network, traffic = build_instance()
    print(f"instance: {network}, diameter fixed at 25 ms\n")

    rows = []
    for bound_ms in BOUNDS_MS:
        config = search_config(bound_ms / 1e3)
        optimizer = RobustDtrOptimizer(
            network, traffic, config, rng=np.random.default_rng(SEED)
        )
        result = optimizer.run()
        evaluator = optimizer.evaluator

        reg = evaluator.evaluate_failures(
            result.regular_setting, result.all_failures
        )
        rob = evaluator.evaluate_failures(
            result.robust_setting, result.all_failures
        )
        delays = sorted_pair_delays_ms(
            evaluator.evaluate_normal(result.regular_setting)
        )
        print(
            f"theta={bound_ms:5.0f}ms  sorted pair delays "
            f"|{sparkline(delays)}| p90={delays[int(0.9 * len(delays))]:.1f}ms"
        )
        rows.append(
            {
                "SLA bound (ms)": bound_ms,
                "avg viol (regular)": reg.mean_violations(),
                "avg viol (robust)": rob.mean_violations(),
                "p90 delay (ms)": float(delays[int(0.9 * len(delays))]),
                "max delay (ms)": float(delays.max()),
            }
        )

    print()
    print(
        render_table(
            rows,
            title="failure violations and delay drift vs SLA bound",
        )
    )
    print(
        "\nNote how the delay distribution stretches toward each bound "
        "(no failure-tolerance margin is banked), so regular-routing "
        "violations do not vanish; robust optimization helps at every "
        "bound."
    )


if __name__ == "__main__":
    main()
