#!/usr/bin/env python3
"""Quickstart: robust DTR optimization on a small random topology.

Builds a 12-node random backbone, generates two-class gravity traffic,
runs the paper's two-phase optimizer, and compares the resulting robust
routing against the performance-only routing under every single link
failure.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import PAPER_CONFIG, RobustDtrOptimizer
from repro.analysis import render_table
from repro.config import SamplingParams, SearchParams
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization

SEED = 42


def build_instance():
    """A 12-node RandTopo carrying gravity traffic at 43 % mean load."""
    rng = np.random.default_rng(SEED)
    network = rand_topology(num_nodes=12, mean_degree=5.0, rng=rng)
    # scale propagation delays so the best-case diameter matches the
    # 25 ms SLA bound (Section V-A1)
    network = scale_to_diameter(network, PAPER_CONFIG.sla.theta)
    traffic = dtr_traffic(network.num_nodes, rng, total_volume=1.0)
    traffic = scale_to_utilization(network, traffic, 0.43, "mean")
    return network, traffic


def main() -> None:
    network, traffic = build_instance()
    print(f"instance: {network} carrying {traffic.total:.3g} bps total\n")

    # a laptop-scale search budget; PAPER_CONFIG holds the full schedule
    config = PAPER_CONFIG.replace(
        search=SearchParams(
            phase1_diversification_interval=6,
            phase1_diversifications=2,
            phase2_diversification_interval=4,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=4,
            max_iterations=300,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=3, max_extra_samples=1000
        ),
    )

    optimizer = RobustDtrOptimizer(
        network, traffic, config, rng=np.random.default_rng(SEED)
    )
    result = optimizer.run()

    print(
        f"phase 1 ({result.phase1_seconds:.1f}s): best normal cost "
        f"{result.phase1.best_cost}"
    )
    print(
        f"phase 2 ({result.phase2_seconds:.1f}s): critical set "
        f"|Ec| = {len(result.phase1.critical_arcs)} of "
        f"{network.num_arcs} arcs\n"
    )

    evaluator = optimizer.evaluator
    rows = []
    for name, setting in (
        ("regular (no robust)", result.regular_setting),
        ("robust", result.robust_setting),
    ):
        evaluation = evaluator.evaluate_failures(
            setting, result.all_failures
        )
        normal = evaluator.evaluate_normal(setting)
        rows.append(
            {
                "routing": name,
                "normal SLA violations": normal.sla.violations,
                "avg violations / failure": evaluation.mean_violations(),
                "top-10% failures": (
                    evaluation.top_fraction_mean_violations()
                ),
                "normal Phi": normal.cost.phi,
            }
        )
    print(render_table(rows, title="all single link failures"))


if __name__ == "__main__":
    main()
