#!/usr/bin/env python3
"""Traffic-uncertainty study: do robust routings survive wrong TMs?

Reproduces the Section V-F investigation in miniature: compute robust
and regular routings for *base* traffic matrices, then evaluate them
under (i) Gaussian fluctuations (epsilon = 0.2) and (ii) download
hot-spot surges, across the worst single link failures.

Run:
    python examples/traffic_uncertainty_study.py
"""

import numpy as np

from repro import PAPER_CONFIG, RobustDtrOptimizer
from repro.analysis import render_table
from repro.config import SamplingParams, SearchParams
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import (
    HotspotMode,
    HotspotSpec,
    dtr_traffic,
    fluctuate_traffic,
    hotspot,
    scale_to_utilization,
)

SEED = 33
NUM_TEST_INSTANCES = 20


def main() -> None:
    rng = np.random.default_rng(SEED)
    network = scale_to_diameter(rand_topology(12, 5.0, rng), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(12, rng, 1.0), 0.7, "max"
    )
    print(f"instance: {network}\n")

    config = PAPER_CONFIG.replace(
        search=SearchParams(
            phase1_diversification_interval=5,
            phase1_diversifications=2,
            phase2_diversification_interval=3,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.4,
            round_iteration_cap_factor=4,
            max_iterations=200,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=3, max_extra_samples=800
        ),
    )
    optimizer = RobustDtrOptimizer(
        network, traffic, config, rng=np.random.default_rng(SEED)
    )
    result = optimizer.run()
    evaluator = optimizer.evaluator

    models = {
        "base TM": lambda _: traffic,
        "gaussian eps=0.2": lambda gen: fluctuate_traffic(
            traffic, 0.2, gen
        ),
        "download hot-spot": lambda gen: hotspot(
            traffic, gen, HotspotSpec(mode=HotspotMode.DOWNLOAD)
        ),
    }

    rows = []
    test_rng = np.random.default_rng(SEED + 1)
    for model_name, perturb in models.items():
        rob_means = []
        reg_means = []
        instances = 1 if model_name == "base TM" else NUM_TEST_INSTANCES
        for _ in range(instances):
            tested = evaluator.with_traffic(perturb(test_rng))
            rob = tested.evaluate_failures(
                result.robust_setting, result.all_failures
            )
            reg = tested.evaluate_failures(
                result.regular_setting, result.all_failures
            )
            rob_means.append(rob.top_fraction_mean_violations())
            reg_means.append(reg.top_fraction_mean_violations())
        rows.append(
            {
                "traffic model": model_name,
                "instances": instances,
                "top-10% viol (robust)": tuple(rob_means),
                "top-10% viol (regular)": tuple(reg_means),
            }
        )

    print(
        render_table(
            rows,
            title=(
                "top-10% worst-failure SLA violations under traffic "
                "uncertainty (mean (std) across instances)"
            ),
        )
    )
    print(
        "\nThe robust routing keeps its lead under both uncertainty "
        "models: robustness to failures is not brittle to traffic-matrix "
        "estimation error."
    )


if __name__ == "__main__":
    main()
