#!/usr/bin/env python3
"""Beyond DTR: robust routing for three traffic classes (MTR).

The paper studies two routings (DTR) as "the most basic setting" of
Multi-Topology Routing.  This example exercises the k-class
generalization in :mod:`repro.mtr`: a voice class (25 ms SLA), a video
class (60 ms SLA) and a bulk class (congestion cost), each routed on its
own weight topology, jointly optimized for robustness to link failures.

Run:
    python examples/multi_class_mtr.py
"""

import numpy as np

from repro.analysis import render_table
from repro.config import (
    OptimizerConfig,
    SamplingParams,
    SearchParams,
    SlaParams,
    WeightParams,
)
from repro.mtr import (
    CostModel,
    MtrClass,
    MtrEvaluator,
    MtrInstance,
    MtrOptimizer,
)
from repro.routing import single_link_failures
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import gravity_matrix

SEED = 5


def main() -> None:
    rng = np.random.default_rng(SEED)
    network = scale_to_diameter(rand_topology(12, 5.0, rng), 0.025)

    # three classes: strict voice, looser video, elastic bulk
    volume = 2.5e9
    instance = MtrInstance(
        classes=(
            MtrClass(
                name="voice",
                matrix=gravity_matrix(12, rng, 0.15 * volume, name="voice"),
                cost_model=CostModel.SLA,
                priority=0,
                sla=SlaParams(theta=0.025),
            ),
            MtrClass(
                name="video",
                matrix=gravity_matrix(12, rng, 0.25 * volume, name="video"),
                cost_model=CostModel.SLA,
                priority=1,
                sla=SlaParams(theta=0.060),
            ),
            MtrClass(
                name="bulk",
                matrix=gravity_matrix(12, rng, 0.60 * volume, name="bulk"),
                cost_model=CostModel.LOAD,
                priority=2,
            ),
        )
    )
    print(
        f"instance: {network} with classes "
        f"{[c.name for c in instance.classes]}"
    )

    config = OptimizerConfig(
        weights=WeightParams(w_max=20),
        search=SearchParams(
            phase1_diversification_interval=5,
            phase1_diversifications=2,
            phase2_diversification_interval=3,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.4,
            round_iteration_cap_factor=4,
            max_iterations=200,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=3, max_extra_samples=800
        ),
        critical_fraction=0.15,
    )
    evaluator = MtrEvaluator(network, instance, config.delay)
    optimizer = MtrOptimizer(
        evaluator, config, rng=np.random.default_rng(SEED)
    )
    result = optimizer.run()

    print(f"\nregular normal cost : {result.regular_cost}")
    print(f"robust  normal cost : {result.robust_normal_cost}")
    print(
        f"critical set        : {len(result.selection)} arcs "
        f"(per-class heads kept: {result.selection.kept})"
    )

    failures = single_link_failures(network)
    rows = []
    for name, setting in (
        ("regular", result.regular_setting),
        ("robust", result.robust_setting),
    ):
        evaluation = evaluator.evaluate_failures(setting, failures)
        totals = evaluation.total_cost.values
        rows.append(
            {
                "routing": name,
                "sum voice cost (failures)": totals[0],
                "sum video cost (failures)": totals[1],
                "sum bulk cost (failures)": totals[2],
            }
        )
    print()
    print(
        render_table(
            rows, title="compounded costs over all single link failures"
        )
    )


if __name__ == "__main__":
    main()
