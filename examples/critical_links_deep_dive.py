#!/usr/bin/env python3
"""Critical-link deep dive: how the paper's selector differs from priors.

Walks through the machinery of Section IV on one instance:

1. run Phase 1 and show the per-arc failure-cost distributions that the
   criticality definition (mean minus left-tail mean) is built from;
2. show the rank-convergence index that gates Phase 1b;
3. run Algorithm 1 and compare its pick against the three prior-art
   selectors (random, load-based, fluctuation-based) by overlap and by
   realized robustness.

Run:
    python examples/critical_links_deep_dive.py
"""

import numpy as np

from repro import PAPER_CONFIG
from repro.analysis import render_table
from repro.config import SamplingParams, SearchParams
from repro.core import DtrEvaluator
from repro.core.baselines import (
    fluctuation_critical_arcs,
    load_based_critical_arcs,
    optimize_with_critical_arcs,
    random_critical_arcs,
)
from repro.core.phase1 import run_phase1
from repro.core.selection import select_critical_links
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization

SEED = 11


def main() -> None:
    rng = np.random.default_rng(SEED)
    network = scale_to_diameter(rand_topology(12, 5.0, rng), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(12, rng, 1.0), 0.43, "mean"
    )
    config = PAPER_CONFIG.replace(
        search=SearchParams(
            phase1_diversification_interval=6,
            phase1_diversifications=2,
            phase2_diversification_interval=3,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=4,
            max_iterations=250,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=4, max_extra_samples=1500
        ),
        critical_fraction=0.15,
    )
    evaluator = DtrEvaluator(network, traffic, config)
    phase1 = run_phase1(evaluator, np.random.default_rng(SEED))
    estimate = phase1.estimate
    store = phase1.store

    print(f"instance: {network}")
    print(
        f"phase 1: cost {phase1.best_cost}, {store.total_samples} "
        f"failure-cost samples ({phase1.extra_samples} from phase 1b), "
        f"ranks converged: {phase1.rank_converged}\n"
    )

    # 1. distribution widths behind the criticality values
    order = np.argsort(-estimate.rho_lam)[:5]
    rows = []
    for arc_id in order:
        samples = store.lam_samples(int(arc_id))
        arc = network.arcs[int(arc_id)]
        rows.append(
            {
                "arc": f"{arc.src}->{arc.dst}",
                "samples": samples.size,
                "mean lam": float(samples.mean()),
                "left-tail lam": float(estimate.tail_lam[arc_id]),
                "criticality rho_lam": float(estimate.rho_lam[arc_id]),
            }
        )
    print(render_table(rows, title="most delay-critical arcs (Eq. 8)"))

    # 2. Algorithm 1
    target = max(1, round(0.15 * network.num_arcs))
    selection = select_critical_links(estimate, target)
    print(
        f"\nAlgorithm 1: kept n1={selection.kept_lam} delay-ranked and "
        f"n2={selection.kept_phi} throughput-ranked arcs "
        f"(|Ec|={len(selection)}, residual errors "
        f"{selection.residual_error_lam:.3g}/"
        f"{selection.residual_error_phi:.3g})\n"
    )

    # 3. compare selectors by realized robustness
    from repro.routing.failures import FailureModel, single_failures

    all_failures = single_failures(network, FailureModel.LINK)
    selectors = {
        "paper (Algorithm 1)": selection.critical_arcs,
        "random [24]": random_critical_arcs(
            network, target, np.random.default_rng(1)
        ),
        "load-based [10]": load_based_critical_arcs(
            evaluator, phase1.best_setting, target
        ),
        "fluctuation [23]": fluctuation_critical_arcs(store, target),
    }
    rows = []
    paper_set = set(selection.critical_arcs)
    for name, arcs in selectors.items():
        phase2 = optimize_with_critical_arcs(
            evaluator, phase1, arcs, np.random.default_rng(2)
        )
        evaluation = evaluator.evaluate_failures(
            phase2.best_setting, all_failures
        )
        rows.append(
            {
                "selector": name,
                "overlap with paper": f"{len(paper_set & set(arcs))}/{target}",
                "avg viol (all failures)": evaluation.mean_violations(),
                "top-10%": evaluation.top_fraction_mean_violations(),
            }
        )
    print(render_table(rows, title="selector comparison (same budget)"))


if __name__ == "__main__":
    main()
