#!/usr/bin/env python3
"""ISP backbone study: robust routing on the 16-node North-American net.

Reproduces the paper's ISP column in miniature: optimize DTR weights on
the 16-node, 70-arc backbone, report per-failure SLA violations for the
robust and regular routings, and name the physical links the criticality
analysis deems most important.

Run:
    python examples/isp_backbone_study.py
"""

import numpy as np

from repro import PAPER_CONFIG, RobustDtrOptimizer
from repro.analysis import render_table, sparkline
from repro.config import SamplingParams, SearchParams
from repro.topology import isp_topology
from repro.topology.isp import isp_city_names
from repro.traffic import dtr_traffic, scale_to_utilization

SEED = 7


def main() -> None:
    network = isp_topology()
    cities = isp_city_names()
    rng = np.random.default_rng(SEED)
    traffic = scale_to_utilization(
        network, dtr_traffic(network.num_nodes, rng, 1.0), 0.43, "mean"
    )
    print(f"instance: {network} ({network.num_links} physical links)")

    config = PAPER_CONFIG.replace(
        search=SearchParams(
            phase1_diversification_interval=6,
            phase1_diversifications=2,
            phase2_diversification_interval=4,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=4,
            max_iterations=300,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=3, max_extra_samples=1200
        ),
        # 15 % of 70 arcs is only ~10 links; on small networks a larger
        # critical set is needed for accuracy (paper, Section IV-E1)
        critical_fraction=0.3,
    )
    optimizer = RobustDtrOptimizer(
        network, traffic, config, rng=np.random.default_rng(SEED)
    )
    result = optimizer.run()

    # name the critical links
    print("\nmost critical links (per Eq. 8-9 + Algorithm 1):")
    seen = set()
    for arc_id in result.phase1.critical_arcs:
        arc = network.arcs[arc_id]
        link = tuple(sorted((arc.src, arc.dst)))
        if link in seen:
            continue
        seen.add(link)
        print(f"  {cities[link[0]]} <-> {cities[link[1]]}")

    evaluator = optimizer.evaluator
    rob = evaluator.evaluate_failures(
        result.robust_setting, result.all_failures
    )
    reg = evaluator.evaluate_failures(
        result.regular_setting, result.all_failures
    )

    print("\nper-failure SLA violations (one char per failed link):")
    print(f"  robust    |{sparkline(rob.violations.astype(float))}|")
    print(f"  regular   |{sparkline(reg.violations.astype(float))}|")

    rows = [
        {
            "routing": "robust",
            "avg violations": rob.mean_violations(),
            "top-10%": rob.top_fraction_mean_violations(),
            "worst failure": int(rob.violations.max()),
        },
        {
            "routing": "regular",
            "avg violations": reg.mean_violations(),
            "top-10%": reg.top_fraction_mean_violations(),
            "worst failure": int(reg.violations.max()),
        },
    ]
    print()
    print(render_table(rows, title="all single link failures"))

    worst = int(np.argmax(reg.violations))
    scenario = result.all_failures[worst]
    arc = network.arcs[scenario.failed_arcs[0]]
    print(
        f"\nworst regular-routing failure: "
        f"{cities[arc.src]} <-> {cities[arc.dst]} "
        f"({reg.violations[worst]} violations; robust suffers "
        f"{rob.violations[worst]})"
    )


if __name__ == "__main__":
    main()
