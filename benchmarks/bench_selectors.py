"""Benchmark: selectors supporting/extension experiment (quick preset).

Writes the rendered rows/series to benchmark_results/selectors.txt.
"""


def test_selectors(run_paper_experiment):
    result = run_paper_experiment("selectors", preset="quick", seed=0)
    assert result.rows or result.figures
