"""Distributed sweep benchmark: serial vs process-shm vs host pools.

Runs the same single-link failure sweep on a Rocketfuel-class PLTopo
instance through four executors —

* ``serial`` — the scenario-axis batched serial path,
* ``process-shm`` — shared-memory batched worker processes
  (``bench_sweep.py``'s best single-box arm),
* ``hosts-local:2`` / ``hosts-local:4`` — the distributed executor
  against forked localhost host pools (the same code path a
  ``host:port`` pool of real machines runs)

— and reports warm evaluations/sec, bytes-on-wire per task (the
distributed tickets, from the evaluator's transport accounting) next
to the published payload bytes, per-host busy/transfer counters, and a
strict bitwise parity gate across every arm (exit 1 on divergence).
Results land in ``BENCH_dist.json`` (shared ``bench_schema`` layout;
CI uploads it as an artifact)::

    python benchmarks/bench_dist.py                       # full report
    python benchmarks/bench_dist.py --nodes 40 --rounds 1   # CI smoke
    python benchmarks/bench_dist.py --hosts local:2,local:4

The parity gate always applies; ``--assert-dist-speedup`` additionally
fails the run when the best host arm lands below the bound over
serial — meaningful on dedicated hardware, deliberately not the
default because shared CI runners make wall-clock assertions flaky.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

import numpy as np
from bench_schema import bench_payload, write_payload

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.distributed import DistributedDtrEvaluator
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import ParallelDtrEvaluator
from repro.core.resilience import global_stats
from repro.core.weights import WeightSetting
from repro.routing.failures import single_link_failures
from repro.topology import powerlaw_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization

#: BA attachments per arriving node (the paper's PLTopo density).
PL_ATTACHMENTS = 3


def build_instance(num_nodes: int, seed: int):
    """A seeded, delay- and utilization-scaled PLTopo instance."""
    rng = np.random.default_rng(seed)
    network = scale_to_diameter(
        powerlaw_topology(num_nodes, PL_ATTACHMENTS, rng), 0.025
    )
    traffic = scale_to_utilization(
        network, dtr_traffic(network.num_nodes, rng, 1.0), 0.43, "mean"
    )
    return network, traffic


def sweeps_identical(a, b) -> bool:
    """Bitwise cost/load equality of two sweeps."""
    if len(a) != len(b):
        return False
    return all(
        x.cost.lam == y.cost.lam
        and x.cost.phi == y.cost.phi
        and x.sla.violations == y.sla.violations
        and np.array_equal(x.loads_delay, y.loads_delay)
        and np.array_equal(x.loads_tput, y.loads_tput)
        for x, y in zip(a.evaluations, b.evaluations)
    )


def arm_rate(evaluator, setting, scenarios, rounds: int, warmups: int):
    """Warm best-of-``rounds`` evaluations/sec plus the last sweep.

    Same methodology as ``bench_sweep.py``: untimed warmups bring host
    evaluators, routing caches and the publish-once epochs to steady
    state — the regime of Phase-2 ordered sweeps — before timing.
    """
    normal = evaluator.evaluate_normal(setting)
    sweep = None
    for _ in range(warmups):
        sweep = evaluator.evaluate_scenarios(
            setting, scenarios, reuse=normal
        )
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        sweep = evaluator.evaluate_scenarios(
            setting, scenarios, reuse=normal
        )
        best = min(best, time.perf_counter() - start)
    return len(scenarios) / best, sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes",
        type=int,
        default=100,
        help="PLTopo node count (default 100)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="workers of the process-shm reference arm (default 2)",
    )
    parser.add_argument(
        "--hosts",
        default="local:2,local:4",
        help=(
            "comma-separated host-pool specs to benchmark, each a "
            "--hosts value (default local:2,local:4)"
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds (best-of)"
    )
    parser.add_argument(
        "--warmups",
        type=int,
        default=3,
        help="untimed warmup sweeps per arm (default 3)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default="BENCH_dist.json",
        help="result JSON path (default BENCH_dist.json)",
    )
    parser.add_argument(
        "--assert-dist-speedup",
        type=float,
        default=None,
        help=(
            "exit 1 unless the best host arm reaches this factor over "
            "the batched serial path"
        ),
    )
    args = parser.parse_args(argv)

    network, traffic = build_instance(args.nodes, args.seed)
    failures = list(single_link_failures(network))
    setting = WeightSetting.random(
        network.num_arcs,
        OptimizerConfig().weights,
        np.random.default_rng(args.seed + 1),
    )
    host_specs = [s for s in args.hosts.split(",") if s]
    # "local:2,local:4" is two POOLS (split on comma), unlike the CLI's
    # --hosts where commas separate a single pool's endpoints.
    print(
        f"instance: {network.num_nodes} nodes, {network.num_arcs} arcs, "
        f"{len(failures)} failure scenarios; "
        f"shm jobs={args.jobs}; host pools: {', '.join(host_specs)}"
    )

    rates = {}
    sweeps = {}
    rows = []
    transports = {}
    host_reports = {}

    serial = DtrEvaluator(
        network,
        traffic,
        OptimizerConfig(execution=ExecutionParams(sweep_batching="on")),
    )
    rates["serial"], sweeps["serial"] = arm_rate(
        serial, setting, failures, args.rounds, args.warmups
    )
    del serial

    with ParallelDtrEvaluator(
        network,
        traffic,
        OptimizerConfig(
            execution=ExecutionParams(
                n_jobs=args.jobs, sweep_batching="on"
            )
        ),
    ) as shm:
        rates["process-shm"], sweeps["process-shm"] = arm_rate(
            shm, setting, failures, args.rounds, args.warmups
        )
        transports["process-shm"] = shm.transport_stats

    for spec in host_specs:
        arm = f"hosts-{spec}"
        with DistributedDtrEvaluator(
            network,
            traffic,
            OptimizerConfig(
                execution=ExecutionParams(
                    executor="hosts", hosts=spec, sweep_batching="on"
                )
            ),
        ) as dist:
            rates[arm], sweeps[arm] = arm_rate(
                dist, setting, failures, args.rounds, args.warmups
            )
            transports[arm] = dist.transport_stats
            host_reports[arm] = dist.host_report()

    arms = ["serial", "process-shm"] + [f"hosts-{s}" for s in host_specs]
    parity = all(
        sweeps_identical(sweeps["serial"], sweeps[arm]) for arm in arms[1:]
    )
    for arm in arms:
        stats = transports.get(arm)
        row = {
            "workload": "link-sweep",
            "arm": arm,
            "evals_per_sec": round(rates[arm], 2),
            "wire_bytes_per_task": (
                round(stats.bytes_per_task, 1) if stats else 0
            ),
            "payload_bytes": stats.payload_bytes if stats else 0,
            "result_bytes": stats.result_bytes if stats else 0,
        }
        rows.append(row)
        print(
            f"  {arm:>15}: {row['evals_per_sec']:>9.2f} evals/s  "
            f"wire/task {row['wire_bytes_per_task']:>8} B  "
            f"published {row['payload_bytes']:>9} B"
        )
    for arm, report in host_reports.items():
        for host in report:
            print(
                f"    {arm} {host['host']}: {host['tasks_done']} tasks, "
                f"{host['busy_seconds']:.3f}s busy, "
                f"{host['bytes_sent']}B out / {host['bytes_received']}B in"
            )

    best_arm = max(arms[2:], key=lambda a: rates[a]) if host_specs else None
    dist_speedup = rates[best_arm] / rates["serial"] if best_arm else 0.0
    if best_arm:
        print(
            f"  best host arm {best_arm}: {dist_speedup:.2f}x over "
            f"serial; parity={parity}"
        )

    payload = bench_payload(
        "dist",
        (
            "warm single-link failure sweeps through the batched serial "
            "path, shared-memory batched workers, and TCP host pools "
            "(forked localhost hosts; same code path as remote "
            "serve-host machines); bitwise parity gated"
        ),
        rows=rows,
        context={
            "nodes": network.num_nodes,
            "arcs": network.num_arcs,
            "scenarios": len(failures),
            "jobs": args.jobs,
            "host_pools": host_specs,
            "rounds": args.rounds,
            "warmups": args.warmups,
            "seed": args.seed,
            "attachments": PL_ATTACHMENTS,
            "dist_speedup_vs_serial": round(dist_speedup, 2),
            "parity": parity,
            "transport_stats": {
                arm: stats.as_dict() for arm, stats in transports.items()
            },
            "host_reports": host_reports,
            # Supervisor counters across every sweep of this run: all
            # zero on a healthy box; nonzero values flag that measured
            # rates include retry/degradation overhead.
            "resilience_stats": global_stats().as_dict(),
        },
    )
    write_payload(args.out, payload)

    failed = False
    if not parity:
        print(
            "FAIL: distributed sweep diverged from serial",
            file=sys.stderr,
        )
        failed = True
    if (
        args.assert_dist_speedup is not None
        and dist_speedup < args.assert_dist_speedup
    ):
        print(
            f"FAIL: dist speedup {dist_speedup:.2f}x < "
            f"{args.assert_dist_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
