"""Benchmark: regenerate fig6 of the paper (quick preset).

Runs the fig6 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig6.txt.
"""


def test_fig6(run_paper_experiment):
    result = run_paper_experiment("fig6", preset="quick", seed=0)
    assert result.rows or result.figures
