"""Benchmark: regenerate table1 of the paper (quick preset).

Runs the table1 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/table1.txt.
"""


def test_table1(run_paper_experiment):
    result = run_paper_experiment("table1", preset="quick", seed=0)
    assert result.rows or result.figures
