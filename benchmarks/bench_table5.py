"""Benchmark: regenerate table5 of the paper (quick preset).

Runs the table5 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/table5.txt.
"""


def test_table5(run_paper_experiment):
    result = run_paper_experiment("table5", preset="quick", seed=0)
    assert result.rows or result.figures
