"""Benchmark: regenerate table2 of the paper (quick preset).

Runs the table2 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/table2.txt.
"""


def test_table2(run_paper_experiment):
    result = run_paper_experiment("table2", preset="quick", seed=0)
    assert result.rows or result.figures
