"""Benchmark: diversity supporting/extension experiment (quick preset).

Writes the rendered rows/series to benchmark_results/diversity.txt.
"""


def test_diversity(run_paper_experiment):
    result = run_paper_experiment("diversity", preset="quick", seed=0)
    assert result.rows or result.figures
