"""Scenario-axis batch sweep benchmark: serial vs parallel vs shm-batched.

Runs the same single-link failure sweep on a Rocketfuel-class PLTopo
instance through four evaluator configurations —

* ``serial`` — the legacy per-scenario serial path
  (``sweep_batching=off``),
* ``serial-batched`` — the scenario-axis batch sweep engine
  (``sweep_batching=on``),
* ``parallel`` — the legacy :class:`ParallelDtrEvaluator` process path
  (by-value task payloads, per-scenario workers),
* ``parallel-shm`` — zero-copy shared-memory workers running the batch
  engine (per-sweep publish, index tickets only)

— and reports warm evaluations/sec for each, the shm speedup over the
legacy process path, per-task payload bytes (the legacy path pickles
the routings/traffic-bearing reuse evaluation into every task; the shm
path publishes once and ships ~30-byte tickets), and a strict bitwise
parity gate across every arm (exit 1 on divergence).  A composed
failure-x-surge cross sweep rides along to track the cross-product
batching gain.  Results land in ``BENCH_sweep.json`` (shared
``bench_schema`` layout; CI uploads it as an artifact)::

    python benchmarks/bench_sweep.py                      # full report
    python benchmarks/bench_sweep.py --nodes 40 --rounds 1  # CI smoke
    python benchmarks/bench_sweep.py --assert-shm-speedup 2.0

The parity gate always applies; ``--assert-shm-speedup`` additionally
fails the run when the shm-batched path lands below the bound over the
legacy process path — meaningful on dedicated hardware, deliberately
not the default because shared CI runners make wall-clock assertions
flaky.
"""

from __future__ import annotations

import argparse
import gc
import pickle
import sys
import time

import numpy as np
from bench_schema import bench_payload, write_payload

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import ParallelDtrEvaluator
from repro.core.resilience import global_stats
from repro.core.weights import WeightSetting
from repro.routing.backend import SWEEP_BATCH_MIN_SCENARIOS
from repro.routing.failures import single_link_failures
from repro.scenarios.generators import build_scenarios
from repro.topology import powerlaw_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization

#: BA attachments per arriving node (the paper's PLTopo density).
PL_ATTACHMENTS = 3


def build_instance(num_nodes: int, seed: int):
    """A seeded, delay- and utilization-scaled PLTopo instance."""
    rng = np.random.default_rng(seed)
    network = scale_to_diameter(
        powerlaw_topology(num_nodes, PL_ATTACHMENTS, rng), 0.025
    )
    traffic = scale_to_utilization(
        network, dtr_traffic(network.num_nodes, rng, 1.0), 0.43, "mean"
    )
    return network, traffic


def config_for(mode: str, jobs: int = 1) -> OptimizerConfig:
    return OptimizerConfig(
        execution=ExecutionParams(n_jobs=jobs, sweep_batching=mode)
    )


def sweeps_identical(a, b) -> bool:
    """Bitwise cost/load/delay equality of two sweeps."""
    if len(a) != len(b):
        return False
    return all(
        x.cost.lam == y.cost.lam
        and x.cost.phi == y.cost.phi
        and x.sla.violations == y.sla.violations
        and np.array_equal(x.loads_delay, y.loads_delay)
        and np.array_equal(x.loads_tput, y.loads_tput)
        and np.array_equal(x.pair_delays, y.pair_delays, equal_nan=True)
        and x.kind == y.kind
        for x, y in zip(a.evaluations, b.evaluations)
    )


def arm_rate(evaluator, setting, scenarios, rounds: int, warmups: int):
    """Warm best-of-``rounds`` evaluations/sec plus the last sweep.

    ``warmups`` untimed sweeps bring pools, routing caches, routers and
    memos to steady state first — the regime of Phase-2 ordered sweeps,
    which is what this benchmark tracks (same methodology as
    ``bench_parallel.py`` / ``bench_incremental.py``).  Several warmups
    matter for the parallel arms: chunk-to-worker assignment is not
    deterministic, so every worker needs a few sweeps to have seen
    every chunk.
    """
    normal = evaluator.evaluate_normal(setting)
    sweep = None
    for _ in range(warmups):
        sweep = evaluator.evaluate_scenarios(
            setting, scenarios, reuse=normal
        )
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        sweep = evaluator.evaluate_scenarios(
            setting, scenarios, reuse=normal
        )
        best = min(best, time.perf_counter() - start)
    return len(scenarios) / best, sweep


def legacy_task_bytes(setting, scenarios, evaluator) -> int:
    """Bytes the legacy process path pickles into ONE task.

    The by-value payload: both weight vectors, the scenario chunk, and
    the reuse evaluation with its routings attached — re-shipped with
    every task of every sweep.
    """
    normal = evaluator.evaluate_normal(setting)
    chunk = tuple(scenarios[: max(1, len(scenarios) // 8)])
    return len(
        pickle.dumps((setting.delay, setting.tput, chunk, normal))
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes",
        type=int,
        default=100,
        help="PLTopo node count (default 100)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="parallel workers (default 2)"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds (best-of)"
    )
    parser.add_argument(
        "--warmups",
        type=int,
        default=5,
        help="untimed warmup sweeps per arm (default 5)",
    )
    parser.add_argument(
        "--cross",
        default="srlgxsurge",
        help=(
            "composed cross-sweep spec for the serial cross-product rows "
            "(default srlgxsurge; empty string skips them)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default="BENCH_sweep.json",
        help="result JSON path (default BENCH_sweep.json)",
    )
    parser.add_argument(
        "--assert-shm-speedup",
        type=float,
        default=None,
        help=(
            "exit 1 unless parallel-shm reaches this factor over the "
            "legacy parallel process path"
        ),
    )
    args = parser.parse_args(argv)

    network, traffic = build_instance(args.nodes, args.seed)
    failures = list(single_link_failures(network))
    setting = WeightSetting.random(
        network.num_arcs, OptimizerConfig().weights,
        np.random.default_rng(args.seed + 1),
    )
    print(
        f"instance: {network.num_nodes} nodes, {network.num_arcs} arcs, "
        f"{len(failures)} failure scenarios; n_jobs={args.jobs}"
    )

    rows = []
    sweeps = {}
    rates = {}

    for arm, mode, jobs in (
        ("serial", "off", 1),
        ("serial-batched", "on", 1),
    ):
        evaluator = DtrEvaluator(network, traffic, config_for(mode))
        rates[arm], sweeps[arm] = arm_rate(
            evaluator, setting, failures, args.rounds, args.warmups
        )
        del evaluator
    transports = {}
    worker_busy = {}
    for arm, mode in (("parallel", "off"), ("parallel-shm", "on")):
        with ParallelDtrEvaluator(
            network, traffic, config_for(mode, args.jobs)
        ) as evaluator:
            rates[arm], sweeps[arm] = arm_rate(
                evaluator, setting, failures, args.rounds, args.warmups
            )
            transports[arm] = evaluator.transport_stats.as_dict()
            worker_busy[arm] = {
                str(pid): round(seconds, 3)
                for pid, seconds in sorted(
                    evaluator.worker_busy_seconds.items()
                )
            }

    parity = all(
        sweeps_identical(sweeps["serial"], sweeps[arm])
        for arm in ("serial-batched", "parallel", "parallel-shm")
    )
    task_bytes = legacy_task_bytes(
        setting, failures, DtrEvaluator(network, traffic, config_for("off"))
    )
    ticket_bytes = len(pickle.dumps(("psm_0123abcdef", 0, len(failures))))
    shm_speedup = rates["parallel-shm"] / rates["parallel"]
    for arm in ("serial", "serial-batched", "parallel", "parallel-shm"):
        row = {
            "workload": "link-sweep",
            "arm": arm,
            "evals_per_sec": round(rates[arm], 2),
            "per_task_payload_bytes": (
                ticket_bytes if arm == "parallel-shm" else
                task_bytes if arm == "parallel" else 0
            ),
        }
        rows.append(row)
        print(
            f"  {arm:>15}: {row['evals_per_sec']:>9.2f} evals/s  "
            f"task payload {row['per_task_payload_bytes']:>7d} B"
        )
    print(
        f"  shm-batched speedup over legacy process path: "
        f"{shm_speedup:.2f}x; parity={parity}"
    )

    cross_parity = True
    if args.cross:
        scenarios = build_scenarios(args.cross, network, args.seed)
        cross_rates = {}
        cross_sweeps = {}
        for arm, mode in (("serial", "off"), ("serial-batched", "on")):
            evaluator = DtrEvaluator(network, traffic, config_for(mode))
            cross_rates[arm], cross_sweeps[arm] = arm_rate(
                evaluator, setting, scenarios, args.rounds, args.warmups
            )
            evaluator.close()
        cross_parity = sweeps_identical(
            cross_sweeps["serial"], cross_sweeps["serial-batched"]
        )
        for arm in ("serial", "serial-batched"):
            rows.append(
                {
                    "workload": f"cross:{args.cross}",
                    "arm": arm,
                    "scenarios": len(scenarios),
                    "evals_per_sec": round(cross_rates[arm], 2),
                }
            )
        print(
            f"  cross {args.cross} ({len(scenarios)} scenarios): serial "
            f"{cross_rates['serial']:.2f} -> batched "
            f"{cross_rates['serial-batched']:.2f} evals/s "
            f"({cross_rates['serial-batched'] / cross_rates['serial']:.2f}x)"
            f"; parity={cross_parity}"
        )

    payload = bench_payload(
        "sweep",
        (
            "warm single-link failure sweeps through the four evaluator "
            "configurations (legacy serial, scenario-axis batched, "
            "legacy process-parallel, shared-memory batched parallel), "
            "plus a composed cross sweep; bitwise parity gated"
        ),
        rows=rows,
        context={
            "nodes": network.num_nodes,
            "arcs": network.num_arcs,
            "scenarios": len(failures),
            "jobs": args.jobs,
            "rounds": args.rounds,
            "warmups": args.warmups,
            "seed": args.seed,
            "attachments": PL_ATTACHMENTS,
            "sweep_batch_min_scenarios": SWEEP_BATCH_MIN_SCENARIOS,
            "shm_speedup_vs_process": round(shm_speedup, 2),
            "parity": parity and cross_parity,
            # Measured dispatch accounting of the parallel arms:
            # publishes/payload bytes (shm blocks), per-task ticket
            # bytes, and summed in-worker busy seconds (per worker pid)
            # — so payload-size regressions show up next to the rates.
            "transport_stats": transports,
            "worker_busy_seconds": worker_busy,
            # Supervisor counters across every sweep of this run: all
            # zero on a healthy box; nonzero values flag that measured
            # rates include retry/degradation overhead.
            "resilience_stats": global_stats().as_dict(),
        },
    )
    write_payload(args.out, payload)

    failed = False
    if not (parity and cross_parity):
        print("FAIL: batched sweep diverged from serial", file=sys.stderr)
        failed = True
    if (
        args.assert_shm_speedup is not None
        and shm_speedup < args.assert_shm_speedup
    ):
        print(
            f"FAIL: shm speedup {shm_speedup:.2f}x < "
            f"{args.assert_shm_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
