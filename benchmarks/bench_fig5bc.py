"""Benchmark: regenerate fig5bc of the paper (quick preset).

Runs the fig5bc experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig5bc.txt.
"""


def test_fig5bc(run_paper_experiment):
    result = run_paper_experiment("fig5bc", preset="quick", seed=0)
    assert result.rows or result.figures
