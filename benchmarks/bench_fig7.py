"""Benchmark: regenerate fig7 of the paper (quick preset).

Runs the fig7 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig7.txt.
"""


def test_fig7(run_paper_experiment):
    result = run_paper_experiment("fig7", preset="quick", seed=0)
    assert result.rows or result.figures
