"""Benchmark: regenerate fig4 of the paper (quick preset).

Runs the fig4 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig4.txt.
"""


def test_fig4(run_paper_experiment):
    result = run_paper_experiment("fig4", preset="quick", seed=0)
    assert result.rows or result.figures
