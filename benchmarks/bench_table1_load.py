"""Benchmark: regenerate table1_load of the paper (quick preset).

Runs the table1_load experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/table1_load.txt.
"""


def test_table1_load(run_paper_experiment):
    result = run_paper_experiment("table1_load", preset="quick", seed=0)
    assert result.rows or result.figures
