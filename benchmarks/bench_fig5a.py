"""Benchmark: regenerate fig5a of the paper (quick preset).

Runs the fig5a experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig5a.txt.
"""


def test_fig5a(run_paper_experiment):
    result = run_paper_experiment("fig5a", preset="quick", seed=0)
    assert result.rows or result.figures
