"""Benchmark: regenerate table3 of the paper (quick preset).

Runs the table3 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/table3.txt.
"""


def test_table3(run_paper_experiment):
    result = run_paper_experiment("table3", preset="quick", seed=0)
    assert result.rows or result.figures
