"""Micro-benchmarks of the routing substrate.

Unlike the paper-artifact benchmarks (one multi-minute round each),
these measure the genuinely hot inner operations with full
pytest-benchmark statistics: SPF + ECMP routing of one class, a complete
two-class cost evaluation, and a full single-link-failure sweep.
"""

import numpy as np
import pytest

from repro.config import PAPER_CONFIG
from repro.core.evaluation import DtrEvaluator
from repro.core.weights import WeightSetting
from repro.routing import RoutingEngine, single_link_failures
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization


@pytest.fixture(scope="module")
def instance():
    gen = np.random.default_rng(42)
    network = scale_to_diameter(rand_topology(30, 6.0, gen), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(30, gen, 1.0), 0.43, "mean"
    )
    evaluator = DtrEvaluator(network, traffic, PAPER_CONFIG)
    setting = WeightSetting.random(
        network.num_arcs, PAPER_CONFIG.weights, np.random.default_rng(1)
    )
    return network, traffic, evaluator, setting


def test_route_one_class(benchmark, instance):
    network, traffic, _, setting = instance
    engine = RoutingEngine(network)
    benchmark(
        engine.route_class, setting.delay, traffic.delay.values
    )


def test_evaluate_normal(benchmark, instance):
    _, _, evaluator, setting = instance
    benchmark(evaluator.evaluate_normal, setting)


def test_failure_sweep(benchmark, instance):
    network, _, evaluator, setting = instance
    failures = single_link_failures(network)
    normal = evaluator.evaluate_normal(setting)

    def sweep():
        return evaluator.evaluate_failures(setting, failures, reuse=normal)

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert len(result) == network.num_links
