"""Benchmark: regenerate fig3 of the paper (quick preset).

Runs the fig3 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig3.txt.
"""


def test_fig3(run_paper_experiment):
    result = run_paper_experiment("fig3", preset="quick", seed=0)
    assert result.rows or result.figures
