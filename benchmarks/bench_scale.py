"""Size-adaptive backend benchmark: Rocketfuel-class failure sweeps.

Measures full failure-sweep evaluations/sec of the cost oracle under
each routing backend — ``python`` (the pure-Python stack: per-destination
heap Dijkstra + list-based propagation kernels, tuned for backbone
scale), ``vector`` (the array-native stack: batched scipy Dijkstra over
cached CSR views + level-scheduled batch kernels), ``numba`` (the
JIT-compiled batch kernels — benched only when the optional numba
dependency is importable; its row columns are null otherwise) and
``auto`` (the size-adaptive dispatcher, the production default) — on
``powerlaw_topology`` instances at ~30/100/200/400 nodes plus the fixed
16-node ISP backbone.  Sweeps run from scratch
(``incremental_routing=False``) so the numbers measure raw
scenario-evaluation throughput of each stack; the delta-rerouting
speedups on top are tracked separately by ``bench_incremental.py``.

Two properties are recorded per size and written to
``BENCH_scale.json`` (CI uploads it as an artifact):

* **parity** — python, vector and (when available) numba sweeps
  produce bit-identical costs, loads and pair delays (integer weights
  make every reuse rule exact); the gate always applies and exits 1 on
  divergence.
* **auto adaptivity** — ``auto`` is never slower than the better fixed
  backend by more than 10 % (it picks the python stack at backbone
  scale, the vector stack at Rocketfuel scale).

Usage::

    python benchmarks/bench_scale.py                     # full report
    python benchmarks/bench_scale.py --sizes 30 100 --rounds 1   # smoke
    python benchmarks/bench_scale.py --assert-speedup 3.0 --assert-auto

``--assert-speedup X`` additionally fails the run when the vector
backend's speedup over python lands below ``X`` on every >=200-node
sweep; ``--assert-auto`` turns the 10 % auto margin into a gate.  Both
are opt-in because shared CI runners make wall-clock assertions flaky.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
from bench_schema import bench_payload, write_payload

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.weights import WeightSetting
from repro.routing.backend import (
    NUMBA_CROSSOVER_WORK,
    VECTOR_CROSSOVER_WORK,
    VECTOR_PROPAGATION_CROSSOVER_WORK,
    numba_available,
    resolve_backend,
)
from repro.routing.failures import single_link_failures
from repro.topology import isp_topology, powerlaw_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization

#: BA attachments per arriving node (the paper's PLTopo density).
PL_ATTACHMENTS = 3


def build_instance(family: str, num_nodes: int, seed: int):
    """A seeded, delay- and utilization-scaled instance."""
    rng = np.random.default_rng(seed)
    if family == "pl":
        network = powerlaw_topology(num_nodes, PL_ATTACHMENTS, rng)
    elif family == "isp":
        network = isp_topology()
    else:
        raise ValueError(f"unknown family {family!r}")
    network = scale_to_diameter(network, 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(network.num_nodes, rng, 1.0), 0.43, "mean"
    )
    return network, traffic


def scenario_budget(num_nodes: int, cap: int | None) -> int:
    """Scenarios per sweep: all of them at small sizes, bounded above.

    A full single-link sweep at 400 nodes is ~1200 scenarios; the
    python stack needs minutes for that, so large sizes time a bounded
    prefix (recorded in the JSON) — every scenario still runs through
    the parity gate arms identically.
    """
    if cap is not None:
        return cap
    return max(8, 2400 // num_nodes)


def config_for(backend: str) -> OptimizerConfig:
    return OptimizerConfig(
        execution=ExecutionParams(
            incremental_routing=False,
            routing_cache=False,
            routing_backend=backend,
        )
    )


def sweep_rate(network, traffic, setting, failures, backend: str,
               rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` evaluations/sec with a cold evaluator per round.

    Returns the rate and the last round's full sweep (for parity).
    """
    best = float("inf")
    sweep = None
    for _ in range(rounds):
        evaluator = DtrEvaluator(network, traffic, config_for(backend))
        normal = evaluator.evaluate_normal(setting)
        start = time.perf_counter()
        sweep = evaluator.evaluate_failures(setting, failures, reuse=normal)
        best = min(best, time.perf_counter() - start)
    return len(failures) / best, sweep


def sweeps_identical(a, b) -> bool:
    """Bitwise cost/load/delay equality of two failure sweeps."""
    if len(a) != len(b):
        return False
    return all(
        x.cost.lam == y.cost.lam
        and x.cost.phi == y.cost.phi
        and np.array_equal(x.loads_delay, y.loads_delay)
        and np.array_equal(x.loads_tput, y.loads_tput)
        # pair_delays carry NaN on the diagonal and demand-free columns.
        and np.array_equal(x.pair_delays, y.pair_delays, equal_nan=True)
        for x, y in zip(a.evaluations, b.evaluations)
    )


def bench_size(family: str, num_nodes: int, seed: int, rounds: int,
               cap: int | None) -> dict:
    network, traffic = build_instance(family, num_nodes, seed)
    failures = list(single_link_failures(network))
    budget = min(len(failures), scenario_budget(network.num_nodes, cap))
    failures = failures[:budget]
    rng = np.random.default_rng(seed + 1)
    setting = WeightSetting.random(
        network.num_arcs, OptimizerConfig().weights, rng
    )

    backends = ["python", "vector"]
    if numba_available():
        backends.append("numba")
    backends.append("auto")
    rates = {}
    sweeps = {}
    for backend in backends:
        rates[backend], sweeps[backend] = sweep_rate(
            network, traffic, setting, failures, backend, rounds
        )
    parity = all(
        sweeps_identical(sweeps["python"], sweeps[backend])
        for backend in backends[1:]
    )

    destinations = network.num_nodes  # gravity demand reaches every node
    auto_choice = resolve_backend(
        "auto", network.num_nodes, network.num_arcs, destinations
    )
    best_fixed = max(rates[b] for b in backends if b != "auto")
    has_numba = "numba" in rates
    row = {
        "family": network.name,
        "nodes": network.num_nodes,
        "arcs": network.num_arcs,
        "scenarios": len(failures),
        "python_evals_per_sec": round(rates["python"], 2),
        "vector_evals_per_sec": round(rates["vector"], 2),
        "numba_evals_per_sec": (
            round(rates["numba"], 2) if has_numba else None
        ),
        "auto_evals_per_sec": round(rates["auto"], 2),
        "vector_speedup": round(rates["vector"] / rates["python"], 2),
        "numba_speedup": (
            round(rates["numba"] / rates["python"], 2) if has_numba else None
        ),
        "auto_backend_choice": auto_choice,
        "auto_vs_best_fixed": round(rates["auto"] / best_fixed, 3),
        "parity": parity,
    }
    numba_part = (
        f"numba {row['numba_evals_per_sec']:>8.2f}/s "
        f"({row['numba_speedup']:.2f}x)  "
        if has_numba
        else "numba      n/a  "
    )
    print(
        f"{row['family']:>7}[{row['nodes']:>3},{row['arcs']:>5}] "
        f"{row['scenarios']:>3} scenarios: "
        f"python {row['python_evals_per_sec']:>8.2f}/s  "
        f"vector {row['vector_evals_per_sec']:>8.2f}/s "
        f"({row['vector_speedup']:.2f}x)  "
        f"{numba_part}"
        f"auto {row['auto_evals_per_sec']:>8.2f}/s "
        f"[{auto_choice}, {row['auto_vs_best_fixed']:.2f} of best]  "
        f"parity={parity}"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[30, 100, 200, 400],
        help="PLTopo node counts (default 30 100 200 400)",
    )
    parser.add_argument(
        "--skip-isp",
        action="store_true",
        help="skip the fixed 16-node ISP backbone row",
    )
    parser.add_argument(
        "--rounds", type=int, default=2, help="timing rounds (best-of)"
    )
    parser.add_argument(
        "--max-scenarios",
        type=int,
        default=None,
        help="scenarios per sweep (default: size-scaled budget)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default="BENCH_scale.json",
        help="result JSON path (default BENCH_scale.json)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help=(
            "exit 1 unless the vector speedup reaches this factor on "
            "every >=200-node sweep"
        ),
    )
    parser.add_argument(
        "--assert-auto",
        action="store_true",
        help="exit 1 if auto is >10%% slower than the better fixed backend",
    )
    args = parser.parse_args(argv)

    rows = []
    if not args.skip_isp:
        rows.append(
            bench_size("isp", 16, args.seed, args.rounds, args.max_scenarios)
        )
    for num_nodes in args.sizes:
        rows.append(
            bench_size(
                "pl", num_nodes, args.seed, args.rounds, args.max_scenarios
            )
        )

    payload = bench_payload(
        "scale",
        (
            "from-scratch failure sweeps (incremental_routing=False, "
            "routing_cache=False); delta-rerouting gains are tracked by "
            "BENCH_incremental.json"
        ),
        rows=rows,
        context={
            "crossover_work": {
                "route": VECTOR_CROSSOVER_WORK,
                "propagate": VECTOR_PROPAGATION_CROSSOVER_WORK,
                "numba": NUMBA_CROSSOVER_WORK,
            },
            "attachments": PL_ATTACHMENTS,
            "seed": args.seed,
        },
    )
    write_payload(args.out, payload)

    failed = False
    if not all(row["parity"] for row in rows):
        print("FAIL: backend parity violated", file=sys.stderr)
        failed = True
    if args.assert_speedup is not None:
        for row in rows:
            if row["nodes"] >= 200 and (
                row["vector_speedup"] < args.assert_speedup
            ):
                print(
                    f"FAIL: vector speedup {row['vector_speedup']}x < "
                    f"{args.assert_speedup}x at {row['nodes']} nodes",
                    file=sys.stderr,
                )
                failed = True
    if args.assert_auto:
        for row in rows:
            if row["auto_vs_best_fixed"] < 0.9:
                print(
                    f"FAIL: auto at {row['auto_vs_best_fixed']} of the "
                    f"best fixed backend at {row['nodes']} nodes",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
