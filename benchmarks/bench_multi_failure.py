"""Benchmark: multi_failure supporting/extension experiment (quick preset).

Writes the rendered rows/series to benchmark_results/multi_failure.txt.
"""


def test_multi_failure(run_paper_experiment):
    result = run_paper_experiment("multi_failure", preset="quick", seed=0)
    assert result.rows or result.figures
