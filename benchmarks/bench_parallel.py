"""Serial vs parallel failure-sweep benchmark with cache accounting.

Runs the same ≥50-scenario single-link-failure sweep through the serial
:class:`DtrEvaluator` and the :class:`ParallelDtrEvaluator` and reports
wall-clock speedup, per-sweep times, parity of the total cost, and the
routing-cache hit rate.  Usable two ways::

    python benchmarks/bench_parallel.py             # full report
    python benchmarks/bench_parallel.py --jobs 2 --rounds 2   # CI smoke

Pass ``--assert-speedup X`` to fail (exit 1) when the speedup lands
below ``X`` — useful on dedicated hardware, deliberately not the default
because shared CI runners make wall-clock assertions flaky.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import ParallelDtrEvaluator
from repro.core.weights import WeightSetting
from repro.routing.failures import single_link_failures
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization


def build_instance(num_nodes: int, seed: int):
    """A seeded RandTopo instance big enough for a ≥50-scenario sweep."""
    rng = np.random.default_rng(seed)
    network = scale_to_diameter(rand_topology(num_nodes, 5.0, rng), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(num_nodes, rng, 1.0), 0.43, "mean"
    )
    return network, traffic


def time_sweeps(evaluator, setting, failures, rounds: int) -> float:
    """Best-of-``rounds`` wall time of a full failure sweep (seconds)."""
    normal = evaluator.evaluate_normal(setting)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        evaluator.evaluate_failures(setting, failures, reuse=normal)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes", type=int, default=40, help="topology size (default 40)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="parallel workers (0 = one per CPU, the default)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds (best-of)"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit 1 unless speedup reaches this factor",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs or (os.cpu_count() or 1)
    network, traffic = build_instance(args.nodes, args.seed)
    failures = single_link_failures(network)
    config = OptimizerConfig()
    setting = WeightSetting.random(
        network.num_arcs, config.weights, np.random.default_rng(args.seed)
    )
    print(
        f"instance: {network.num_nodes} nodes, {network.num_arcs} arcs, "
        f"{len(failures)} failure scenarios; n_jobs={jobs}"
    )

    serial = DtrEvaluator(network, traffic, config)
    serial_time = time_sweeps(serial, setting, failures, args.rounds)
    serial_total = serial.evaluate_failures(setting, failures).total_cost

    parallel_config = config.replace(execution=ExecutionParams(n_jobs=jobs))
    with ParallelDtrEvaluator(network, traffic, parallel_config) as parallel:
        # one warmup sweep pays the pool startup outside the timing
        parallel.evaluate_failures(setting, failures)
        parallel_time = time_sweeps(parallel, setting, failures, args.rounds)
        parallel_total = parallel.evaluate_failures(
            setting, failures
        ).total_cost
        stats = parallel.cache_stats

    speedup = serial_time / parallel_time if parallel_time > 0 else 0.0
    parity = (
        serial_total.lam == parallel_total.lam
        and serial_total.phi == parallel_total.phi
    )
    print(f"serial sweep:    {serial_time * 1e3:8.1f} ms")
    print(f"parallel sweep:  {parallel_time * 1e3:8.1f} ms")
    print(f"speedup:         {speedup:8.2f}x")
    print(
        f"cache:           {stats.hit_rate:8.1%} hit rate "
        f"({stats.hits_exact} exact + {stats.hits_incremental} incremental "
        f"/ {stats.lookups} lookups)"
    )
    print(f"parity:          total_cost bit-identical = {parity}")

    if not parity:
        print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
        return 1
    if args.assert_speedup and speedup < args.assert_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x < {args.assert_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
