"""Benchmark: ablation supporting/extension experiment (quick preset).

Writes the rendered rows/series to benchmark_results/ablation.txt.
"""


def test_ablation(run_paper_experiment):
    result = run_paper_experiment("ablation", preset="quick", seed=0)
    assert result.rows or result.figures
