"""Benchmark: regenerate table4 of the paper (quick preset).

Runs the table4 experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/table4.txt.
"""


def test_table4(run_paper_experiment):
    result = run_paper_experiment("table4", preset="quick", seed=0)
    assert result.rows or result.figures
