"""Shared benchmark plumbing.

Every paper-artifact benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1)``) — these are minutes-scale workloads,
not microseconds — and records the rendered tables/series under
``benchmark_results/`` so the artifact output survives pytest's output
capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where rendered experiment output lands.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_paper_experiment(benchmark, results_dir):
    """Run one experiment under pytest-benchmark and persist its output."""

    def runner(experiment_id: str, preset: str = "quick", seed: int = 0):
        from repro.exp.runner import run_experiment

        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"preset": preset, "seed": seed},
            rounds=1,
            iterations=1,
            warmup_rounds=0,
        )
        rendered = result.render()
        (results_dir / f"{experiment_id}.txt").write_text(
            rendered + "\n", encoding="utf-8"
        )
        print()
        print(rendered)
        return result

    return runner
