"""Benchmark: resize supporting/extension experiment (quick preset).

Writes the rendered rows/series to benchmark_results/resize.txt.
"""


def test_resize(run_paper_experiment):
    result = run_paper_experiment("resize", preset="quick", seed=0)
    assert result.rows or result.figures
