"""Benchmark: regenerate timing of the paper (quick preset).

Runs the timing experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/timing.txt.
"""


def test_timing(run_paper_experiment):
    result = run_paper_experiment("timing", preset="quick", seed=0)
    assert result.rows or result.figures
