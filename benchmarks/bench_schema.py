"""Shared result schema of the ``BENCH_*.json`` trajectory records.

Every benchmark that tracks the performance trajectory PR-over-PR
(``bench_incremental.py``, ``bench_scale.py``, ``bench_sweep.py``)
writes its record through :func:`bench_payload` /
:func:`write_payload`, so the JSON artifacts stay structurally
comparable across PRs and across benchmarks:

* ``schema_version`` — bumped only on breaking layout changes;
* ``benchmark`` — the producing script's stem (``sweep``, ``scale``,
  ``incremental``);
* ``mode`` — one sentence describing what the numbers measure;
* ``context`` — benchmark-specific calibration constants and inputs
  (seeds, crossovers, sizes) worth pinning next to the numbers.  Every
  record additionally carries ``context.backend_availability`` — which
  routing backends were importable on the producing machine (and the
  numba/numpy versions) — so trajectory comparisons across PRs can
  tell a slow kernel from a missing one;
* ``rows`` — the measurements, one dict per benchmarked configuration.

The helper is deliberately dependency-free (stdlib json only) so the
benchmarks stay runnable without the package installed; the backend
probe soft-imports :mod:`repro.routing.backend` and degrades to a
stub when the package is absent.
"""

from __future__ import annotations

import json

#: Version of the shared BENCH_*.json layout.
SCHEMA_VERSION = 1


def _backend_availability() -> dict:
    """Probe which routing backends this interpreter can run."""
    try:
        from repro.routing.backend import backend_availability
    except ImportError:
        return {"python": True, "vector": None, "numba": None}
    return backend_availability()


def bench_payload(
    benchmark: str,
    mode: str,
    rows: "list[dict]",
    context: "dict | None" = None,
) -> dict:
    """Assemble one benchmark record in the shared schema."""
    full_context = dict(context or {})
    full_context.setdefault("backend_availability", _backend_availability())
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "mode": mode,
        "context": full_context,
        "rows": rows,
    }


def write_payload(path: str, payload: dict) -> None:
    """Write a record to ``path`` (pretty-printed, trailing newline)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
