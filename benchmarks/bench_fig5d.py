"""Benchmark: regenerate fig5d of the paper (quick preset).

Runs the fig5d experiment once under pytest-benchmark and writes the
rendered rows/series to benchmark_results/fig5d.txt.
"""


def test_fig5d(run_paper_experiment):
    result = run_paper_experiment("fig5d", preset="quick", seed=0)
    assert result.rows or result.figures
