"""Incremental delta-rerouting benchmark: Phase-2 inner loop, on vs off.

Runs the *actual* seeded Phase-2 robust search (candidate moves,
constraint checks, bounded failure sweeps with pruning) twice — once
with ``incremental_routing`` on, once off — on the same instance and
seeds, and reports evaluations/sec for both, the speedup, and a strict
parity gate: the two runs must produce identical best settings, costs,
and evaluation counts, and a full failure sweep must be bit-identical.
A from-scratch-vs-incremental sweep microbenchmark rides along.

Results are written to ``BENCH_incremental.json`` so the perf
trajectory is tracked PR-over-PR (CI uploads it as an artifact)::

    python benchmarks/bench_incremental.py                  # full report
    python benchmarks/bench_incremental.py --iterations 3 --rounds 2
    python benchmarks/bench_incremental.py --assert-speedup 3.0

The parity gate always applies (exit 1 on divergence);
``--assert-speedup`` additionally fails the run when the Phase-2
speedup lands below the bound — meaningful on dedicated hardware,
deliberately not the default because shared CI runners make wall-clock
assertions flaky.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
from bench_schema import bench_payload, write_payload

from repro.config import (
    ExecutionParams,
    OptimizerConfig,
    SamplingParams,
    SearchParams,
)
from repro.core.evaluation import DtrEvaluator
from repro.core.phase1 import run_phase1
from repro.core.phase2 import RobustConstraints, run_phase2
from repro.routing.failures import single_link_failures
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization


def build_instance(num_nodes: int, degree: float, seed: int):
    """A seeded RandTopo instance at the paper's 43 % mean utilization."""
    rng = np.random.default_rng(seed)
    network = scale_to_diameter(rand_topology(num_nodes, degree, rng), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(num_nodes, rng, 1.0), 0.43, "mean"
    )
    return network, traffic


def config_for(iterations: int, incremental: bool) -> OptimizerConfig:
    """A compact seeded two-phase schedule with the knob set."""
    return OptimizerConfig(
        search=SearchParams(
            phase1_diversification_interval=5,
            phase1_diversifications=1,
            phase2_diversification_interval=4,
            phase2_diversifications=1,
            improvement_cutoff=0.01,
            round_iteration_cap_factor=2,
            arcs_per_iteration_fraction=0.5,
            max_iterations=iterations,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=2, max_extra_samples=100
        ),
        execution=ExecutionParams(incremental_routing=incremental),
    )


def run_phase2_arm(network, traffic, config, failures, pool, constraints,
                   seed: int):
    """One timed Phase-2 run; returns (result, evaluations, seconds)."""
    evaluator = DtrEvaluator(network, traffic, config)
    before = evaluator.num_evaluations
    start = time.perf_counter()
    result = run_phase2(
        evaluator,
        failures,
        pool,
        constraints,
        np.random.default_rng(seed),
    )
    elapsed = time.perf_counter() - start
    return result, evaluator.num_evaluations - before, elapsed


def sweep_rate(evaluator, setting, failures, rounds: int):
    """Best-of-``rounds`` evaluations/sec of a full failure sweep."""
    normal = evaluator.evaluate_normal(setting)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        evaluator.evaluate_failures(setting, failures, reuse=normal)
        best = min(best, time.perf_counter() - start)
    return len(failures) / best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes", type=int, default=30, help="topology size (default 30)"
    )
    parser.add_argument(
        "--degree", type=float, default=4.5, help="mean degree (default 4.5)"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=8,
        help="per-phase iteration cap of the seeded search (default 8)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="sweep timing rounds (best-of)"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out",
        default="BENCH_incremental.json",
        help="result JSON path (default BENCH_incremental.json)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit 1 unless the Phase-2 speedup reaches this factor",
    )
    args = parser.parse_args(argv)

    network, traffic = build_instance(args.nodes, args.degree, args.seed)
    failures = single_link_failures(network)
    print(
        f"instance: {network.num_nodes} nodes, {network.num_arcs} arcs, "
        f"{len(failures)} failure scenarios"
    )

    # Phase 1 once (pinned invariant to the knob) for starts + constraints.
    config_on = config_for(args.iterations, incremental=True)
    config_off = config_for(args.iterations, incremental=False)
    p1 = run_phase1(
        DtrEvaluator(network, traffic, config_on),
        np.random.default_rng(args.seed + 1),
    )
    constraints = RobustConstraints(
        p1.best_cost.lam, p1.best_cost.phi, config_on.sampling.chi
    )

    # The Phase-2 inner loop, timed with the knob on and off.
    result_on, evals_on, time_on = run_phase2_arm(
        network, traffic, config_on, failures, p1.pool, constraints,
        args.seed + 2,
    )
    result_off, evals_off, time_off = run_phase2_arm(
        network, traffic, config_off, failures, p1.pool, constraints,
        args.seed + 2,
    )
    rate_on = evals_on / time_on
    rate_off = evals_off / time_off
    speedup = rate_on / rate_off if rate_off else 0.0

    phase2_parity = (
        evals_on == evals_off
        and result_on.best_kfail == result_off.best_kfail
        and result_on.normal_cost == result_off.normal_cost
        and result_on.best_setting == result_off.best_setting
        and result_on.stats.evaluations == result_off.stats.evaluations
    )

    # Sweep microbenchmark + bit-level parity of every scenario cost.
    eval_on = DtrEvaluator(network, traffic, config_on)
    eval_off = DtrEvaluator(network, traffic, config_off)
    sweep_on = sweep_rate(
        eval_on, result_on.best_setting, failures, args.rounds
    )
    sweep_off = sweep_rate(
        eval_off, result_on.best_setting, failures, args.rounds
    )
    full_on = eval_on.evaluate_failures(result_on.best_setting, failures)
    full_off = eval_off.evaluate_failures(result_on.best_setting, failures)
    sweep_parity = all(
        a.cost.lam == b.cost.lam
        and a.cost.phi == b.cost.phi
        and np.array_equal(a.loads_delay, b.loads_delay)
        and np.array_equal(a.loads_tput, b.loads_tput)
        for a, b in zip(full_on.evaluations, full_off.evaluations)
    )

    print(f"phase-2 inner loop ({evals_on} evaluations):")
    print(f"  scratch:     {rate_off:8.0f} evaluations/s")
    print(f"  incremental: {rate_on:8.0f} evaluations/s")
    print(f"  speedup:     {speedup:8.2f}x")
    print(f"full failure sweep: {sweep_off:.0f} -> {sweep_on:.0f} "
          f"evaluations/s ({sweep_on / sweep_off:.2f}x)")
    print(f"parity: phase2={phase2_parity} sweep={sweep_parity}")

    payload = bench_payload(
        "incremental",
        (
            "seeded Phase-2 inner loop and full failure sweeps with "
            "incremental_routing on vs off, with bitwise parity gates"
        ),
        rows=[
            {
                "workload": "phase2",
                "evaluations": evals_on,
                "scratch_evals_per_sec": round(rate_off, 1),
                "incremental_evals_per_sec": round(rate_on, 1),
                "speedup": round(speedup, 2),
                "parity": phase2_parity,
            },
            {
                "workload": "sweep",
                "scratch_evals_per_sec": round(sweep_off, 1),
                "incremental_evals_per_sec": round(sweep_on, 1),
                "speedup": round(sweep_on / sweep_off, 2),
                "parity": sweep_parity,
            },
        ],
        context={
            "nodes": network.num_nodes,
            "arcs": network.num_arcs,
            "scenarios": len(failures),
            "degree": args.degree,
            "seed": args.seed,
        },
    )
    write_payload(args.out, payload)

    if not (phase2_parity and sweep_parity):
        print("FAIL: incremental evaluation diverged from scratch",
              file=sys.stderr)
        return 1
    if args.assert_speedup and speedup < args.assert_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x < {args.assert_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
