"""The unified scenario subsystem: failures × traffic variants.

One :class:`Scenario` composes a topology perturbation (failed arcs,
removed nodes — the legacy
:class:`~repro.routing.failures.FailureScenario`) with an optional
:class:`TrafficVariant` (gravity rescale, Gaussian fluctuation, hot-spot
surge).  A :class:`ScenarioSet` is the ordered collection every
evaluation layer speaks — see
:meth:`repro.core.evaluation.DtrEvaluator.evaluate_scenarios` — with
seeded generators for SRLGs, k-link failures, regional failures, node
failures, traffic surges and failure×surge cross products in
:mod:`repro.scenarios.generators`.
"""

from repro.scenarios.generators import (
    DEFAULT_MAX_SCENARIOS,
    DEFAULT_SURGE_COUNT,
    FAMILIES,
    build_scenarios,
    cross,
    gaussian_surges,
    gravity_rescales,
    hotspot_surges,
    k_link_failures,
    legacy_failures,
    node_failures,
    regional_failures,
    scenario_family,
    srlg_failures,
)
from repro.scenarios.scenario import (
    NORMAL_SCENARIO,
    Scenario,
    ScenarioSet,
    as_scenario,
    as_scenario_set,
)
from repro.scenarios.variants import (
    GaussianSurge,
    GravityRescale,
    HotspotSurge,
    TrafficVariant,
)

__all__ = [
    "DEFAULT_MAX_SCENARIOS",
    "DEFAULT_SURGE_COUNT",
    "FAMILIES",
    "GaussianSurge",
    "GravityRescale",
    "HotspotSurge",
    "NORMAL_SCENARIO",
    "Scenario",
    "ScenarioSet",
    "TrafficVariant",
    "as_scenario",
    "as_scenario_set",
    "build_scenarios",
    "cross",
    "gaussian_surges",
    "gravity_rescales",
    "hotspot_surges",
    "k_link_failures",
    "legacy_failures",
    "node_failures",
    "regional_failures",
    "scenario_family",
    "srlg_failures",
]
