"""Seeded generators for every scenario family.

Each generator returns a :class:`~repro.scenarios.scenario.ScenarioSet`
whose enumeration order, labels and digests are a pure function of its
arguments — large spaces are sampled through explicitly seeded
generators, so two processes (or a test and its subprocess) produce
identical sets.  Families:

* ``link`` / ``arc`` — the paper's single-failure enumerations (legacy
  equivalent: wraps :func:`repro.routing.failures.single_failures`).
* ``node`` — single node failures (Section V-F).
* ``srlg`` — shared-risk link groups: fibers sharing a conduit fail
  together; groups are seeded samples, geographically clustered when the
  topology carries coordinates (cf. correlated/cascaded failures in
  Como et al., *Robust Distributed Routing – Part II*).
* ``multi<k>`` — k simultaneous link failures (footnote 16; subsumes the
  old ``dual_link_failures`` at ``k = 2``, bit-identically).
* ``regional`` — geometry-based regional failures: every link with an
  endpoint inside a disk goes down (fiber cut / power event; routers
  stay up, so traffic is *not* removed — see docs/DESIGN.md).
* ``surge`` / ``hotspot`` / ``rescale`` — traffic-side scenarios
  (Gaussian fluctuation, hot-spot incidents, uniform growth), failures
  left at ``NORMAL``.
* cross products — :func:`cross` composes a failure family with a
  variant family (e.g. every SRLG under every surge).

:func:`build_scenarios` parses the ``repro-exp --scenarios`` syntax:
comma-separated families, ``x`` for cross products
(``"srlg,multi2,linkxsurge"``).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.routing.failures import (
    NORMAL,
    FailureModel,
    FailureScenario,
    single_failures,
    single_node_failures,
)
from repro.routing.network import Network
from repro.scenarios.scenario import Scenario, ScenarioSet
from repro.scenarios.variants import (
    GaussianSurge,
    GravityRescale,
    HotspotSurge,
    TrafficVariant,
)

#: Seed streams separating the sampling randomness of each family.
_SRLG_STREAM = 110
_KLINK_STREAM = 111
_REGIONAL_STREAM = 112


def _family_rng(seed: int, stream: int) -> np.random.Generator:
    """The deterministic generator of one family's sampling."""
    return np.random.default_rng(np.random.SeedSequence((seed, stream)))


# ----------------------------------------------------------------------
# failure-side families
# ----------------------------------------------------------------------
def legacy_failures(
    network: Network, model: FailureModel = FailureModel.LINK
) -> ScenarioSet:
    """The paper's single-failure enumeration as a ScenarioSet.

    Bit-identical legacy equivalent of
    :func:`repro.routing.failures.single_failures`: same scenarios, same
    order, same labels — sweeping either representation produces the
    same costs (pinned by tests).
    """
    return ScenarioSet.from_failures(single_failures(network, model))


def node_failures(
    network: Network, nodes: Sequence[int] | None = None
) -> ScenarioSet:
    """Single node failures (all incident arcs die, traffic removed)."""
    return ScenarioSet.from_failures(
        single_node_failures(network, nodes), kind="node", name="node"
    )


def _link_endpoints(network: Network) -> np.ndarray:
    """``(num_links, 2)`` node-id endpoints of each physical link."""
    ends = np.empty((len(network.link_groups), 2), dtype=np.intp)
    for i, group in enumerate(network.link_groups):
        arc = network.arcs[group[0]]
        ends[i] = (arc.src, arc.dst)
    return ends


def srlg_failures(
    network: Network,
    num_groups: int | None = None,
    group_size: int = 3,
    seed: int = 0,
    groups: Sequence[Sequence[int]] | None = None,
) -> ScenarioSet:
    """Shared-risk link groups: each group's links fail simultaneously.

    Groups are either given explicitly (link-group indices into
    ``network.link_groups``) or sampled deterministically from ``seed``:
    each sampled group is a seed link plus its ``group_size - 1``
    geographically nearest links (by midpoint distance) when the
    topology carries node positions — conduit-sharing fibers are
    spatially close — and a uniform random draw otherwise.  Duplicate
    groups are dropped, first occurrence wins.

    Args:
        network: the topology.
        num_groups: SRLGs to sample (default: ``max(4, num_links // 4)``).
        group_size: links per SRLG (clamped to the link count).
        seed: sampling seed.
        groups: explicit groups (skips sampling entirely).
    """
    link_groups = network.link_groups
    num_links = len(link_groups)
    size = max(2, min(group_size, num_links))
    if groups is None:
        if num_groups is None:
            num_groups = max(4, num_links // 4)
        num_groups = min(num_groups, num_links)
        rng = _family_rng(seed, _SRLG_STREAM)
        seeds = rng.choice(num_links, size=num_groups, replace=False)
        if network.positions is not None:
            ends = _link_endpoints(network)
            midpoints = (
                network.positions[ends[:, 0]] + network.positions[ends[:, 1]]
            ) / 2.0
            groups = []
            for s in seeds:
                dists = np.linalg.norm(midpoints - midpoints[int(s)], axis=1)
                order = np.argsort(dists, kind="stable")
                groups.append(tuple(int(i) for i in order[:size]))
        else:
            groups = []
            for s in seeds:
                # Draw the extra members from the other links only, so
                # a group never silently shrinks below ``size``.
                others = rng.choice(
                    num_links - 1, size=size - 1, replace=False
                )
                members = {int(s)}
                for i in others:
                    i = int(i)
                    members.add(i + 1 if i >= int(s) else i)
                groups.append(tuple(sorted(members)))
    scenarios = []
    seen: set[frozenset[int]] = set()
    for group in groups:
        members = tuple(sorted(int(g) for g in group))
        key = frozenset(members)
        if key in seen:
            continue
        seen.add(key)
        arcs: tuple[int, ...] = ()
        for g in members:
            arcs += link_groups[g]
        label = "srlg:" + "+".join(
            str(link_groups[g][0]) for g in members
        )
        scenarios.append(
            Scenario(
                failure=FailureScenario(failed_arcs=arcs, label=label),
                kind="srlg",
            )
        )
    return ScenarioSet(tuple(scenarios), name="srlg")


def k_link_failures(
    network: Network,
    k: int = 2,
    max_scenarios: int | None = None,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> ScenarioSet:
    """All (or a seeded sample of) k simultaneous link failures.

    Generalizes — and at ``k = 2`` exactly reproduces, combination order
    and sampling draws included — the old ``dual_link_failures``
    (footnote 16's multi-failure stressor).

    Args:
        network: the topology.
        k: simultaneous link count (>= 2).
        max_scenarios: sample size when the combination space is larger.
        seed: sampling seed (builds an rng when ``rng`` is not given).
        rng: explicit generator (takes precedence over ``seed``).
    """
    if k < 2:
        raise ValueError("k must be >= 2 (use single-failure families)")
    groups = network.link_groups
    combos = list(itertools.combinations(range(len(groups)), k))
    if max_scenarios is not None and len(combos) > max_scenarios:
        if rng is None:
            if seed is None:
                raise ValueError(
                    "sampling k-link failures needs seed or rng"
                )
            rng = _family_rng(seed, _KLINK_STREAM)
        chosen = rng.choice(len(combos), size=max_scenarios, replace=False)
        combos = [combos[int(i)] for i in chosen]
    scenarios = []
    for combo in combos:
        arcs: tuple[int, ...] = ()
        for g in combo:
            arcs += groups[g]
        label = f"link{k}:" + "+".join(str(groups[g][0]) for g in combo)
        scenarios.append(
            Scenario(
                failure=FailureScenario(failed_arcs=arcs, label=label),
                kind=f"multi{k}",
            )
        )
    return ScenarioSet(tuple(scenarios), name=f"multi{k}")


def regional_failures(
    network: Network,
    num_regions: int = 4,
    radius_fraction: float = 0.25,
    seed: int = 0,
) -> ScenarioSet:
    """Geometry-based regional failures: disks of dead links.

    Region centers are sampled uniformly inside the bounding box of the
    node positions; every link with at least one endpoint within
    ``radius_fraction`` of the bounding-box diagonal goes down.  Nodes
    stay up (traffic is *not* removed): this models a regional fiber
    cut or power event where end hosts elsewhere still source traffic —
    unreachable pairs are charged the disconnection penalty
    (docs/DESIGN.md).  Empty regions (no link hit) are skipped, so the
    returned set may be smaller than ``num_regions``.

    Requires node positions (synthetic topologies: unit-square
    coordinates; the ISP backbone: lon/lat).
    """
    if network.positions is None:
        raise ValueError(
            "regional failures need node positions; this topology has none"
        )
    if num_regions < 1:
        raise ValueError("num_regions must be >= 1")
    if not 0 < radius_fraction <= 1:
        raise ValueError("radius_fraction must lie in (0, 1]")
    positions = network.positions
    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    radius = radius_fraction * float(np.linalg.norm(hi - lo))
    rng = _family_rng(seed, _REGIONAL_STREAM)
    centers = rng.uniform(lo, hi, size=(num_regions, 2))
    ends = _link_endpoints(network)
    scenarios = []
    for i, center in enumerate(centers):
        in_region = np.linalg.norm(positions - center, axis=1) <= radius
        hit = in_region[ends[:, 0]] | in_region[ends[:, 1]]
        if not hit.any():
            continue
        arcs: tuple[int, ...] = ()
        for g in np.flatnonzero(hit):
            arcs += network.link_groups[int(g)]
        scenarios.append(
            Scenario(
                failure=FailureScenario(
                    failed_arcs=arcs, label=f"region:{i}"
                ),
                kind="regional",
            )
        )
    return ScenarioSet(tuple(scenarios), name="regional")


# ----------------------------------------------------------------------
# traffic-side families
# ----------------------------------------------------------------------
def gaussian_surges(
    count: int = 5, eps: float = 0.2, seed: int = 0
) -> ScenarioSet:
    """``count`` independent Gaussian fluctuation instances (no failure)."""
    scenarios = tuple(
        Scenario(variant=GaussianSurge(eps=eps, seed=seed + i), kind="surge")
        for i in range(count)
    )
    return ScenarioSet(scenarios, name="surge")


def hotspot_surges(
    count: int = 5, seed: int = 0, mode: str = "download"
) -> ScenarioSet:
    """``count`` independent hot-spot incidents (no failure)."""
    scenarios = tuple(
        Scenario(
            variant=HotspotSurge(seed=seed + i, mode=mode), kind="hotspot"
        )
        for i in range(count)
    )
    return ScenarioSet(scenarios, name="hotspot")


def gravity_rescales(
    factors: Sequence[float] = (1.1, 1.25, 1.5),
) -> ScenarioSet:
    """Uniform demand-growth scenarios, one per factor (no failure)."""
    scenarios = tuple(
        Scenario(variant=GravityRescale(factor=float(f)), kind="rescale")
        for f in factors
    )
    return ScenarioSet(scenarios, name="rescale")


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
def cross(
    failures: ScenarioSet,
    variants: "ScenarioSet | Sequence[TrafficVariant]",
    kind: str | None = None,
) -> ScenarioSet:
    """The failure × variant cross product, failures-major order.

    Args:
        failures: the failure-side set (variants must be unset).
        variants: traffic variants, or a traffic-only ScenarioSet (each
            member must carry a variant and no failure).
        kind: family tag; defaults to ``"<failkind>x<variantkind>"`` per
            pair.
    """
    if isinstance(variants, ScenarioSet):
        pairs = []
        for s in variants:
            if s.variant is None or not s.failure.is_normal:
                raise ValueError(
                    "the variant side of a cross product must be "
                    "traffic-only scenarios"
                )
            pairs.append((s.variant, s.kind))
    else:
        pairs = [(v, v.family) for v in variants]
    scenarios = []
    for f in failures:
        if f.variant is not None:
            raise ValueError(
                "the failure side of a cross product already carries "
                "traffic variants"
            )
        for variant, vkind in pairs:
            scenarios.append(
                Scenario(
                    failure=f.failure,
                    variant=variant,
                    kind=kind or f"{f.kind}x{vkind}",
                )
            )
    if isinstance(variants, ScenarioSet):
        variants_name = variants.name
    else:
        variants_name = "+".join(
            dict.fromkeys(v.family for v in variants)
        )
    name = f"{failures.name}x{variants_name}"
    return ScenarioSet(tuple(scenarios), name=name)


# ----------------------------------------------------------------------
# the CLI family registry
# ----------------------------------------------------------------------
#: Families accepted by ``repro-exp --scenarios`` (and their meaning).
FAMILIES: tuple[str, ...] = (
    "link",
    "arc",
    "node",
    "srlg",
    "multi2",
    "multi3",
    "regional",
    "surge",
    "hotspot",
    "rescale",
)

#: Default sample cap for combinatorial families built via the registry.
DEFAULT_MAX_SCENARIOS = 60

#: Default traffic-variant draws for surge-type families.
DEFAULT_SURGE_COUNT = 5


def scenario_family(
    name: str, network: Network, seed: int = 0
) -> ScenarioSet:
    """Build one named family with registry defaults.

    Args:
        name: one of :data:`FAMILIES` (``multi<k>`` accepts any k >= 2).
        network: the topology.
        seed: sampling seed for the seeded families.
    """
    if name == "link":
        return legacy_failures(network, FailureModel.LINK)
    if name == "arc":
        return legacy_failures(network, FailureModel.ARC)
    if name == "node":
        return node_failures(network)
    if name == "srlg":
        return srlg_failures(network, seed=seed)
    if name.startswith("multi"):
        try:
            k = int(name[len("multi"):])
        except ValueError:
            raise ValueError(f"unknown scenario family {name!r}") from None
        return k_link_failures(
            network, k=k, max_scenarios=DEFAULT_MAX_SCENARIOS, seed=seed
        )
    if name == "regional":
        return regional_failures(network, seed=seed)
    if name == "surge":
        return gaussian_surges(count=DEFAULT_SURGE_COUNT, seed=seed)
    if name == "hotspot":
        return hotspot_surges(count=DEFAULT_SURGE_COUNT, seed=seed)
    if name == "rescale":
        return gravity_rescales()
    raise ValueError(
        f"unknown scenario family {name!r}; choose from "
        f"{', '.join(FAMILIES)} or a '<failure>x<traffic>' cross"
    )


def build_scenarios(
    spec: str, network: Network, seed: int = 0
) -> ScenarioSet:
    """Parse a ``--scenarios`` spec into one concatenated ScenarioSet.

    Grammar: comma-separated family names; a token ``AxB`` is the cross
    product of failure family ``A`` with traffic family ``B`` (e.g.
    ``"srlg,multi2,linkxsurge"``).  Enumeration order follows the spec.
    """
    parts = [token.strip() for token in spec.split(",") if token.strip()]
    if not parts:
        raise ValueError("empty --scenarios spec")
    built: ScenarioSet | None = None
    for token in parts:
        if "x" in token and token not in FAMILIES:
            fail_name, _, variant_name = token.partition("x")
            family = cross(
                scenario_family(fail_name, network, seed),
                scenario_family(variant_name, network, seed),
            )
        else:
            family = scenario_family(token, network, seed)
        built = family if built is None else built + family
    assert built is not None
    return ScenarioSet(built.scenarios, name=spec)
