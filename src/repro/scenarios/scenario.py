"""The unified scenario model: topology failure × traffic variant.

A :class:`Scenario` composes a topology perturbation (a
:class:`~repro.routing.failures.FailureScenario`: failed arcs, removed
nodes) with an optional :class:`~repro.scenarios.variants.TrafficVariant`
(gravity rescale, Gaussian fluctuation, hot-spot surge).  A
:class:`ScenarioSet` is an ordered, immutable collection of scenarios —
the single currency every evaluation layer speaks
(:meth:`repro.core.evaluation.DtrEvaluator.evaluate_scenarios`).

Enumeration order is part of a set's identity: failure-cost sums fold in
scenario order, so two sets with equal :attr:`ScenarioSet.digest` produce
bit-identical sweep costs.  Digests are content hashes (never Python
``hash()``), so they are stable across processes and interpreter runs —
the seeded generators in :mod:`repro.scenarios.generators` are pinned by
tests to reproduce identical digests in a fresh subprocess.

Legacy bridge: :meth:`ScenarioSet.from_failures` wraps an existing
:class:`~repro.routing.failures.FailureSet` without altering order or
labels, and :meth:`ScenarioSet.to_failure_set` unwraps a variant-free set
— every pre-scenario experiment preset is reproduced bit-identically
through this path (pinned by tests).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.routing.failures import (
    NORMAL,
    FailureModel,
    FailureScenario,
    FailureSet,
)
from repro.scenarios.variants import TrafficVariant


@dataclass(frozen=True)
class Scenario:
    """One composed scenario: a failure, an optional traffic variant.

    Attributes:
        failure: the topology perturbation (``NORMAL`` for traffic-only
            scenarios).
        variant: the traffic perturbation (None keeps base traffic).
        kind: family tag used for reporting breakdowns, e.g. ``"link"``,
            ``"srlg"``, ``"regional"``, ``"surge"``, ``"linkxsurge"``.
    """

    failure: FailureScenario = NORMAL
    variant: TrafficVariant | None = None
    kind: str = "failure"

    # -- FailureScenario-compatible surface --------------------------------
    @property
    def failed_arcs(self) -> tuple[int, ...]:
        """Arc ids removed from the topology."""
        return self.failure.failed_arcs

    @property
    def removed_nodes(self) -> tuple[int, ...]:
        """Nodes whose originated/destined traffic is dropped."""
        return self.failure.removed_nodes

    @property
    def is_normal(self) -> bool:
        """True only for the unperturbed (no failure, base traffic) case."""
        return self.failure.is_normal and self.variant is None

    # -- identity ----------------------------------------------------------
    @property
    def label(self) -> str:
        """Stable identifier, e.g. ``"srlg:4+9"`` or ``"link:2|gauss0.2#1"``."""
        base = self.failure.label or "normal"
        if self.variant is None:
            return base
        return f"{base}|{self.variant.label}"

    def canonical(self) -> str:
        """Canonical string identity (feeds :attr:`digest`)."""
        variant = self.variant.canonical() if self.variant else "-"
        return (
            f"{self.kind}|{self.failure.label}"
            f"|arcs={self.failure.failed_arcs}"
            f"|nodes={self.failure.removed_nodes}|{variant}"
        )

    @property
    def digest(self) -> str:
        """Stable 16-hex-digit content digest (process-independent)."""
        return hashlib.sha1(self.canonical().encode()).hexdigest()[:16]


NORMAL_SCENARIO = Scenario()
"""The unperturbed scenario (no failure, base traffic)."""


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered, immutable collection of composed scenarios.

    Attributes:
        scenarios: the scenarios, in enumeration (= evaluation) order.
        name: set label for reports (e.g. the generator family).
        model: failure-enumeration granularity carried over from a
            wrapped legacy :class:`~repro.routing.failures.FailureSet`
            (reporting only; generated sets use None).
    """

    scenarios: tuple[Scenario, ...]
    name: str = ""
    model: FailureModel | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def __add__(self, other: "ScenarioSet") -> "ScenarioSet":
        name = "+".join(n for n in (self.name, other.name) if n)
        return ScenarioSet(self.scenarios + other.scenarios, name=name)

    # -- identity ----------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """Per-scenario labels, in enumeration order."""
        return tuple(s.label for s in self.scenarios)

    @property
    def digest(self) -> str:
        """Content digest covering order, members and variants."""
        h = hashlib.sha1()
        for scenario in self.scenarios:
            h.update(scenario.canonical().encode())
            h.update(b"\n")
        return h.hexdigest()[:16]

    def kinds(self) -> tuple[str, ...]:
        """Distinct scenario kinds, in first-appearance order."""
        seen: dict[str, None] = {}
        for scenario in self.scenarios:
            seen.setdefault(scenario.kind)
        return tuple(seen)

    def by_kind(self) -> "dict[str, ScenarioSet]":
        """Sub-sets per kind, preserving enumeration order within each."""
        return {
            kind: ScenarioSet(
                tuple(s for s in self.scenarios if s.kind == kind),
                name=kind,
            )
            for kind in self.kinds()
        }

    # -- restriction -------------------------------------------------------
    def restricted_to_arcs(self, arc_ids: Sequence[int]) -> "ScenarioSet":
        """Scenarios whose failed arcs intersect ``arc_ids``.

        The ScenarioSet counterpart of
        :meth:`~repro.routing.failures.FailureSet.restricted_to_arcs`
        (how a critical set ``Ec`` restricts the robust objective,
        Eq. 7).  Traffic-only scenarios (a variant with no failed arcs)
        are always kept — a surge stresses every link, so no critical
        subset excludes it.
        """
        wanted = set(int(a) for a in arc_ids)
        kept = tuple(
            s
            for s in self.scenarios
            if wanted.intersection(s.failed_arcs)
            or (s.variant is not None and not s.failed_arcs)
        )
        return ScenarioSet(kept, name=self.name, model=self.model)

    # -- legacy bridge -----------------------------------------------------
    @classmethod
    def from_failures(
        cls,
        failures: "FailureSet | Iterable[FailureScenario]",
        kind: str | None = None,
        name: str = "",
    ) -> "ScenarioSet":
        """Wrap plain failure scenarios, preserving order and labels.

        This is the legacy-equivalent path: sweeping the wrapped set
        produces bit-identical costs to sweeping ``failures`` directly
        (pinned by tests).

        Args:
            failures: a legacy failure set (or any iterable of
                :class:`FailureScenario`).
            kind: family tag; defaults to the set's
                :class:`~repro.routing.failures.FailureModel` value, or
                ``"failure"`` for mixed/unknown sets.
            name: set label for reports.
        """
        model = failures.model if isinstance(failures, FailureSet) else None
        if kind is None:
            kind = model.value if model is not None else "failure"
        scenarios = tuple(
            Scenario(failure=f, kind=kind) for f in failures
        )
        return cls(scenarios, name=name or kind, model=model)

    def to_failure_set(self) -> FailureSet:
        """Unwrap to a legacy :class:`FailureSet` (variant-free sets only)."""
        if any(s.variant is not None for s in self.scenarios):
            raise ValueError(
                "set contains traffic variants; a FailureSet cannot "
                "represent them"
            )
        return FailureSet(
            tuple(s.failure for s in self.scenarios), model=self.model
        )

    @property
    def failure_scenarios(self) -> tuple[FailureScenario, ...]:
        """The topology parts, in enumeration order."""
        return tuple(s.failure for s in self.scenarios)

    def with_variant(
        self, variant: TrafficVariant, kind: str | None = None
    ) -> "ScenarioSet":
        """Every scenario re-composed with ``variant`` (replacing any)."""
        scenarios = tuple(
            replace(s, variant=variant, kind=kind or s.kind)
            for s in self.scenarios
        )
        return ScenarioSet(scenarios, name=self.name, model=self.model)


def as_scenario(item: "Scenario | FailureScenario") -> Scenario:
    """Coerce a legacy :class:`FailureScenario` into a :class:`Scenario`."""
    if isinstance(item, Scenario):
        return item
    return Scenario(failure=item)


def as_scenario_set(
    scenarios: "ScenarioSet | FailureSet | Iterable",
) -> ScenarioSet:
    """Coerce any accepted scenario collection into a :class:`ScenarioSet`.

    Accepts a :class:`ScenarioSet` (returned unchanged), a legacy
    :class:`FailureSet`, or any iterable of :class:`Scenario` /
    :class:`FailureScenario` items.
    """
    if isinstance(scenarios, ScenarioSet):
        return scenarios
    if isinstance(scenarios, FailureSet):
        return ScenarioSet.from_failures(scenarios)
    return ScenarioSet(tuple(as_scenario(s) for s in scenarios))
