"""Traffic variants: the traffic half of a composed scenario.

A :class:`TrafficVariant` is a *deterministic, self-contained* recipe for
perturbing a two-class traffic instance: it carries every parameter —
including the random seed — needed to reproduce the perturbed matrices
bit-for-bit in any process.  Variants wrap the Section V-F uncertainty
primitives of :mod:`repro.traffic.uncertainty` (Gaussian fluctuation and
hot-spot surges) plus a plain gravity rescale, and compose with topology
failures inside :class:`repro.scenarios.Scenario`.

Determinism contract: ``variant.apply(traffic)`` builds its own seeded
generator from the variant's fields, so two processes holding equal
variants produce identical traffic.  ``canonical()`` / ``digest`` encode
those fields into a stable identity usable as a cache or memo key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.traffic.gravity import DtrTraffic
from repro.traffic.uncertainty import (
    HotspotMode,
    HotspotSpec,
    fluctuate_traffic,
    hotspot,
)

#: Seed streams separating variant randomness from instance randomness
#: (:mod:`repro.exp.common` uses streams 1-3 and 40/41/60/70).
_GAUSSIAN_STREAM = 101
_HOTSPOT_STREAM = 102


def _variant_rng(seed: int, stream: int) -> np.random.Generator:
    """The deterministic generator of one variant draw."""
    return np.random.default_rng(np.random.SeedSequence((seed, stream)))


@dataclass(frozen=True)
class TrafficVariant:
    """Base class of all traffic variants (see the module contract)."""

    #: Family tag used by scenario kinds (e.g. ``"linkxsurge"``);
    #: subclasses override.
    family = "variant"

    @property
    def label(self) -> str:
        """Short human-readable identifier, stable across processes."""
        raise NotImplementedError

    def canonical(self) -> str:
        """Canonical string encoding every parameter (identity)."""
        raise NotImplementedError

    @property
    def digest(self) -> str:
        """Stable 16-hex-digit digest of :meth:`canonical`."""
        return hashlib.sha1(self.canonical().encode()).hexdigest()[:16]

    def apply(self, traffic: DtrTraffic) -> DtrTraffic:
        """The perturbed traffic (deterministic; never mutates input)."""
        raise NotImplementedError


@dataclass(frozen=True)
class GravityRescale(TrafficVariant):
    """Uniform rescale of both classes (demand growth / drain).

    Attributes:
        factor: multiplicative factor applied to every demand.
    """

    factor: float = 1.25

    family = "rescale"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    @property
    def label(self) -> str:
        return f"rescale{self.factor:g}"

    def canonical(self) -> str:
        return f"rescale|factor={self.factor!r}"

    def apply(self, traffic: DtrTraffic) -> DtrTraffic:
        return traffic.scaled(self.factor)


@dataclass(frozen=True)
class GaussianSurge(TrafficVariant):
    """Seeded Gaussian fluctuation of every demand (Section V-F).

    Attributes:
        eps: relative standard deviation (paper: 0.2).
        seed: draw seed; different seeds are independent fluctuation
            instances of the same magnitude.
    """

    eps: float = 0.2
    seed: int = 0

    family = "surge"

    def __post_init__(self) -> None:
        if self.eps < 0:
            raise ValueError("eps must be non-negative")

    @property
    def label(self) -> str:
        return f"gauss{self.eps:g}#{self.seed}"

    def canonical(self) -> str:
        return f"gauss|eps={self.eps!r}|seed={self.seed}"

    def apply(self, traffic: DtrTraffic) -> DtrTraffic:
        rng = _variant_rng(self.seed, _GAUSSIAN_STREAM)
        return fluctuate_traffic(traffic, self.eps, rng)


@dataclass(frozen=True)
class HotspotSurge(TrafficVariant):
    """Seeded hot-spot incident (Section V-F): server traffic surges.

    Attributes:
        seed: draw seed (selects servers, clients and surge factors).
        mode: ``"download"`` or ``"upload"``.
        server_fraction: share of nodes acting as servers (paper: 0.1).
        client_fraction: share of nodes acting as clients (paper: 0.5).
        factor_low: lower bound of the surge factor (paper: 2).
        factor_high: upper bound of the surge factor (paper: 6).
    """

    seed: int = 0
    mode: str = "download"
    server_fraction: float = 0.1
    client_fraction: float = 0.5
    factor_low: float = 2.0
    factor_high: float = 6.0

    family = "hotspot"

    def __post_init__(self) -> None:
        HotspotMode(self.mode)  # validates
        self.spec()  # validates the fractions and factors

    def spec(self) -> HotspotSpec:
        """The equivalent :class:`~repro.traffic.uncertainty.HotspotSpec`."""
        return HotspotSpec(
            server_fraction=self.server_fraction,
            client_fraction=self.client_fraction,
            factor_low=self.factor_low,
            factor_high=self.factor_high,
            mode=HotspotMode(self.mode),
        )

    @property
    def label(self) -> str:
        return f"hotspot:{self.mode}#{self.seed}"

    def canonical(self) -> str:
        return (
            f"hotspot|seed={self.seed}|mode={self.mode}"
            f"|sf={self.server_fraction!r}|cf={self.client_fraction!r}"
            f"|lo={self.factor_low!r}|hi={self.factor_high!r}"
        )

    def apply(self, traffic: DtrTraffic) -> DtrTraffic:
        rng = _variant_rng(self.seed, _HOTSPOT_STREAM)
        return hotspot(traffic, rng, self.spec())
