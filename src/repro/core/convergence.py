"""Rank-convergence test for criticality estimates (Section IV-D1).

Between two ranking updates at ``t-1`` and ``t`` the paper evaluates, per
arc, the rank displacement ``S_l(t) = |Rank(l, t) - Rank(l, t-1)|`` and
aggregates ``S = sum_l gamma_l S_l(t)`` with weights ``gamma_l
proportional to S_l(t)`` (so arcs that moved more count more; this makes
``S = sum S_l^2 / sum S_l``).  Estimates are converged when the index of
*both* traffic classes is at most the threshold ``e``.
"""

from __future__ import annotations

import numpy as np

from repro.core.criticality import CriticalityEstimate, descending_ranking


def rank_positions(ranking: np.ndarray) -> np.ndarray:
    """Invert a ranking: ``positions[arc] = rank of arc`` (0-based)."""
    positions = np.empty_like(ranking)
    positions[ranking] = np.arange(ranking.shape[0])
    return positions


def weighted_rank_change(
    previous: np.ndarray, current: np.ndarray
) -> float:
    """The gamma-weighted rank-change index between two rankings.

    Args:
        previous: arc ids in descending criticality order at ``t-1``.
        current: same at ``t``.

    Returns:
        ``sum_l gamma_l * S_l`` with ``gamma_l = S_l / sum_j S_j``; zero
        when nothing moved.
    """
    if previous.shape != current.shape:
        raise ValueError("rankings must cover the same arcs")
    s = np.abs(
        rank_positions(previous).astype(np.int64)
        - rank_positions(current).astype(np.int64)
    ).astype(np.float64)
    total = s.sum()
    if total <= 0.0:
        return 0.0
    return float((s * s).sum() / total)


class RankConvergenceTracker:
    """Tracks criticality-rank stability across sampling updates.

    Args:
        threshold: the convergence threshold ``e`` (paper: 2).

    Call :meth:`update` after every ``tau``-per-arc batch of new samples;
    :attr:`converged` turns true once both class indices drop to the
    threshold.  At least two updates are needed before convergence can be
    declared (a single ranking has nothing to be stable against).
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self._threshold = threshold
        self._prev_lam: np.ndarray | None = None
        self._prev_phi: np.ndarray | None = None
        self._index_lam: float | None = None
        self._index_phi: float | None = None
        self._updates = 0

    # ------------------------------------------------------------------
    @property
    def updates(self) -> int:
        """Number of ranking updates seen."""
        return self._updates

    @property
    def last_indices(self) -> tuple[float | None, float | None]:
        """The latest ``(S_Lambda, S_Phi)`` values (None before two updates)."""
        return self._index_lam, self._index_phi

    @property
    def converged(self) -> bool:
        """Whether both class indices are at or below the threshold."""
        if self._index_lam is None or self._index_phi is None:
            return False
        return (
            self._index_lam <= self._threshold
            and self._index_phi <= self._threshold
        )

    # ------------------------------------------------------------------
    def update(self, estimate: CriticalityEstimate) -> None:
        """Record a new criticality estimate and refresh the indices."""
        ranking_lam = descending_ranking(estimate.rho_lam)
        ranking_phi = descending_ranking(estimate.rho_phi)
        if self._prev_lam is not None and self._prev_phi is not None:
            self._index_lam = weighted_rank_change(
                self._prev_lam, ranking_lam
            )
            self._index_phi = weighted_rank_change(
                self._prev_phi, ranking_phi
            )
        self._prev_lam = ranking_lam
        self._prev_phi = ranking_phi
        self._updates += 1
