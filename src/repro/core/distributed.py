"""Multi-host distributed scenario sweeps over a TCP host pool.

:class:`~repro.core.parallel.ParallelDtrEvaluator` caps out at one
machine's cores.  This module generalizes its ticket-dispatch design
across machines: each **host** (a ``repro-exp serve-host`` process,
possibly on another box) owns a contiguous *scenario* shard of every
sweep and ships back per-scenario results — compacted to
:class:`~repro.core.evaluation.ScenarioCosts` scalars on costs-only
sweeps — as each shard batch completes, so the parent can fold results
while the slowest host is still computing.

The wire design mirrors :class:`~repro.core.parallel.SharedSweepState`'s
publish-once discipline, with content digests instead of shm block
names:

* **instance epoch** — ``(network, traffic, config, delay_mode)`` ships
  once per host; the host builds a long-lived
  :class:`~repro.core.parallel.CachingDtrEvaluator` whose routing
  caches and incremental routers stay warm across every sweep of the
  connection.
* **scenario-set epoch** — the scenario tuple ships once per host per
  content digest, exactly like a shm publish.
* **setting epoch** — each new weight setting ships only its two weight
  vectors (the "weight delta" of a local-search move), once per host.
* **tasks** — after the epochs are in flight, a task is
  ``(digests, lo, hi, costs_only, seq, attempt)``: tens of bytes, like
  PR 5's ~36-byte shm tickets.

Messages are length-prefixed protocol-5 pickles over one TCP connection
per host; TCP ordering guarantees a host sees every epoch payload
before any task that references it.  Hosts evaluate their slice through
the same batched serial path as shm workers (the scenario-axis
``plan_sweep`` engine of :mod:`repro.routing.sweep` runs host-side, and
parent-side ticket sizing is capped by the same
``group_scenario_budget``), and compute their own NORMAL reuse
evaluation per setting — bit-identical to shipping it, by the repo's
evaluator-parity invariant, and hundreds of KB cheaper.

Failure handling rides the existing resilience layer unchanged: a dead
host fails its in-flight futures with :class:`HostLost` (a
``BrokenExecutor``, so :func:`~repro.core.resilience.classify_failure`
says ``dead_pool``), the :class:`~repro.core.resilience.SweepSupervisor`
re-dispatches the lost host's unfinished tickets to surviving hosts
(pool recycling respawns ``local:`` hosts / reconnects TCP hosts), and
a ticket out of attempts degrades to the parent's serial in-process
path — so a sweep **always completes bit-identical to a fault-free
run**, killed hosts included (pinned by
``tests/core/test_distributed.py`` and the CI ``dist-smoke`` job).

Two pool flavors share all of this code:

* ``hosts="local:N"`` forks N localhost host processes (each serving
  one connection on an ephemeral port), so the whole stack is testable
  on one box and in CI;
* ``hosts="host:port,host:port"`` connects to already-running
  ``repro-exp serve-host`` servers — the two-machine story.
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
import socket
import struct
import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Future
from dataclasses import replace
from typing import Callable

from repro.config import ExecutionParams, OptimizerConfig
from repro.core import faults
from repro.core.evaluation import (
    DtrEvaluator,
    ScenarioCosts,
    ScenarioEvaluation,
    Scenarios,
    compact_evaluation,
)
from repro.core.parallel import (
    CacheStats,
    CachingDtrEvaluator,
    _strip_routings,
)
from repro.core.resilience import (
    ResilienceCounters,
    ResilienceStats,
    RetryPolicy,
    SupervisedTask,
    SweepSupervisor,
    TransportCounters,
    TransportStats,
    global_counters,
)
from repro.core.weights import WeightSetting
from repro.routing.backend import parse_hosts
from repro.routing.network import Network
from repro.routing.sweep import group_scenario_budget
from repro.traffic.gravity import DtrTraffic

#: Seconds to wait for a TCP connect / a spawned local host's port.
_CONNECT_TIMEOUT = 10.0

#: Seconds close() waits for a local host process to exit gracefully.
_JOIN_TIMEOUT = 5.0

#: Wire-format message length prefix (8-byte big-endian).
_LEN = struct.Struct(">Q")

#: Cap on cached encoded frames parent-side (settings churn in phase-2;
#: frames are re-encoded on a miss, sent-epoch bookkeeping is separate).
_FRAME_CACHE_CAP = 64

#: Host-side cap on cached NORMAL reuse evaluations per connection
#: (they carry routings; evicted entries are recomputed bit-identically).
_HOST_NORMAL_CACHE_CAP = 8


class HostLost(BrokenExecutor):
    """A host died or dropped its connection mid-sweep.

    Subclasses ``BrokenExecutor`` so the resilience layer's
    :func:`~repro.core.resilience.classify_failure` files it under
    ``dead_pool`` — the class that recycles the pool and re-dispatches
    every in-flight ticket.
    """


class HostTaskError(RuntimeError):
    """A host's task raised; carries the remote traceback summary."""


# ----------------------------------------------------------------------
# wire helpers
# ----------------------------------------------------------------------
def _encode(message: object) -> bytes:
    """One wire frame: length prefix + protocol-5 pickle."""
    body = pickle.dumps(message, protocol=5)
    return _LEN.pack(len(body)) + body


def _send_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> "tuple[object, int]":
    """Read one message; returns ``(message, frame_bytes)``."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    body = _recv_exact(sock, length)
    return pickle.loads(body), _LEN.size + length


def _digest(payload: bytes) -> bytes:
    return hashlib.sha1(payload).digest()


# ----------------------------------------------------------------------
# host side: the server one `repro-exp serve-host` process runs
# ----------------------------------------------------------------------
class HostWorker:
    """Serves one host's share of distributed sweeps over TCP.

    Per **connection** the worker keeps a fresh state table — the
    parent's publish-once bookkeeping is per-connection too, so both
    sides agree on exactly which epochs are resident; a reconnecting
    parent re-ships them.  Within a connection everything is warm: the
    evaluator (with its routing caches and incremental routers),
    published scenario sets and the weight vectors of every setting
    seen.  NORMAL reuse evaluations are LRU-capped; an evicted one is
    recomputed bit-identically on the next task that needs it.

    Args:
        bind: interface to listen on (default loopback; bind
            ``"0.0.0.0"`` to serve another machine).
        port: TCP port; 0 picks an ephemeral one (see :attr:`port`).
        once: serve a single connection then return — the ``local:``
            spawn mode, so a finished (or dead) parent never leaks a
            host process.  False serves connections forever.
    """

    def __init__(
        self, bind: str = "127.0.0.1", port: int = 0, once: bool = False
    ) -> None:
        self._once = once
        self._server = socket.create_server(
            (bind, port), reuse_port=False
        )
        self._port = self._server.getsockname()[1]

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._port

    def serve_forever(self) -> None:
        """Accept and serve connections until ``once`` (or forever)."""
        try:
            while True:
                conn, _addr = self._server.accept()
                try:
                    self._serve_connection(conn)
                finally:
                    conn.close()
                if self._once:
                    return
        finally:
            self._server.close()

    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        evaluators: "dict[bytes, CachingDtrEvaluator]" = {}
        scenario_sets: "dict[bytes, tuple]" = {}
        settings: "dict[bytes, WeightSetting]" = {}
        normal_cache: "OrderedDict[bytes, ScenarioEvaluation]" = (
            OrderedDict()
        )
        try:
            while True:
                try:
                    message, _ = _recv_msg(conn)
                except (ConnectionError, OSError):
                    return
                kind = message[0]
                if kind == "shutdown":
                    return
                try:
                    if kind == "init":
                        _, ikey, blob = message
                        evaluators[ikey] = _build_host_evaluator(blob)
                    elif kind == "scenarios":
                        _, skey, items = message
                        scenario_sets[skey] = tuple(items)
                    elif kind == "setting":
                        _, wkey, delay, tput = message
                        settings[wkey] = WeightSetting(delay, tput)
                    elif kind == "task":
                        reply = self._run_task(
                            message,
                            evaluators,
                            scenario_sets,
                            settings,
                            normal_cache,
                        )
                        _send_frame(conn, _encode(reply))
                    else:
                        raise ValueError(f"unknown message kind {kind!r}")
                except (ConnectionError, OSError):
                    return
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    # A state message failed (bad payload, missing key):
                    # the connection's bookkeeping can no longer be
                    # trusted, so report and drop it — the parent marks
                    # this host dead and its supervisor re-dispatches.
                    try:
                        _send_frame(
                            conn,
                            _encode(
                                (
                                    "fatal",
                                    f"{type(exc).__name__}: {exc}",
                                )
                            ),
                        )
                    except OSError:
                        pass
                    return
        finally:
            for evaluator in evaluators.values():
                evaluator.close()

    def _run_task(
        self,
        message: tuple,
        evaluators: "dict[bytes, CachingDtrEvaluator]",
        scenario_sets: "dict[bytes, tuple]",
        settings: "dict[bytes, WeightSetting]",
        normal_cache: "OrderedDict[bytes, ScenarioEvaluation]",
    ) -> tuple:
        """One ticket: evaluate a scenario slice, reply with outcomes.

        Runs inside the fault context keyed on the parent's
        ``(task seq, attempt)`` — exactly like the process pool's
        ``_supervised_task`` wrapper — so chaos plans SIGKILL/delay/
        poison a *host* the way they do a worker.
        """
        _, task_id, ikey, skey, wkey, lo, hi, costs_only, seq, attempt = (
            message
        )
        try:
            # enter_task sits inside the try: an injected StageFault
            # raises here and must come back as a task *error* (retry /
            # quarantine), exactly like a process-pool worker — only
            # injected kills take the whole host down.
            faults.enter_task(seq, attempt)
            begin = time.perf_counter()
            evaluator = evaluators[ikey]
            scenarios = scenario_sets[skey]
            setting = settings[wkey]
            reuse = normal_cache.get(wkey)
            if reuse is None:
                reuse = evaluator.evaluate_normal(setting)
                normal_cache[wkey] = reuse
                if len(normal_cache) > _HOST_NORMAL_CACHE_CAP:
                    normal_cache.popitem(last=False)
            else:
                normal_cache.move_to_end(wkey)
            costs = evaluator.evaluate_scenarios(
                setting, list(scenarios[lo:hi]), reuse=reuse
            )
            fold = compact_evaluation if costs_only else _strip_routings
            outcomes = [fold(e) for e in costs.evaluations]
            stats = evaluator.cache_stats
            return (
                "result",
                task_id,
                outcomes,
                (stats.hits_exact, stats.hits_incremental, stats.misses),
                time.perf_counter() - begin,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            return ("error", task_id, f"{type(exc).__name__}: {exc}")
        finally:
            faults.exit_task()


def _build_host_evaluator(blob: tuple) -> CachingDtrEvaluator:
    """The host's long-lived serial evaluator for one instance epoch.

    Execution knobs are re-anchored host-side — one serial caching
    evaluator per host, never a nested pool — and the parent's fault
    plan (chaos tests only) is installed so injected kills hit the host
    process itself.
    """
    network, traffic, config, delay_mode = blob
    host_execution = replace(
        config.execution,
        n_jobs=1,
        executor="process",
        hosts=None,
        chunk_size=None,
    )
    faults.install_fault_plan(host_execution.fault_plan)
    return CachingDtrEvaluator(
        network, traffic, config.replace(execution=host_execution), delay_mode
    )


def serve_host(
    bind: str = "127.0.0.1", port: int = 0, once: bool = False
) -> None:
    """Run a sweep host server (the ``repro-exp serve-host`` entry)."""
    HostWorker(bind, port, once=once).serve_forever()


def _local_host_main(conn) -> None:
    """Entry point of a ``local:`` spawned host process."""
    worker = HostWorker("127.0.0.1", 0, once=True)
    try:
        conn.send(worker.port)
    finally:
        conn.close()
    worker.serve_forever()


# ----------------------------------------------------------------------
# parent side: clients, pool, executor
# ----------------------------------------------------------------------
class HostClient:
    """Parent-side endpoint of one host connection.

    Owns the socket, a receiver thread resolving task futures, the
    per-connection publish-once bookkeeping (which epoch digests this
    host already holds) and per-host transfer/timing counters.  All
    sends are serialized under a lock; TCP ordering then guarantees
    epoch payloads precede the tasks that reference them.
    """

    def __init__(
        self,
        index: int,
        spec: "tuple[str, int] | str",
        transport: "TransportCounters | None" = None,
    ) -> None:
        self.index = index
        self.spec = spec
        self._transport = transport
        self.alive = False
        self.process = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.busy_seconds = 0.0
        self.tasks_done = 0
        self._sock: "socket.socket | None" = None
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: "dict[int, Future]" = {}
        self._sent_epochs: "set[bytes]" = set()
        self._receiver: "threading.Thread | None" = None
        self._on_death = None

    # ------------------------------------------------------------------
    def start(self, on_death) -> None:
        """Spawn/connect the host and start the receiver thread."""
        self._on_death = on_death
        if self.spec == "local":
            self._spawn_local()
        else:
            host, port = self.spec
            self._connect(host, port)
        self.alive = True
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-host-{self.index}",
            daemon=True,
        )
        self._receiver.start()

    def _spawn_local(self) -> None:
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_local_host_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(_CONNECT_TIMEOUT):
                raise HostLost(
                    f"local host {self.index} did not report a port"
                )
            port = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.terminate()
            raise HostLost(
                f"local host {self.index} died during startup"
            ) from exc
        finally:
            parent_conn.close()
        self.process = process
        self._connect("127.0.0.1", port)

    def _connect(self, host: str, port: int) -> None:
        try:
            sock = socket.create_connection(
                (host, port), timeout=_CONNECT_TIMEOUT
            )
        except OSError as exc:
            raise HostLost(
                f"cannot connect to sweep host {host}:{port}: {exc}"
            ) from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    # ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        sock = self._sock
        try:
            while True:
                message, nbytes = _recv_msg(sock)
                with self._state_lock:
                    self.bytes_received += nbytes
                if self._transport is not None:
                    self._transport.record(result_bytes=nbytes)
                kind = message[0]
                if kind == "result":
                    _, task_id, outcomes, counters, elapsed = message
                    with self._state_lock:
                        future = self._pending.pop(task_id, None)
                        self.busy_seconds += elapsed
                        self.tasks_done += 1
                    if future is not None:
                        future.set_result(
                            (outcomes, self.index, counters, elapsed)
                        )
                elif kind == "error":
                    _, task_id, detail = message
                    with self._state_lock:
                        future = self._pending.pop(task_id, None)
                    if future is not None:
                        future.set_exception(
                            HostTaskError(
                                f"host {self.describe()}: {detail}"
                            )
                        )
                elif kind == "fatal":
                    raise ConnectionError(
                        f"host reported fatal error: {message[1]}"
                    )
        except (ConnectionError, OSError, EOFError, pickle.PickleError) as exc:
            self.mark_dead(exc)

    def mark_dead(self, cause: "BaseException | None" = None) -> None:
        """Fail every pending future and retire the connection (idempotent)."""
        with self._state_lock:
            was_alive, self.alive = self.alive, False
            pending, self._pending = self._pending, {}
            sock, self._sock = self._sock, None
        detail = f": {cause}" if cause is not None else ""
        exc = HostLost(f"sweep host {self.describe()} lost{detail}")
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - teardown
                pass
        if was_alive and self._on_death is not None:
            self._on_death(self)

    # ------------------------------------------------------------------
    def submit(
        self,
        task_id: int,
        task_frame: bytes,
        epochs: "list[tuple[bytes, Callable[[], bytes]]]",
    ) -> "tuple[Future, int, int]":
        """Dispatch one ticket; returns ``(future, epoch_bytes, bytes)``.

        Not-yet-resident epoch frames and the task form one ordered
        burst under the send lock, so TCP ordering makes the task's
        payloads resident before it runs.  Never raises: a send failure
        marks the host dead and the returned future carries
        :class:`HostLost`, so the supervisor charges an attempt and the
        ticket terminates (retry elsewhere or serial quarantine)
        instead of looping on a dead pool.
        """
        future: Future = Future()
        with self._state_lock:
            sock = self._sock
            if not self.alive or sock is None:
                future.set_exception(
                    HostLost(f"sweep host {self.describe()} is down")
                )
                return future, 0, 0
            self._pending[task_id] = future
        epoch_bytes = 0
        try:
            with self._send_lock:
                for key, make_frame in epochs:
                    if key in self._sent_epochs:
                        continue
                    frame = make_frame()
                    _send_frame(sock, frame)
                    self._sent_epochs.add(key)
                    epoch_bytes += len(frame)
                _send_frame(sock, task_frame)
        except (OSError, ConnectionError) as exc:
            self.mark_dead(exc)
            return future, epoch_bytes, 0
        with self._state_lock:
            self.bytes_sent += epoch_bytes + len(task_frame)
        return future, epoch_bytes, len(task_frame)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable endpoint label for logs and benchmarks."""
        if self.spec == "local":
            pid = self.process.pid if self.process is not None else "?"
            return f"local[{self.index}] (pid {pid})"
        host, port = self.spec
        return f"{host}:{port}"

    @property
    def closed(self) -> bool:
        """Whether the socket is fully released (leak checks)."""
        return self._sock is None

    def close(self) -> None:
        """Graceful shutdown: best-effort goodbye, then reap (idempotent)."""
        with self._state_lock:
            self.alive = False
        sock = self._sock
        if sock is not None:
            try:
                with self._send_lock:
                    _send_frame(sock, _encode(("shutdown",)))
            except OSError:
                pass
        self.mark_dead()
        if self._receiver is not None and self._receiver.is_alive():
            self._receiver.join(timeout=_JOIN_TIMEOUT)
        if self.process is not None:
            self.process.join(timeout=_JOIN_TIMEOUT)
            if self.process.is_alive():  # pragma: no cover - wedged host
                self.process.kill()
                self.process.join(timeout=_JOIN_TIMEOUT)
            self.process.close()
            self.process = None


class HostPool:
    """The parent's set of sweep hosts, with shard-owner dispatch.

    Host order is shard order: ticket ``owner`` indexes into the
    configured host list, first attempts go to the owner, retries to
    the next live host (deterministically), and
    :meth:`recycle` revives what it can — respawning ``local:`` hosts,
    reconnecting TCP ones — counting every death and revival into the
    evaluator's :class:`~repro.core.resilience.ResilienceStats`.
    """

    def __init__(
        self,
        hosts: str,
        resilience: ResilienceCounters,
        transport: "TransportCounters | None" = None,
    ) -> None:
        parsed = parse_hosts(hosts)
        self._resilience = resilience
        self._transport = transport
        if isinstance(parsed, int):
            specs: "list[tuple[str, int] | str]" = ["local"] * parsed
        else:
            specs = list(parsed)
        self.clients = [
            HostClient(index, spec, transport)
            for index, spec in enumerate(specs)
        ]
        for client in self.clients:
            # An unreachable host starts dead instead of failing pool
            # construction: its shard flows to survivors (or the serial
            # quarantine path), and recycle() keeps trying to revive it.
            try:
                client.start(self._record_death)
            except HostLost:
                client.close()
                self._resilience.record(host_failures=1)

    def _record_death(self, client: HostClient) -> None:
        self._resilience.record(host_failures=1)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clients)

    def live_clients(self) -> "list[HostClient]":
        """Hosts currently accepting tickets, in shard order."""
        return [c for c in self.clients if c.alive]

    def pick_client(self, owner: int, attempt: int) -> "HostClient | None":
        """The host for one dispatch attempt of an owned ticket.

        First attempts go to the shard owner; a retry — or a dead
        owner — rotates deterministically through the live hosts, so a
        lost host's unfinished shard spreads across the survivors.
        """
        live = self.live_clients()
        if not live:
            return None
        owner_client = self.clients[owner]
        if attempt == 1 and owner_client.alive:
            return owner_client
        return live[(owner + attempt - 1) % len(live)]

    def recycle(self) -> None:
        """Revive dead hosts where possible (respawn local, reconnect TCP).

        A host that cannot be revived stays dead — its shard keeps
        flowing to survivors, and with no survivors every ticket
        quarantines to the parent's serial path, preserving the
        always-completes invariant.
        """
        for index, client in enumerate(self.clients):
            if client.alive:
                continue
            client.close()
            fresh = HostClient(index, client.spec, self._transport)
            try:
                fresh.start(self._record_death)
            except HostLost:
                fresh.close()
                continue
            self.clients[index] = fresh
            self._resilience.record(host_respawns=1)

    def close(self) -> None:
        """Shut every host connection (and local process) down."""
        for client in self.clients:
            client.close()


class DistributedSweepExecutor:
    """Plans and dispatches one evaluator's sweeps across a host pool.

    Owns the pool, the content-digest frame cache and the ticket
    planner; :class:`DistributedDtrEvaluator` delegates its fan-out
    here.  Ticket planning follows the shm path's discipline: the
    scenario list is cut into contiguous shards (one per configured
    host, in scenario order, so reassembly is a concatenation), each
    shard into roughly four tickets per host — bounded by the sweep
    planner's ``group_scenario_budget`` so one ticket never exceeds one
    ``plan_sweep`` batch group's state budget host-side.
    """

    def __init__(
        self,
        hosts: str,
        resilience: ResilienceCounters,
        transport: TransportCounters,
    ) -> None:
        self._hosts = hosts
        self._resilience = resilience
        self._transport = transport
        self._pool: "HostPool | None" = None
        self._pool_lock = threading.Lock()
        self._task_ids = itertools.count()
        self._frames: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._frame_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        """Configured host count (the shard count)."""
        parsed = parse_hosts(self._hosts)
        return parsed if isinstance(parsed, int) else len(parsed)

    def ensure_pool(self) -> HostPool:
        """The live pool, building it lazily on first use."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = HostPool(
                    self._hosts, self._resilience, self._transport
                )
            return self._pool

    def recycle_pool(self) -> None:
        """Supervisor hook: revive what can be revived."""
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            pool.recycle()

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    @property
    def pool(self) -> "HostPool | None":
        """The current pool (None before first sweep) — introspection."""
        return self._pool

    # ------------------------------------------------------------------
    def frame_for(self, key: bytes, message_builder) -> bytes:
        """The encoded wire frame of one epoch payload, LRU-cached."""
        with self._frame_lock:
            frame = self._frames.get(key)
            if frame is not None:
                self._frames.move_to_end(key)
                return frame
        frame = _encode(message_builder())
        with self._frame_lock:
            self._frames[key] = frame
            if len(self._frames) > _FRAME_CACHE_CAP:
                self._frames.popitem(last=False)
        return frame

    def plan_tickets(
        self, count: int, num_nodes: int, chunk_size: "int | None"
    ) -> "list[tuple[int, int, int]]":
        """Contiguous ``(owner, lo, hi)`` tickets over ``count`` scenarios.

        Deterministic in the configured host count alone (results are
        invariant to it anyway — tickets reassemble in scenario order).
        """
        n_hosts = max(1, self.n_hosts)
        budget = group_scenario_budget(num_nodes)
        tickets: "list[tuple[int, int, int]]" = []
        base, extra = divmod(count, n_hosts)
        shard_lo = 0
        for owner in range(n_hosts):
            shard_len = base + (1 if owner < extra else 0)
            if shard_len == 0:
                continue
            if chunk_size is not None:
                size = chunk_size
            else:
                size = max(1, -(-shard_len // 4))
            size = max(1, min(size, budget))
            for lo in range(shard_lo, shard_lo + shard_len, size):
                hi = min(lo + size, shard_lo + shard_len)
                tickets.append((owner, lo, hi))
            shard_lo += shard_len
        return tickets

    def submit_ticket(
        self,
        pool: HostPool,
        owner: int,
        attempt: int,
        seq: int,
        task_payload: tuple,
        epochs: "list[tuple[bytes, Callable[[], bytes]]]",
    ) -> Future:
        """Dispatch one ticket attempt to the owner (or a survivor)."""
        client = pool.pick_client(owner, attempt)
        if client is None:
            pool.recycle()
            client = pool.pick_client(owner, attempt)
        if client is None:
            future: Future = Future()
            future.set_exception(
                HostLost("no live sweep hosts to dispatch to")
            )
            return future
        task_id = next(self._task_ids)
        frame = _encode(("task", task_id) + task_payload + (seq, attempt))
        future, epoch_bytes, task_bytes = client.submit(
            task_id, frame, epochs
        )
        if epoch_bytes:
            self._transport.record(
                publishes=1, payload_bytes=epoch_bytes
            )
        if task_bytes:
            self._transport.record(tasks=1, task_bytes=task_bytes)
        return future


class DistributedDtrEvaluator(CachingDtrEvaluator):
    """Cost oracle that sweeps scenario sets across a TCP host pool.

    The ``executor="hosts"`` counterpart of
    :class:`~repro.core.parallel.ParallelDtrEvaluator`, with the same
    surface (``close()``/context manager, aggregated ``cache_stats``,
    ``resilience_stats``, ``transport_stats``) and the same contract:
    results are **bit-identical** to the serial evaluator — scenarios
    evaluate independently against a NORMAL reuse evaluation, tickets
    reassemble in scenario order, sums fold in scenario order.  Sweeps
    of fewer than two scenarios, normal evaluations and normal batches
    run on the parent's serial path (phase-2 scenario sweeps are what
    justify shipping work off-box).

    Args:
        network: the topology.
        traffic: the two-class traffic instance.
        config: optimizer configuration; ``config.execution.hosts``
            names the pool (``"local:N"`` or ``"host:port,..."``).
        delay_mode: path-delay aggregation mode.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        super().__init__(network, traffic, config, delay_mode)
        execution = config.execution
        self._chunk_size = execution.chunk_size
        self._resilience = ResilienceCounters(mirror=global_counters())
        self._transport = TransportCounters()
        self._retry_policy = RetryPolicy.from_execution(execution)
        self._executor = DistributedSweepExecutor(
            execution.hosts, self._resilience, self._transport
        )
        self._host_stats: "dict[int, CacheStats]" = {}
        self._host_busy: "dict[int, float]" = {}
        self._instance_key: "bytes | None" = None
        self._scen_keys: "OrderedDict[tuple[int, ...], tuple]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        """Configured host count."""
        return self._executor.n_hosts

    @property
    def cache_stats(self) -> CacheStats:
        """Cache counters aggregated over this process and all hosts."""
        total = CachingDtrEvaluator.cache_stats.fget(self)
        for stats in self._host_stats.values():
            total = total + stats
        return total

    @property
    def resilience_stats(self) -> ResilienceStats:
        """Failure/retry/degradation counters of this evaluator's sweeps."""
        return self._resilience.snapshot()

    @property
    def transport_stats(self) -> TransportStats:
        """Bytes-on-wire / busy-seconds accounting of the host pool."""
        return self._transport.snapshot()

    def host_report(self) -> "list[dict[str, object]]":
        """Per-host transfer/timing rows for benchmarks and summaries."""
        pool = self._executor.pool
        if pool is None:
            return []
        return [
            {
                "host": client.describe(),
                "alive": client.alive,
                "tasks_done": client.tasks_done,
                "bytes_sent": client.bytes_sent,
                "bytes_received": client.bytes_received,
                "busy_seconds": round(client.busy_seconds, 6),
            }
            for client in pool.clients
        ]

    def set_execution(self, execution: ExecutionParams) -> None:
        """Adopt new execution knobs between sweeps.

        A changed ``hosts`` spec tears the pool down (lazily rebuilt);
        other knobs retune in place.  Worker-side evaluation knobs are
        carried by the instance epoch digest, so hosts rebuild their
        evaluators automatically on the next sweep after a change.
        """
        hosts_changed = execution.hosts != self._config.execution.hosts
        self._chunk_size = execution.chunk_size
        self._retry_policy = RetryPolicy.from_execution(execution)
        self._config = self._config.replace(execution=execution)
        self._instance_key = None
        if hosts_changed:
            self._executor.close()
            self._executor = DistributedSweepExecutor(
                execution.hosts, self._resilience, self._transport
            )

    def close(self) -> None:
        """Shut down every host connection and sibling oracle (idempotent)."""
        self._executor.close()
        super().close()

    def __enter__(self) -> "DistributedDtrEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except (OSError, RuntimeError):  # pragma: no cover - teardown
            pass

    # ------------------------------------------------------------------
    # epoch keys and frames
    # ------------------------------------------------------------------
    def _instance_epoch(self) -> "tuple[bytes, Callable[[], bytes]]":
        if self._instance_key is None:
            blob = (
                self._network,
                self._traffic,
                self._config,
                self._delay_mode,
            )
            payload = pickle.dumps(blob, protocol=5)
            self._instance_key = b"i" + _digest(payload)
        key = self._instance_key

        def build() -> tuple:
            return (
                "init",
                key,
                (
                    self._network,
                    self._traffic,
                    self._config,
                    self._delay_mode,
                ),
            )

        return key, lambda: self._executor.frame_for(key, build)

    def _scenario_epoch(
        self, items: "tuple"
    ) -> "tuple[bytes, Callable[[], bytes]]":
        # Keyed by object identity first (scenario objects are frozen;
        # phase-2 re-sweeps the same set thousands of times), falling
        # back to a content digest of the pickled tuple.  The memo holds
        # the tuples it keyed, so ids cannot be recycled under it.
        id_key = tuple(id(s) for s in items)
        memo = self._scen_keys
        hit = memo.get(id_key)
        if hit is not None:
            memo.move_to_end(id_key)
            key = hit[0]
        else:
            key = b"s" + _digest(pickle.dumps(items, protocol=5))
            memo[id_key] = (key, items)
            if len(memo) > 8:
                memo.popitem(last=False)

        def build() -> tuple:
            return ("scenarios", key, items)

        return key, lambda: self._executor.frame_for(key, build)

    def _setting_epoch(
        self, setting: WeightSetting
    ) -> "tuple[bytes, Callable[[], bytes]]":
        delay_key, tput_key = setting.key()
        key = b"w" + _digest(delay_key + b"|" + tput_key)

        def build() -> tuple:
            return ("setting", key, setting.delay, setting.tput)

        return key, lambda: self._executor.frame_for(key, build)

    # ------------------------------------------------------------------
    # the distributed sweep
    # ------------------------------------------------------------------
    def evaluate_scenarios(
        self,
        setting: WeightSetting,
        scenarios: Scenarios,
        reuse: "ScenarioEvaluation | None" = None,
    ) -> ScenarioCosts:
        """Distributed counterpart of the serial scenario sweep."""
        items = list(scenarios)
        if len(items) < 2:
            return super().evaluate_scenarios(setting, items, reuse=reuse)
        if reuse is None:
            reuse = self.evaluate_normal(setting)
        outcomes = self._host_sweep(setting, items, reuse, costs_only=False)
        self._num_evaluations += len(items)
        return ScenarioCosts(tuple(outcomes))

    def _sweep_costs(
        self,
        setting: WeightSetting,
        items: list,
        reuse: "ScenarioEvaluation | None",
    ) -> ScenarioCosts:
        """Costs-only sweep: hosts fold locally, scalars stream back."""
        if len(items) < 2:
            return super()._sweep_costs(setting, items, reuse)
        if reuse is None:
            reuse = self.evaluate_normal(setting)
        outcomes = self._host_sweep(setting, items, reuse, costs_only=True)
        self._num_evaluations += len(items)
        return ScenarioCosts(tuple(outcomes))

    def _host_sweep(
        self,
        setting: WeightSetting,
        items: list,
        reuse: ScenarioEvaluation,
        costs_only: bool,
    ) -> "list[ScenarioEvaluation]":
        scenario_tuple = tuple(items)
        ikey, iframe = self._instance_epoch()
        skey, sframe = self._scenario_epoch(scenario_tuple)
        wkey, wframe = self._setting_epoch(setting)
        epochs = [(ikey, iframe), (skey, sframe), (wkey, wframe)]
        tickets = self._executor.plan_tickets(
            len(items), self._network.num_nodes, self._chunk_size
        )

        tasks = []
        for seq, (owner, lo, hi) in enumerate(tickets):
            payload = (ikey, skey, wkey, lo, hi, costs_only)

            def submit(
                pool, attempt, owner=owner, seq=seq, payload=payload
            ):
                return self._executor.submit_ticket(
                    pool, owner, attempt, seq, payload, epochs
                )

            def fallback(lo=lo, hi=hi):
                return self._serial_ticket(
                    setting, items[lo:hi], reuse, costs_only
                )

            tasks.append(
                SupervisedTask(seq=seq, submit=submit, fallback=fallback)
            )

        supervisor = SweepSupervisor(
            policy=self._retry_policy,
            counters=self._resilience,
            ensure_pool=self._executor.ensure_pool,
            reset_pool=self._executor.recycle_pool,
        )
        return self._collect(supervisor.run(tasks))

    def _serial_ticket(
        self,
        setting: WeightSetting,
        items: list,
        reuse: ScenarioEvaluation,
        costs_only: bool,
    ) -> "tuple[list[ScenarioEvaluation], None, None, float]":
        """One quarantined/degraded ticket on the in-process serial path.

        Mirrors a host task exactly — the batched serial slice sweep —
        so the result is bit-identical to a successful dispatch.  The
        evaluation counter is restored because the sweep caller
        accounts the whole sweep once.
        """
        fold = compact_evaluation if costs_only else _strip_routings
        before = self._num_evaluations
        begin = time.perf_counter()
        try:
            costs = DtrEvaluator.evaluate_scenarios(
                self, setting, list(items), reuse=reuse
            )
            outcomes = [fold(e) for e in costs.evaluations]
        finally:
            self._num_evaluations = before
        return (outcomes, None, None, time.perf_counter() - begin)

    def _collect(self, results: list) -> "list[ScenarioEvaluation]":
        """Fold ticket results in ticket (= scenario) order."""
        outcomes: "list[ScenarioEvaluation]" = []
        for chunk_outcomes, host_index, counters, elapsed in results:
            outcomes.extend(chunk_outcomes)
            if host_index is not None:
                self._host_stats[host_index] = CacheStats(*counters)
                self._host_busy[host_index] = (
                    self._host_busy.get(host_index, 0.0) + elapsed
                )
                self._transport.record(busy_seconds=elapsed)
        return outcomes
