"""SLA cost for delay-sensitive traffic (Eq. 2).

An SD pair whose end-to-end delay stays within the bound ``theta`` costs
nothing; beyond the bound it incurs a fixed penalty ``B1`` plus ``B2`` per
millisecond of excess — the threshold-shaped sensitivity of real-time
applications (VoIP quality collapses past a delay knee [7]).

Delays enter in seconds; the excess term is converted to milliseconds so
the paper's ``B1 = 100, B2 = 1`` magnitudes carry over directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SlaParams

#: Seconds-to-milliseconds factor for the excess-delay term.
MS_PER_S = 1000.0


@dataclass(frozen=True)
class SlaOutcome:
    """Aggregate SLA accounting for one (scenario, weight setting).

    Attributes:
        cost: total penalty ``Lambda`` summed over SD pairs.
        violations: number of SD pairs over the bound (including
            disconnected pairs).
        disconnected: number of SD pairs with no path at all.
        pairs: number of SD pairs carrying delay-sensitive demand.
    """

    cost: float
    violations: int
    disconnected: int
    pairs: int

    @property
    def violation_fraction(self) -> float:
        """Violations relative to the pair population."""
        return self.violations / self.pairs if self.pairs else 0.0


def pair_sla_cost(
    delay_s: float, params: SlaParams = SlaParams()
) -> float:
    """Penalty of a single SD pair with the given end-to-end delay."""
    if not np.isfinite(delay_s):
        excess_ms = params.disconnect_excess_factor * params.theta * MS_PER_S
        return params.b1 + params.b2 * excess_ms
    if delay_s <= params.theta:
        return 0.0
    return params.b1 + params.b2 * (delay_s - params.theta) * MS_PER_S


def sla_outcome(
    delays: np.ndarray,
    demand: np.ndarray,
    params: SlaParams = SlaParams(),
) -> SlaOutcome:
    """Total SLA penalty over the SD pairs carrying delay demand.

    Args:
        delays: ``(N, N)`` end-to-end delay matrix in seconds (``inf``
            marks disconnection, ``nan`` marks non-routed entries).
        demand: ``(N, N)`` delay-class demand; pairs with zero demand are
            excluded from the SLA population.
        params: SLA constants.

    Returns:
        The aggregate :class:`SlaOutcome`.
    """
    if delays.shape != demand.shape:
        raise ValueError("delays and demand shapes must match")
    mask = demand > 0.0
    pair_delays = delays[mask]
    if np.any(np.isnan(pair_delays)):
        raise ValueError("demand-carrying pair has no routed delay")

    disconnected = ~np.isfinite(pair_delays)
    finite = pair_delays[~disconnected]
    over = finite > params.theta

    excess_ms = (finite[over] - params.theta) * MS_PER_S
    cost = float(np.sum(params.b1 + params.b2 * excess_ms))
    disconnect_excess_ms = (
        params.disconnect_excess_factor * params.theta * MS_PER_S
    )
    cost += float(disconnected.sum()) * (
        params.b1 + params.b2 * disconnect_excess_ms
    )

    return SlaOutcome(
        cost=cost,
        violations=int(over.sum()) + int(disconnected.sum()),
        disconnected=int(disconnected.sum()),
        pairs=int(mask.sum()),
    )
