"""Parallel, cache-aware evaluation: the cost oracle at hardware speed.

The two-phase search is bottlenecked on :class:`~repro.core.evaluation.
DtrEvaluator`: every candidate weight setting is swept across the whole
failure set serially, and every single-arc weight move re-routes both
traffic classes from scratch.  This module removes both bottlenecks
without changing a single computed bit:

* :class:`RoutingCache` — an LRU cache of :class:`ClassRouting` results
  keyed by ``(class, weights, scenario)``.  Besides exact hits it serves
  *incremental* hits that generalize the evaluator's failed-arc shortcut
  to weight changes: raising the weight of an arc that lies on no
  demand-carrying shortest-path DAG cannot alter any shortest distance,
  DAG or load (arc removal is the limit of that weight going to
  infinity), so the cached routing is returned unchanged.  Local-search
  moves are single-arc, which makes this the common case.  Cache misses
  route through the delta-rerouting core
  (:mod:`repro.routing.incremental`) when it is enabled, and the
  incremental result — bit-identical to a from-scratch routing — is
  cached like any other.

* :class:`CachingDtrEvaluator` — a drop-in evaluator that interposes the
  cache on every class routing.

* :class:`ParallelDtrEvaluator` — additionally fans scenario sweeps
  (legacy failure sets and composed :class:`~repro.scenarios.ScenarioSet`
  collections alike, through the one
  :meth:`~repro.core.evaluation.DtrEvaluator.evaluate_scenarios`
  contract) and normal-evaluation batches out across a
  ``concurrent.futures`` pool
  (processes by default; the propagation kernels are pure Python, so
  threads only help where fork is unavailable).  Scenario order, and
  therefore every floating-point sum, is preserved, so results are
  bit-identical to the serial evaluator; ``tests/core/test_parallel.py``
  pins this.

Workers are long-lived: each holds its own :class:`CachingDtrEvaluator`
(built once per process by the pool initializer) so routing caches stay
warm across sweeps, and every task reports its cumulative cache counters
back so :attr:`ParallelDtrEvaluator.cache_stats` aggregates the whole
fleet.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict, deque
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, replace

import numpy as np

from repro.config import OptimizerConfig
from repro.core.evaluation import (
    DtrEvaluator,
    ScenarioCosts,
    ScenarioEvaluation,
    Scenarios,
)
from repro.core.weights import WeightSetting
from repro.routing.engine import ClassRouting
from repro.routing.failures import FailureScenario
from repro.routing.network import Network
from repro.scenarios.scenario import Scenario
from repro.traffic.gravity import DtrTraffic


@dataclass(frozen=True)
class CacheStats:
    """Routing-cache counters.

    Attributes:
        hits_exact: lookups answered by an identical (weights, scenario)
            entry.
        hits_incremental: lookups answered by the unused-arc weight-change
            shortcut.
        misses: lookups that had to route from scratch.
    """

    hits_exact: int = 0
    hits_incremental: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """All cache hits."""
        return self.hits_exact + self.hits_incremental

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits_exact + other.hits_exact,
            self.hits_incremental + other.hits_incremental,
            self.misses + other.misses,
        )


@dataclass
class _CacheEntry:
    """One cached routing: the weights it was computed under, the routing,
    and the per-arc used-on-any-DAG mask for the incremental check."""

    weights: np.ndarray
    routing: ClassRouting
    used: np.ndarray


#: Recent entries probed per (class, scenario) for an incremental hit.
_PROBE_DEPTH = 4


class RoutingCache:
    """LRU cache of class routings with an incremental-reuse fast path.

    Keys are ``(class_id, scenario, weights_bytes)``.  A lookup first
    tries the exact key; failing that it probes the most recent entries
    of the same ``(class_id, scenario)`` and reuses one whose weights
    differ from the query only on arcs that (a) got *heavier* and (b) lie
    on no demand-carrying shortest-path DAG of the cached routing.  Such
    changes provably leave distances, DAG masks and loads untouched, so
    the cached routing is bit-identical to what a fresh computation would
    produce (the parity tests pin this).

    All operations are guarded by a lock so the thread-pool executor can
    share one cache.

    Args:
        max_entries: LRU capacity (entries, across classes and scenarios).
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._recent: dict[tuple, deque] = {}
        self._lock = threading.Lock()
        self._hits_exact = 0
        self._hits_incremental = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Current counters (snapshot)."""
        with self._lock:
            return CacheStats(
                self._hits_exact, self._hits_incremental, self._misses
            )

    # ------------------------------------------------------------------
    def get(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
    ) -> ClassRouting | None:
        """A routing valid for ``weights`` under ``scenario``, or None."""
        key = (class_id, scenario, weights.tobytes())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits_exact += 1
                return entry.routing
            for recent_key in reversed(
                self._recent.get((class_id, scenario), ())
            ):
                entry = self._entries.get(recent_key)
                if entry is None:
                    continue
                changed = entry.weights != weights
                if not changed.any():
                    continue  # dtype-mismatched duplicate of the exact key
                if (
                    bool((weights >= entry.weights)[changed].all())
                    and not entry.used[changed].any()
                ):
                    self._hits_incremental += 1
                    return entry.routing
            self._misses += 1
            return None

    def put(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
        routing: ClassRouting,
    ) -> None:
        """Store a routing computed (or proven valid) for ``weights``."""
        key = (class_id, scenario, weights.tobytes())
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = _CacheEntry(
                weights=np.array(weights, copy=True),
                routing=routing,
                used=routing.used_arcs(),
            )
            recent = self._recent.setdefault(
                (class_id, scenario), deque(maxlen=_PROBE_DEPTH)
            )
            recent.append(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._recent.clear()


class CachingDtrEvaluator(DtrEvaluator):
    """Drop-in :class:`DtrEvaluator` with the incremental routing cache.

    Produces bit-identical results to the serial evaluator — the cache
    only short-circuits recomputation of provably unchanged routings.
    ``config.execution.routing_cache = False`` disables caching (for
    memory-bound runs or A/B checks) while keeping the class usable as
    the worker-side evaluator of the parallel pool.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        super().__init__(network, traffic, config, delay_mode)
        execution = config.execution
        self._cache = (
            RoutingCache(execution.cache_size)
            if execution.routing_cache
            else None
        )

    @property
    def cache(self) -> RoutingCache | None:
        """The routing cache (None when disabled)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregated cache counters (all-zero when caching is off)."""
        if self._cache is None:
            return CacheStats()
        return self._cache.stats

    def _route_with_reuse(
        self,
        class_id: str,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario,
        base_routing: ClassRouting | None,
    ) -> tuple[ClassRouting, "frozenset[int] | None"]:
        """Cache layer over the (incremental) routing path.

        An exact cache hit skips routing entirely; misses go through the
        incremental router (when enabled), and the incremental result is
        a perfectly cacheable routing — it is bit-identical to a
        from-scratch one — so it is stored like any other.
        """
        if self._cache is None:
            return super()._route_with_reuse(
                class_id, weights, demands, scenario, base_routing
            )
        routing = self._cache.get(class_id, scenario, weights)
        reusable: frozenset[int] | None = None
        if routing is None:
            routing, reusable = super()._route_with_reuse(
                class_id, weights, demands, scenario, base_routing
            )
        self._cache.put(class_id, scenario, weights, routing)
        return routing, reusable


# ----------------------------------------------------------------------
# worker-process state and task functions
# ----------------------------------------------------------------------
_WORKER_EVALUATOR: CachingDtrEvaluator | None = None


def _init_worker(
    network: Network,
    traffic: DtrTraffic,
    config: OptimizerConfig,
    delay_mode: str,
) -> None:
    """Build the per-process evaluator once; its cache outlives tasks."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = CachingDtrEvaluator(
        network, traffic, config, delay_mode
    )


def _strip_routings(evaluation: ScenarioEvaluation) -> ScenarioEvaluation:
    """Drop the attached routings (cuts IPC volume; costs are complete)."""
    if evaluation.routing_delay is None and evaluation.routing_tput is None:
        return evaluation
    return replace(evaluation, routing_delay=None, routing_tput=None)


def _worker_sweep(
    delay_weights: np.ndarray,
    tput_weights: np.ndarray,
    scenarios: "tuple[FailureScenario | Scenario, ...]",
    reuse: ScenarioEvaluation | None,
) -> tuple[list[ScenarioEvaluation], int, tuple[int, int, int]]:
    """Evaluate one scenario chunk in a worker process.

    Chunks may mix plain failure scenarios and composed
    :class:`~repro.scenarios.Scenario` items; the worker's evaluator
    unwraps them exactly like the serial path (variant scenarios build
    their sibling oracles per process, seeded deterministically, so the
    fan-out stays bit-identical to a serial sweep).

    Returns the stripped evaluations in input order plus the worker's pid
    and *cumulative* cache counters (the parent keeps the latest counters
    per pid, so re-sending totals is idempotent).
    """
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "worker initializer did not run"
    setting = WeightSetting(delay_weights, tput_weights)
    outcomes = [
        _strip_routings(evaluator.evaluate(setting, s, reuse=reuse))
        for s in scenarios
    ]
    stats = evaluator.cache_stats
    return (
        outcomes,
        os.getpid(),
        (stats.hits_exact, stats.hits_incremental, stats.misses),
    )


def _worker_normal_batch(
    settings: tuple[tuple[np.ndarray, np.ndarray], ...],
) -> tuple[list[ScenarioEvaluation], int, tuple[int, int, int]]:
    """Evaluate a batch of settings under the failure-free scenario."""
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "worker initializer did not run"
    outcomes = [
        _strip_routings(
            evaluator.evaluate_normal(WeightSetting(delay, tput))
        )
        for delay, tput in settings
    ]
    stats = evaluator.cache_stats
    return (
        outcomes,
        os.getpid(),
        (stats.hits_exact, stats.hits_incremental, stats.misses),
    )


class ParallelDtrEvaluator(CachingDtrEvaluator):
    """Cost oracle that sweeps failure sets across a worker pool.

    Results are bit-identical to :class:`DtrEvaluator`: scenarios are
    evaluated independently with the same arithmetic, reassembled in
    scenario order, and summed in the same order.  Evaluations returned
    from parallel sweeps carry no attached routings (they stay in the
    workers); everything else — costs, SLA accounting, load vectors —
    is complete.

    The pool is created lazily on the first parallel call and torn down
    by :meth:`close` (also a context manager).  With ``n_jobs=1`` every
    call degrades gracefully to the serial cached path.

    Args:
        network: the topology.
        traffic: the two-class traffic instance.
        config: optimizer configuration; ``config.execution`` supplies
            ``n_jobs``, executor kind, chunking and cache knobs.
        delay_mode: path-delay aggregation mode.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        super().__init__(network, traffic, config, delay_mode)
        execution = config.execution
        self._n_jobs = execution.resolved_jobs
        self._executor_kind = execution.executor
        self._chunk_size = execution.chunk_size
        self._pool: Executor | None = None
        self._pool_lock = threading.Lock()
        self._worker_stats: dict[int, CacheStats] = {}

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Effective worker count."""
        return self._n_jobs

    @property
    def cache_stats(self) -> CacheStats:
        """Cache counters aggregated over this process and all workers."""
        total = CachingDtrEvaluator.cache_stats.fget(self)
        for stats in self._worker_stats.values():
            total = total + stats
        return total

    def close(self) -> None:
        """Shut down the worker pool and sibling oracles (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()

    def __enter__(self) -> "ParallelDtrEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        with self._pool_lock:
            if self._pool is None:
                if self._executor_kind == "process":
                    self._pool = ProcessPoolExecutor(
                        max_workers=self._n_jobs,
                        initializer=_init_worker,
                        initargs=(
                            self._network,
                            self._traffic,
                            self._config,
                            self._delay_mode,
                        ),
                    )
                else:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._n_jobs,
                        thread_name_prefix="repro-eval",
                    )
            return self._pool

    def _chunks(self, items: list) -> list[list]:
        """Contiguous chunks; about four tasks per worker unless pinned."""
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, math.ceil(len(items) / (self._n_jobs * 4)))
        return [items[i: i + size] for i in range(0, len(items), size)]

    def _record_worker_stats(
        self, pid: int, counters: tuple[int, int, int]
    ) -> None:
        self._worker_stats[pid] = CacheStats(*counters)

    # ------------------------------------------------------------------
    def evaluate_scenarios(
        self,
        setting: WeightSetting,
        scenarios: Scenarios,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioCosts:
        """Parallel counterpart of :meth:`DtrEvaluator.evaluate_scenarios`.

        Same contract as the serial sweep — a
        :class:`~repro.scenarios.ScenarioSet`, a legacy ``FailureSet``
        or any scenario sequence.  Scenario chunks run concurrently;
        results are reassembled in scenario order, so
        ``ScenarioCosts.total_cost`` sums in the same order as the
        serial sweep and is bit-identical to it.  Chunk boundaries key
        off nothing but list position, and composed scenarios are
        shipped by value (their digests pin content), so the split is
        deterministic.
        """
        items = list(scenarios)
        if self._n_jobs == 1 or len(items) < 2:
            return super().evaluate_scenarios(setting, items, reuse=reuse)
        if reuse is None:
            reuse = self.evaluate_normal(setting)

        if self._executor_kind == "thread":
            before = self._num_evaluations
            outcomes = self._threaded_sweep(setting, items, reuse)
            # Worker threads bumped the (non-atomic) counter; restate it.
            self._num_evaluations = before + len(items)
        else:
            # The reuse evaluation ships WITH its routings — workers need
            # them for the failed-arc shortcut; ClassRouting drops its
            # Network back-reference on pickling, so the payload is small.
            outcomes = self._process_sweep(setting, items, reuse)
            self._num_evaluations += len(items)
        return ScenarioCosts(tuple(outcomes))

    def _process_sweep(
        self,
        setting: WeightSetting,
        scenarios: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation,
    ) -> list[ScenarioEvaluation]:
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _worker_sweep,
                setting.delay,
                setting.tput,
                tuple(chunk),
                reuse,
            )
            for chunk in self._chunks(scenarios)
        ]
        outcomes: list[ScenarioEvaluation] = []
        for future in futures:
            chunk_outcomes, pid, counters = future.result()
            outcomes.extend(chunk_outcomes)
            self._record_worker_stats(pid, counters)
        return outcomes

    def _threaded_sweep(
        self,
        setting: WeightSetting,
        scenarios: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation,
    ) -> list[ScenarioEvaluation]:
        pool = self._ensure_pool()

        def sweep_chunk(chunk: list) -> list[ScenarioEvaluation]:
            # Threads share this evaluator; the cache is lock-guarded.
            return [
                _strip_routings(self.evaluate(setting, s, reuse=reuse))
                for s in chunk
            ]

        futures = [
            pool.submit(sweep_chunk, chunk)
            for chunk in self._chunks(scenarios)
        ]
        outcomes: list[ScenarioEvaluation] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    # ------------------------------------------------------------------
    def evaluate_normal_batch(
        self, settings: "list[WeightSetting] | tuple[WeightSetting, ...]"
    ) -> tuple[ScenarioEvaluation, ...]:
        """Failure-free costs of several settings, fanned across the pool."""
        settings = list(settings)
        if (
            self._n_jobs == 1
            or len(settings) < 2
            or self._executor_kind == "thread"
        ):
            return super().evaluate_normal_batch(settings)
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _worker_normal_batch,
                tuple((s.delay, s.tput) for s in chunk),
            )
            for chunk in self._chunks(settings)
        ]
        outcomes: list[ScenarioEvaluation] = []
        for future in futures:
            chunk_outcomes, pid, counters = future.result()
            outcomes.extend(chunk_outcomes)
            self._record_worker_stats(pid, counters)
        self._num_evaluations += len(settings)
        return tuple(outcomes)


def make_evaluator(
    network: Network,
    traffic: DtrTraffic,
    config: OptimizerConfig,
    delay_mode: str = "worst",
) -> DtrEvaluator:
    """The right evaluator for ``config.execution``.

    ``n_jobs > 1`` (or 0 = all CPUs on a multi-core host) selects the
    parallel evaluator, ``routing_cache`` alone the caching one, and the
    plain serial evaluator otherwise.  All three produce bit-identical
    results.
    """
    execution = config.execution
    if execution.resolved_jobs > 1:
        return ParallelDtrEvaluator(network, traffic, config, delay_mode)
    if execution.routing_cache:
        return CachingDtrEvaluator(network, traffic, config, delay_mode)
    return DtrEvaluator(network, traffic, config, delay_mode)
