"""Parallel, cache-aware evaluation: the cost oracle at hardware speed.

The two-phase search is bottlenecked on :class:`~repro.core.evaluation.
DtrEvaluator`: every candidate weight setting is swept across the whole
failure set serially, and every single-arc weight move re-routes both
traffic classes from scratch.  This module removes both bottlenecks
without changing a single computed bit:

* :class:`RoutingCache` — an LRU cache of :class:`ClassRouting` results
  keyed by ``(class, weights, scenario)``.  Besides exact hits it serves
  *incremental* hits that generalize the evaluator's failed-arc shortcut
  to weight changes: raising the weight of an arc that lies on no
  demand-carrying shortest-path DAG cannot alter any shortest distance,
  DAG or load (arc removal is the limit of that weight going to
  infinity), so the cached routing is returned unchanged.  Local-search
  moves are single-arc, which makes this the common case.  Cache misses
  route through the delta-rerouting core
  (:mod:`repro.routing.incremental`) when it is enabled, and the
  incremental result — bit-identical to a from-scratch routing — is
  cached like any other.

* :class:`CachingDtrEvaluator` — a drop-in evaluator that interposes the
  cache on every class routing.

* :class:`ParallelDtrEvaluator` — additionally fans scenario sweeps
  (legacy failure sets and composed :class:`~repro.scenarios.ScenarioSet`
  collections alike, through the one
  :meth:`~repro.core.evaluation.DtrEvaluator.evaluate_scenarios`
  contract) and normal-evaluation batches out across a
  ``concurrent.futures`` pool
  (processes by default; the propagation kernels are pure Python, so
  threads only help where fork is unavailable).  Scenario order, and
  therefore every floating-point sum, is preserved, so results are
  bit-identical to the serial evaluator; ``tests/core/test_parallel.py``
  pins this.

Workers are long-lived: each holds its own :class:`CachingDtrEvaluator`
(built once per process by the pool initializer) so routing caches stay
warm across sweeps, and every task reports its cumulative cache counters
back so :attr:`ParallelDtrEvaluator.cache_stats` aggregates the whole
fleet.

With sweep batching resolved on (the default for multi-scenario
sweeps), the process path stops shipping sweep state by value: a
:class:`SharedSweepState` publishes the weight setting, the scenario
list and the reuse evaluation once per sweep through
``multiprocessing.shared_memory`` (arrays leave the pickle stream as
protocol-5 out-of-band buffers), workers attach zero-copy, and every
task carries only a ``(block name, scenario-index range)`` ticket.
Workers then sweep their slice through the scenario-axis batch engine
(:mod:`repro.routing.sweep`); the thread executor reuses the same
grouping planner without shared memory.  Results stay bit-identical
and invariant to ``n_jobs`` / ``chunk_size`` either way.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import signal
import struct
import threading
import time
import weakref
from collections import OrderedDict, deque
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as futures_wait,
)
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

import numpy as np

from repro.config import ExecutionParams, OptimizerConfig
from repro.core import faults
from repro.core.evaluation import (
    DtrEvaluator,
    ScenarioCosts,
    ScenarioEvaluation,
    Scenarios,
    compact_evaluation,
)
from repro.core.resilience import (
    ResilienceCounters,
    ResilienceStats,
    RetryPolicy,
    SupervisedTask,
    SweepSupervisor,
    TransportCounters,
    TransportStats,
    global_counters,
)
from repro.core.weights import WeightSetting
from repro.routing.engine import ClassRouting, RoutingEngine
from repro.routing.failures import FailureScenario
from repro.routing.network import Network
from repro.scenarios.scenario import Scenario
from repro.traffic.gravity import DtrTraffic


@dataclass(frozen=True)
class CacheStats:
    """Routing-cache counters.

    Attributes:
        hits_exact: lookups answered by an identical (weights, scenario)
            entry.
        hits_incremental: lookups answered by the unused-arc weight-change
            shortcut.
        misses: lookups that had to route from scratch.
    """

    hits_exact: int = 0
    hits_incremental: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """All cache hits."""
        return self.hits_exact + self.hits_incremental

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits_exact + other.hits_exact,
            self.hits_incremental + other.hits_incremental,
            self.misses + other.misses,
        )


@dataclass
class _CacheEntry:
    """One cached routing: the weights it was computed under, the routing,
    and the per-arc used-on-any-DAG mask for the incremental check."""

    weights: np.ndarray
    routing: ClassRouting
    used: np.ndarray


#: Recent entries probed per (class, scenario) for an incremental hit.
_PROBE_DEPTH = 4


class RoutingCache:
    """LRU cache of class routings with an incremental-reuse fast path.

    Keys are ``(class_id, scenario, weights_bytes)``.  A lookup first
    tries the exact key; failing that it probes the most recent entries
    of the same ``(class_id, scenario)`` and reuses one whose weights
    differ from the query only on arcs that (a) got *heavier* and (b) lie
    on no demand-carrying shortest-path DAG of the cached routing.  Such
    changes provably leave distances, DAG masks and loads untouched, so
    the cached routing is bit-identical to what a fresh computation would
    produce (the parity tests pin this).

    All operations are guarded by a lock so the thread-pool executor can
    share one cache.

    Args:
        max_entries: LRU capacity (entries, across classes and scenarios).
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._recent: dict[tuple, deque] = {}
        self._lock = threading.Lock()
        self._hits_exact = 0
        self._hits_incremental = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Current counters (snapshot)."""
        with self._lock:
            return CacheStats(
                self._hits_exact, self._hits_incremental, self._misses
            )

    # ------------------------------------------------------------------
    def get(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
    ) -> ClassRouting | None:
        """A routing valid for ``weights`` under ``scenario``, or None."""
        key = (class_id, scenario, weights.tobytes())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits_exact += 1
                return entry.routing
            for recent_key in reversed(
                self._recent.get((class_id, scenario), ())
            ):
                entry = self._entries.get(recent_key)
                if entry is None:
                    continue
                changed = entry.weights != weights
                if not changed.any():
                    continue  # dtype-mismatched duplicate of the exact key
                if (
                    bool((weights >= entry.weights)[changed].all())
                    and not entry.used[changed].any()
                ):
                    self._hits_incremental += 1
                    return entry.routing
            self._misses += 1
            return None

    def put(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
        routing: ClassRouting,
    ) -> None:
        """Store a routing computed (or proven valid) for ``weights``."""
        key = (class_id, scenario, weights.tobytes())
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = _CacheEntry(
                weights=np.array(weights, copy=True),
                routing=routing,
                used=routing.used_arcs(),
            )
            recent = self._recent.setdefault(
                (class_id, scenario), deque(maxlen=_PROBE_DEPTH)
            )
            recent.append(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._recent.clear()


class CachingDtrEvaluator(DtrEvaluator):
    """Drop-in :class:`DtrEvaluator` with the incremental routing cache.

    Produces bit-identical results to the serial evaluator — the cache
    only short-circuits recomputation of provably unchanged routings.
    ``config.execution.routing_cache = False`` disables caching (for
    memory-bound runs or A/B checks) while keeping the class usable as
    the worker-side evaluator of the parallel pool.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        super().__init__(network, traffic, config, delay_mode)
        execution = config.execution
        self._cache = (
            RoutingCache(execution.cache_size)
            if execution.routing_cache
            else None
        )

    @property
    def cache(self) -> RoutingCache | None:
        """The routing cache (None when disabled)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregated cache counters (all-zero when caching is off)."""
        if self._cache is None:
            return CacheStats()
        return self._cache.stats

    def _route_with_reuse(
        self,
        class_id: str,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario,
        base_routing: ClassRouting | None,
    ) -> tuple[ClassRouting, "frozenset[int] | None"]:
        """Cache layer over the (incremental) routing path.

        An exact cache hit skips routing entirely; misses go through the
        incremental router (when enabled), and the incremental result is
        a perfectly cacheable routing — it is bit-identical to a
        from-scratch one — so it is stored like any other.
        """
        if self._cache is None:
            return super()._route_with_reuse(
                class_id, weights, demands, scenario, base_routing
            )
        routing = self._cache.get(class_id, scenario, weights)
        reusable: frozenset[int] | None = None
        if routing is None:
            routing, reusable = super()._route_with_reuse(
                class_id, weights, demands, scenario, base_routing
            )
        self._cache.put(class_id, scenario, weights, routing)
        return routing, reusable

    def _batch_route_lookup(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
    ) -> ClassRouting | None:
        """Cache probe of the batch sweep path (same keys as the serial
        caching path, so warm caches answer batched sweeps too)."""
        if self._cache is None:
            return None
        return self._cache.get(class_id, scenario, weights)

    def _batch_route_store(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
        routing: ClassRouting,
    ) -> None:
        """Cache store of the batch sweep path."""
        if self._cache is not None:
            self._cache.put(class_id, scenario, weights, routing)


# ----------------------------------------------------------------------
# worker-process state and task functions
# ----------------------------------------------------------------------
_WORKER_EVALUATOR: CachingDtrEvaluator | None = None


def _init_worker(
    network: Network,
    traffic: DtrTraffic,
    config: OptimizerConfig,
    delay_mode: str,
) -> None:
    """Build the per-process evaluator once; its cache outlives tasks.

    Also installs the execution's fault plan (chaos testing) — workers
    only, so the parent's serial fallback path always computes clean.
    """
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = CachingDtrEvaluator(
        network, traffic, config, delay_mode
    )
    faults.install_fault_plan(config.execution.fault_plan)
    # Under fork the worker inherits the parent's live-sweep registry
    # and its SIGTERM/atexit cleanup hooks.  A pool (re)built while a
    # sweep state is live — routine once the supervisor rebuilds pools
    # mid-sweep — would otherwise let a terminating worker *unlink the
    # parent's block*, failing every ticket still to be dispatched.
    # The worker owns none of these states: forget them, never dispose.
    _LIVE_SWEEP_STATES.clear()


def _supervised_task(fn, task_seq: int, attempt: int, /, *args):
    """Run one dispatched task inside its fault context (worker side).

    Every process-pool submission goes through this wrapper so the
    deterministic fault registry (:mod:`repro.core.faults`) can key
    kill/delay/raise faults on ``(task_seq, attempt)``.  With no plan
    installed — every production run — it is a try/finally around the
    task function.
    """
    faults.enter_task(task_seq, attempt)
    try:
        return fn(*args)
    finally:
        faults.exit_task()


def _strip_routings(evaluation: ScenarioEvaluation) -> ScenarioEvaluation:
    """Drop the attached routings (cuts IPC volume; costs are complete)."""
    if evaluation.routing_delay is None and evaluation.routing_tput is None:
        return evaluation
    return replace(evaluation, routing_delay=None, routing_tput=None)


def _worker_sweep(
    delay_weights: np.ndarray,
    tput_weights: np.ndarray,
    scenarios: "tuple[FailureScenario | Scenario, ...]",
    reuse: ScenarioEvaluation | None,
    costs_only: bool = False,
) -> tuple[list[ScenarioEvaluation], int, tuple[int, int, int], float]:
    """Evaluate one scenario chunk in a worker process.

    Chunks may mix plain failure scenarios and composed
    :class:`~repro.scenarios.Scenario` items; the worker's evaluator
    unwraps them exactly like the serial path (variant scenarios build
    their sibling oracles per process, seeded deterministically, so the
    fan-out stays bit-identical to a serial sweep).

    With ``costs_only`` the worker folds locally: evaluations are
    compacted to their scalars (cost + SLA) before shipping, so the IPC
    payload is a few floats per scenario regardless of instance size.

    Returns the stripped evaluations in input order plus the worker's
    pid, *cumulative* cache counters (the parent keeps the latest
    counters per pid, so re-sending totals is idempotent) and the
    task's compute seconds (``TransportStats.busy_seconds``).
    """
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "worker initializer did not run"
    begin = time.perf_counter()
    setting = WeightSetting(delay_weights, tput_weights)
    fold = compact_evaluation if costs_only else _strip_routings
    outcomes = [
        fold(evaluator.evaluate(setting, s, reuse=reuse))
        for s in scenarios
    ]
    stats = evaluator.cache_stats
    return (
        outcomes,
        os.getpid(),
        (stats.hits_exact, stats.hits_incremental, stats.misses),
        time.perf_counter() - begin,
    )


# ----------------------------------------------------------------------
# zero-copy shared-memory sweep state
# ----------------------------------------------------------------------
#: Alignment of buffers inside a shared-memory block (numpy-friendly).
_SHM_ALIGN = 64

#: Upper bound on waiting for straggler tickets before a sweep's shm
#: block is unlinked anyway (unlink-while-attached is safe; see
#: :meth:`ParallelDtrEvaluator._process_sweep_shared`).
_DISPOSE_SETTLE_TIMEOUT = 10.0


def _aligned(offset: int) -> int:
    return (offset + _SHM_ALIGN - 1) & ~(_SHM_ALIGN - 1)


class SharedSweepState:
    """One sweep's shared payload, published once through shared memory.

    The legacy process path pickles the weight setting, the scenario
    chunk and the reuse evaluation (with its routings) into **every**
    task.  This class publishes the whole sweep payload exactly once:
    the payload is pickled with protocol 5, every contiguous array body
    (distance columns, DAG masks, demand matrices, per-variant traffic,
    load vectors) leaves the stream as an out-of-band buffer, and the
    buffers land in one shared-memory block.  Workers attach by name
    and rebuild the payload with read-only memoryviews over the block,
    so every array is a **zero-copy view** of shared memory — tasks
    then carry only ``(block name, scenario-index range)`` tickets, a
    few dozen bytes regardless of instance size.

    The parent disposes the block once the sweep's futures complete
    (workers that attached keep their mapping alive until they move to
    the next sweep, so in-flight reads are safe; POSIX keeps the pages
    until the last map closes).

    Args:
        payload: any picklable object graph; arrays must tolerate
            read-only reconstruction (evaluation inputs are never
            mutated).
    """

    def __init__(self, payload: object) -> None:
        buffers: "list[pickle.PickleBuffer]" = []
        meta = pickle.dumps(
            payload, protocol=5, buffer_callback=buffers.append
        )
        raws = [buffer.raw() for buffer in buffers]
        header = struct.pack("<QQ", len(meta), len(raws))
        lengths = struct.pack(f"<{len(raws)}Q", *(len(r) for r in raws))
        offset = _aligned(len(header) + len(lengths)) + _aligned(len(meta))
        starts = []
        for raw in raws:
            starts.append(offset)
            offset += _aligned(len(raw))
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1)
        )
        buf = self._shm.buf
        buf[: len(header)] = header
        buf[len(header): len(header) + len(lengths)] = lengths
        meta_start = _aligned(len(header) + len(lengths))
        buf[meta_start: meta_start + len(meta)] = meta
        for raw, start in zip(raws, starts):
            buf[start: start + len(raw)] = raw
        self._size = offset
        self._disposed = False
        _LIVE_SWEEP_STATES.add(self)
        _install_sweep_cleanup()

    @property
    def name(self) -> str:
        """The shared-memory block name workers attach to."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Published payload size in bytes (for benchmarks)."""
        return self._size

    def dispose(self) -> None:
        """Close and unlink the block (idempotent; parent side only)."""
        if self._disposed:
            return
        self._disposed = True
        _LIVE_SWEEP_STATES.discard(self)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @staticmethod
    def attach(name: str) -> "tuple[object, shared_memory.SharedMemory]":
        """Rebuild a published payload as zero-copy views (worker side).

        Returns the payload and the attached block; the caller must keep
        the block referenced for as long as the payload's arrays live.
        """
        # Attaching re-registers the block with the resource tracker;
        # under fork the tracker process is shared with the parent, so
        # the duplicate registration is an idempotent set-add and the
        # parent's unlink() clears it exactly once.
        shm = shared_memory.SharedMemory(name=name)
        buf = shm.buf
        meta_len, num_buffers = struct.unpack_from("<QQ", buf, 0)
        lengths = struct.unpack_from(f"<{num_buffers}Q", buf, 16)
        meta_start = _aligned(16 + 8 * num_buffers)
        meta = bytes(buf[meta_start: meta_start + meta_len])
        offset = meta_start + _aligned(meta_len)
        views = []
        for length in lengths:
            views.append(
                memoryview(buf)[offset: offset + length].toreadonly()
            )
            offset += _aligned(length)
        payload = pickle.loads(meta, buffers=views)
        return payload, shm


#: Parent-side registry of live (undisposed) sweep blocks.  Shared
#: memory outlives the process on abnormal exits — a SIGTERM mid-sweep
#: would leak the block in /dev/shm until reboot — so every live state
#: is tracked weakly and unlinked from an ``atexit`` hook and (when no
#: other handler claimed the signal) a chaining SIGTERM handler.
_LIVE_SWEEP_STATES: "weakref.WeakSet[SharedSweepState]" = weakref.WeakSet()
_SWEEP_CLEANUP_INSTALLED = False


def _dispose_live_sweep_states() -> None:
    """Unlink every still-live sweep block (idempotent, best-effort).

    Only OS-level disposal failures are swallowed (the block may be
    half-gone already during interpreter teardown); anything else —
    and in particular ``KeyboardInterrupt``/``SystemExit`` — must
    propagate.
    """
    for state in list(_LIVE_SWEEP_STATES):
        try:
            state.dispose()
        except (OSError, BufferError):  # pragma: no cover - teardown
            pass


def _sweep_cleanup_handler(signum: int, frame: object) -> None:
    """Dispose live blocks, then re-deliver the signal with SIG_DFL."""
    _dispose_live_sweep_states()
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_sweep_cleanup() -> None:
    """One-shot registration of the atexit/SIGTERM cleanup hooks.

    The atexit hook always registers; the SIGTERM handler only when the
    signal is still at its default disposition and we are on the main
    thread — an application (or :class:`~repro.core.checkpoint.
    CheckpointManager`) that installed its own handler keeps it, and its
    orderly unwind disposes the blocks through the existing
    ``try/finally`` paths.
    """
    global _SWEEP_CLEANUP_INSTALLED
    if _SWEEP_CLEANUP_INSTALLED:
        return
    _SWEEP_CLEANUP_INSTALLED = True
    atexit.register(_dispose_live_sweep_states)
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) == signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sweep_cleanup_handler)
    except (ValueError, OSError):  # pragma: no cover - exotic contexts
        pass


#: The worker's attached sweep states: name -> (payload, shm block).
#: One sweep is live at a time; superseded blocks are closed as soon as
#: no exported views remain (a retired block whose views are still
#: referenced survives until the next retirement pass).
_WORKER_SWEEPS: "dict[str, tuple[object, shared_memory.SharedMemory]]" = {}
_WORKER_RETIRED: "list[shared_memory.SharedMemory]" = []


def _close_retired() -> None:
    still_open = []
    for shm in _WORKER_RETIRED:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still exported
            still_open.append(shm)
    _WORKER_RETIRED[:] = still_open


def _attach_sweep_state(name: str) -> object:
    """The (cached) payload of one published sweep, attached zero-copy."""
    cached = _WORKER_SWEEPS.get(name)
    if cached is not None:
        return cached[0]
    for stale_name in list(_WORKER_SWEEPS):
        _, shm = _WORKER_SWEEPS.pop(stale_name)
        _WORKER_RETIRED.append(shm)
    _close_retired()
    payload, shm = SharedSweepState.attach(name)
    _WORKER_SWEEPS[name] = (payload, shm)
    return payload


def _worker_sweep_shared(
    name: str, start: int, stop: int, costs_only: bool = False
) -> tuple[list[ScenarioEvaluation], int, tuple[int, int, int], float]:
    """Evaluate one ticketed scenario slice against the shared state.

    The ticket carries only the block name and the slice bounds; the
    setting, scenarios and reuse evaluation are read zero-copy from the
    attached block (once per sweep, cached across this worker's
    tickets).  The slice sweeps through the evaluator's batched serial
    path, so workers get scenario-axis batching too.  ``costs_only``
    folds locally — only cost/SLA scalars ship back.
    """
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "worker initializer did not run"
    begin = time.perf_counter()
    delay, tput, scenarios, reuse = _attach_sweep_state(name)
    setting = WeightSetting(delay, tput)
    costs = evaluator.evaluate_scenarios(
        setting, list(scenarios[start:stop]), reuse=reuse
    )
    fold = compact_evaluation if costs_only else _strip_routings
    outcomes = [fold(e) for e in costs.evaluations]
    stats = evaluator.cache_stats
    return (
        outcomes,
        os.getpid(),
        (stats.hits_exact, stats.hits_incremental, stats.misses),
        time.perf_counter() - begin,
    )


def _worker_normal_batch(
    settings: tuple[tuple[np.ndarray, np.ndarray], ...],
) -> tuple[list[ScenarioEvaluation], int, tuple[int, int, int], float]:
    """Evaluate a batch of settings under the failure-free scenario."""
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "worker initializer did not run"
    begin = time.perf_counter()
    outcomes = [
        _strip_routings(
            evaluator.evaluate_normal(WeightSetting(delay, tput))
        )
        for delay, tput in settings
    ]
    stats = evaluator.cache_stats
    return (
        outcomes,
        os.getpid(),
        (stats.hits_exact, stats.hits_incremental, stats.misses),
        time.perf_counter() - begin,
    )


def _shutdown_pool(pool: Executor, wait: bool = True) -> None:
    """Shut an executor down, tolerating one that is already broken.

    A pool whose workers were SIGKILLed (``BrokenProcessPool``) must
    still shut down cleanly — ``close()``/``set_execution()`` on a
    crashed evaluator cannot be allowed to raise.  With ``wait=False``
    queued tasks are cancelled too (used when recycling a *suspect*
    pool that may hold a wedged worker).  Only pool-teardown failures
    are swallowed; ``KeyboardInterrupt``/``SystemExit`` propagate.
    """
    try:
        pool.shutdown(wait=wait, cancel_futures=not wait)
    except (OSError, RuntimeError):  # pragma: no cover - best effort
        pass


class ParallelDtrEvaluator(CachingDtrEvaluator):
    """Cost oracle that sweeps failure sets across a worker pool.

    Results are bit-identical to :class:`DtrEvaluator`: scenarios are
    evaluated independently with the same arithmetic, reassembled in
    scenario order, and summed in the same order.  Evaluations returned
    from parallel sweeps carry no attached routings (they stay in the
    workers); everything else — costs, SLA accounting, load vectors —
    is complete.

    The pool is created lazily on the first parallel call and torn down
    by :meth:`close` (also a context manager).  With ``n_jobs=1`` every
    call degrades gracefully to the serial cached path.

    Args:
        network: the topology.
        traffic: the two-class traffic instance.
        config: optimizer configuration; ``config.execution`` supplies
            ``n_jobs``, executor kind, chunking and cache knobs.
        delay_mode: path-delay aggregation mode.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        super().__init__(network, traffic, config, delay_mode)
        execution = config.execution
        self._n_jobs = execution.resolved_jobs
        self._executor_kind = execution.executor
        self._chunk_size = execution.chunk_size
        self._pool: Executor | None = None
        self._pool_key: tuple[str, int] | None = None
        self._pool_lock = threading.Lock()
        self._worker_stats: dict[int, CacheStats] = {}
        self._worker_busy: dict[int, float] = {}
        self._resilience = ResilienceCounters(mirror=global_counters())
        self._transport = TransportCounters()
        self._retry_policy = RetryPolicy.from_execution(execution)

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Effective worker count."""
        return self._n_jobs

    def set_execution(self, execution: ExecutionParams) -> None:
        """Adopt new execution knobs between sweeps.

        The worker pool is keyed on ``(executor, n_jobs)`` **only**:
        retuning ``chunk_size`` between sweeps keeps the warm pool —
        and every worker's routing caches and incremental routers —
        alive instead of paying a full pool rebuild; only a change of
        executor kind or worker count tears the pool down (lazily
        rebuilt on the next parallel call).  Worker-side evaluation
        knobs (``routing_cache``, ``incremental_routing``,
        ``routing_backend``, ``sweep_batching`` — the batch engine
        runs *inside* the workers) are baked into the workers at pool
        construction, so changing those rebuilds the pool too.
        """
        stale: Executor | None = None
        with self._pool_lock:
            # Resilience knobs live parent-side (the supervisor reads
            # them per sweep): retuning them keeps the warm pool.  The
            # fault plan is NOT excluded — it is baked into workers by
            # the pool initializer, so changing it rebuilds the pool.
            workers_config = replace(
                execution,
                n_jobs=self._config.execution.n_jobs,
                executor=self._config.execution.executor,
                chunk_size=self._config.execution.chunk_size,
                max_retries=self._config.execution.max_retries,
                retry_backoff=self._config.execution.retry_backoff,
                task_timeout=self._config.execution.task_timeout,
                sweep_deadline=self._config.execution.sweep_deadline,
            )
            workers_changed = workers_config != self._config.execution
            engine_changed = (
                execution.incremental_routing
                != self._config.execution.incremental_routing
                or execution.routing_backend
                != self._config.execution.routing_backend
            )
            self._n_jobs = execution.resolved_jobs
            self._executor_kind = execution.executor
            self._chunk_size = execution.chunk_size
            self._sweep_batching = execution.sweep_batching
            self._incremental = execution.incremental_routing
            self._retry_policy = RetryPolicy.from_execution(execution)
            # The parent-side cache must adopt the new knobs too (small
            # sweeps and normal evaluations run here, not in workers) —
            # but only a cache-knob change warrants dropping the warm
            # entries and their counters.
            old = self._config.execution
            if (
                execution.routing_cache != old.routing_cache
                or execution.cache_size != old.cache_size
            ):
                self._cache = (
                    RoutingCache(execution.cache_size)
                    if execution.routing_cache
                    else None
                )
            self._config = self._config.replace(execution=execution)
            key = (self._executor_kind, self._n_jobs)
            if self._pool is not None and (
                self._pool_key != key or workers_changed
            ):
                stale, self._pool = self._pool, None
        if engine_changed:
            # Routing knobs changed: the parent evaluates too
            # (normal/reuse seeding, small sweeps), so its engine,
            # routers and variant siblings — which have the old
            # backend/knobs baked in — are rebuilt alongside the
            # workers.  Cache-only knob changes keep this warm state.
            with self._router_lock:
                self._engine = RoutingEngine(
                    self._network, backend=execution.routing_backend
                )
                self._routers.clear()
                siblings = list(self._variant_evaluators.values())
                self._variant_evaluators.clear()
                self._variant_normal_cache.clear()
            for sibling in siblings:
                sibling.close()
        if stale is not None:
            # Tolerates a pool already broken by worker deaths: adopting
            # new knobs after a crash must not raise, and the next
            # parallel call lazily rebuilds.
            _shutdown_pool(stale)

    @property
    def cache_stats(self) -> CacheStats:
        """Cache counters aggregated over this process and all workers."""
        total = CachingDtrEvaluator.cache_stats.fget(self)
        for stats in self._worker_stats.values():
            total = total + stats
        return total

    @property
    def resilience_stats(self) -> ResilienceStats:
        """Failure/retry/degradation counters of this evaluator's sweeps."""
        return self._resilience.snapshot()

    @property
    def transport_stats(self) -> TransportStats:
        """Bytes/seconds accounting of this evaluator's dispatches.

        ``payload_bytes`` counts publish-once shm blocks, ``task_bytes``
        the pickled per-task arguments (the ~36-byte tickets on the shm
        path, the full by-value payload on the legacy path) and
        ``busy_seconds`` the summed in-worker compute time, so
        benchmarks can separate compute from dispatch overhead.
        """
        return self._transport.snapshot()

    @property
    def worker_busy_seconds(self) -> "dict[int, float]":
        """Per-worker (pid-keyed) cumulative task compute seconds."""
        return dict(self._worker_busy)

    def close(self) -> None:
        """Shut down the worker pool and sibling oracles (idempotent).

        Safe on a broken pool (SIGKILLed workers): teardown failures of
        the executor are swallowed so callers' ``finally`` blocks never
        mask the original error.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            _shutdown_pool(pool)
        super().close()

    def __enter__(self) -> "ParallelDtrEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Interpreter-teardown finalizer: only plausible teardown noise
        # is swallowed — KeyboardInterrupt/SystemExit (or anything else
        # unexpected) propagates instead of being silently eaten.
        try:
            self.close()
        except (OSError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        with self._pool_lock:
            key = (self._executor_kind, self._n_jobs)
            if self._pool is None:
                if self._executor_kind == "process":
                    # Start the resource tracker BEFORE forking workers
                    # so they inherit it: shared-memory blocks are then
                    # registered and unregistered against one tracker
                    # (the parent's unlink clears the worker attaches),
                    # instead of every worker lazily spawning its own
                    # tracker that warns about "leaked" blocks it never
                    # saw unlinked.  Best-effort: purely cosmetic on
                    # platforms where it is unavailable.
                    try:
                        from multiprocessing import resource_tracker

                        resource_tracker.ensure_running()
                    except Exception:  # pragma: no cover
                        pass
                    self._pool = ProcessPoolExecutor(
                        max_workers=self._n_jobs,
                        initializer=_init_worker,
                        initargs=(
                            self._network,
                            self._traffic,
                            self._config,
                            self._delay_mode,
                        ),
                    )
                else:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._n_jobs,
                        thread_name_prefix="repro-eval",
                    )
                self._pool_key = key
            return self._pool

    def _chunk_ranges(self, count: int) -> list[tuple[int, int]]:
        """Contiguous index ranges; ~four tasks per worker unless pinned."""
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, math.ceil(count / (self._n_jobs * 4)))
        return [(i, min(i + size, count)) for i in range(0, count, size)]

    def _chunks(self, items: list) -> list[list]:
        """Contiguous chunks; about four tasks per worker unless pinned."""
        return [
            items[lo:hi] for lo, hi in self._chunk_ranges(len(items))
        ]

    def _record_worker_stats(
        self, pid: int, counters: tuple[int, int, int]
    ) -> None:
        self._worker_stats[pid] = CacheStats(*counters)

    # ------------------------------------------------------------------
    # supervision: retry/backoff, pool rebuild, serial degradation
    # ------------------------------------------------------------------
    def _reset_pool(self) -> None:
        """Discard a dead or suspect pool; the next call rebuilds it.

        The stale executor is shut down without waiting (a wedged
        worker must not block the supervisor) and queued tasks are
        cancelled.  Dead workers' last-reported cache counters are
        kept — the work they completed happened.  Rebuild goes through
        :meth:`_ensure_pool`, i.e. the same warm-state machinery as a
        first build.
        """
        with self._pool_lock:
            stale, self._pool = self._pool, None
        if stale is not None:
            _shutdown_pool(stale, wait=False)

    def _supervise(self, tasks: "list[SupervisedTask]") -> list:
        """Run tickets under the retry/degradation supervisor."""
        supervisor = SweepSupervisor(
            policy=self._retry_policy,
            counters=self._resilience,
            ensure_pool=self._ensure_pool,
            reset_pool=self._reset_pool,
        )
        return supervisor.run(tasks)

    def _collect(self, results: list) -> list[ScenarioEvaluation]:
        """Fold supervised task results in task (= scenario) order.

        Serial-fallback results carry no pid/counters (the parent's own
        cache counters are already in :attr:`cache_stats`); recording
        them would double-count, so they are skipped.
        """
        outcomes: list[ScenarioEvaluation] = []
        for chunk_outcomes, pid, counters, elapsed in results:
            outcomes.extend(chunk_outcomes)
            if pid is not None:
                self._record_worker_stats(pid, counters)
                self._worker_busy[pid] = (
                    self._worker_busy.get(pid, 0.0) + elapsed
                )
                self._transport.record(busy_seconds=elapsed)
        return outcomes

    def _serial_ticket(
        self,
        setting: WeightSetting,
        items: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation | None,
        costs_only: bool,
        batched: bool,
    ) -> tuple[list[ScenarioEvaluation], None, None, float]:
        """One quarantined/degraded ticket on the in-process serial path.

        Mirrors the worker task exactly (batched slice sweep for shm
        tickets, per-scenario evaluation for by-value chunks), so the
        result is bit-identical to a successful dispatch — the parity
        the whole resilience layer rests on.  The evaluation counter is
        restored because the sweep caller accounts ``len(items)`` once
        for the whole sweep, dispatched or not.
        """
        fold = compact_evaluation if costs_only else _strip_routings
        before = self._num_evaluations
        begin = time.perf_counter()
        try:
            if batched:
                costs = DtrEvaluator.evaluate_scenarios(
                    self, setting, list(items), reuse=reuse
                )
                outcomes = [fold(e) for e in costs.evaluations]
            else:
                outcomes = [
                    fold(self.evaluate(setting, s, reuse=reuse))
                    for s in items
                ]
        finally:
            self._num_evaluations = before
        return (outcomes, None, None, time.perf_counter() - begin)

    def _make_task(
        self,
        seq: int,
        fn,
        args: tuple,
        fallback,
        sink: "list | None" = None,
    ) -> SupervisedTask:
        """A supervised ticket: dispatch via the fault-context wrapper.

        ``sink`` collects every future ever submitted for the ticket so
        shared-memory sweeps can settle stragglers before unlinking.
        Every submission's pickled argument size lands in
        :attr:`transport_stats` — ~36-byte index tickets on the shm
        path, the full by-value payload on the legacy path — so the
        bytes-on-wire gap the shm design buys stays measured, not
        asserted.
        """
        ticket_bytes = len(pickle.dumps(args, protocol=5))

        def submit(pool: Executor, attempt: int):
            future = pool.submit(_supervised_task, fn, seq, attempt, *args)
            self._transport.record(tasks=1, task_bytes=ticket_bytes)
            if sink is not None:
                sink.append(future)
            return future

        return SupervisedTask(seq=seq, submit=submit, fallback=fallback)

    # ------------------------------------------------------------------
    def evaluate_scenarios(
        self,
        setting: WeightSetting,
        scenarios: Scenarios,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioCosts:
        """Parallel counterpart of :meth:`DtrEvaluator.evaluate_scenarios`.

        Same contract as the serial sweep — a
        :class:`~repro.scenarios.ScenarioSet`, a legacy ``FailureSet``
        or any scenario sequence.  Scenario chunks run concurrently;
        results are reassembled in scenario order, so
        ``ScenarioCosts.total_cost`` sums in the same order as the
        serial sweep and is bit-identical to it.  Chunk boundaries key
        off nothing but list position, so the split is deterministic;
        with sweep batching on the whole payload is published once
        through shared memory and tasks carry index tickets, otherwise
        composed scenarios ship by value (their digests pin content).
        """
        items = list(scenarios)
        if self._n_jobs == 1 or len(items) < 2:
            return super().evaluate_scenarios(setting, items, reuse=reuse)
        if reuse is None:
            reuse = self.evaluate_normal(setting)

        if self._executor_kind == "thread":
            before = self._num_evaluations
            outcomes = self._threaded_sweep(setting, items, reuse)
            # Worker threads bumped the (non-atomic) counter; restate it.
            self._num_evaluations = before + len(items)
        else:
            # The reuse evaluation ships WITH its routings — workers need
            # them for the failed-arc shortcut; ClassRouting drops its
            # Network back-reference on pickling, so the payload is small.
            outcomes = self._process_sweep(setting, items, reuse)
            self._num_evaluations += len(items)
        return ScenarioCosts(tuple(outcomes))

    def _sweep_costs(
        self,
        setting: WeightSetting,
        items: list,
        reuse: ScenarioEvaluation | None,
    ) -> ScenarioCosts:
        """Costs-only sweep across the pool: workers fold locally.

        Same fan-out and fold order as :meth:`evaluate_scenarios`, but
        each worker compacts its outcomes before shipping, so the IPC
        return is a few scalars per scenario instead of load vectors
        and SLA arrays.  Cost values are bit-identical — compaction
        happens strictly after the worker computed the full evaluation.
        """
        if self._n_jobs == 1 or len(items) < 2:
            return super()._sweep_costs(setting, items, reuse)
        if reuse is None:
            reuse = self.evaluate_normal(setting)
        if self._executor_kind == "thread":
            before = self._num_evaluations
            outcomes = self._threaded_sweep(
                setting, items, reuse, costs_only=True
            )
            self._num_evaluations = before + len(items)
        else:
            outcomes = self._process_sweep(
                setting, items, reuse, costs_only=True
            )
            self._num_evaluations += len(items)
        return ScenarioCosts(tuple(outcomes))

    def _process_sweep(
        self,
        setting: WeightSetting,
        scenarios: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation,
        costs_only: bool = False,
    ) -> list[ScenarioEvaluation]:
        if self._use_sweep_batching(len(scenarios)):
            return self._process_sweep_shared(
                setting, scenarios, reuse, costs_only=costs_only
            )
        tasks = [
            self._make_task(
                seq,
                _worker_sweep,
                (setting.delay, setting.tput, tuple(chunk), reuse, costs_only),
                lambda chunk=chunk: self._serial_ticket(
                    setting, chunk, reuse, costs_only, batched=False
                ),
            )
            for seq, chunk in enumerate(self._chunks(scenarios))
        ]
        return self._collect(self._supervise(tasks))

    def _process_sweep_shared(
        self,
        setting: WeightSetting,
        scenarios: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation,
        costs_only: bool = False,
    ) -> list[ScenarioEvaluation]:
        """The zero-copy sweep: publish once, ship index tickets only.

        The sweep payload — weights, the scenario list, the reuse
        evaluation with its routings — is published once through a
        :class:`SharedSweepState`; every task pickles nothing but
        ``(block name, start, stop)``.  Workers attach zero-copy and
        run their slice through the batched serial path, so results
        (reassembled in scenario order) are bit-identical to the serial
        sweep and invariant to ``n_jobs`` and ``chunk_size``.

        Dispatch runs under the resilience supervisor: the state block
        outlives pool rebuilds (re-dispatched tickets re-attach by
        name) and is disposed only after every future ever submitted —
        across all attempts — has settled, so a worker dying mid-attach
        still ends with the block unlinked, never leaked.
        """
        state = SharedSweepState(
            (setting.delay, setting.tput, tuple(scenarios), reuse)
        )
        self._transport.record(publishes=1, payload_bytes=state.size)
        futures: list = []
        tasks = [
            self._make_task(
                seq,
                _worker_sweep_shared,
                (state.name, lo, hi, costs_only),
                lambda lo=lo, hi=hi: self._serial_ticket(
                    setting, scenarios[lo:hi], reuse, costs_only, batched=True
                ),
                sink=futures,
            )
            for seq, (lo, hi) in enumerate(self._chunk_ranges(len(scenarios)))
        ]
        try:
            outcomes = self._collect(self._supervise(tasks))
        finally:
            # Unlinking before a straggler ticket attaches would fail
            # it spuriously: settle every submitted future first.  The
            # wait is bounded — a truly wedged worker must not pin the
            # block forever; unlink-while-attached is safe (POSIX keeps
            # the pages mapped) and a subsequent attach raises into a
            # future nobody reads.
            if futures:
                futures_wait(futures, timeout=_DISPOSE_SETTLE_TIMEOUT)
            state.dispose()
        return outcomes

    def _threaded_sweep(
        self,
        setting: WeightSetting,
        scenarios: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation,
        costs_only: bool = False,
    ) -> list[ScenarioEvaluation]:
        pool = self._ensure_pool()
        batched = self._use_sweep_batching(len(scenarios))
        fold = compact_evaluation if costs_only else _strip_routings

        def sweep_chunk(lo: int, hi: int) -> list[ScenarioEvaluation]:
            # Threads share this evaluator; caches and routers are
            # lock-guarded.  The batched path reuses the same grouping
            # planner as the shared-memory workers — no shm needed,
            # the arrays are already shared.
            if batched:
                costs = DtrEvaluator.evaluate_scenarios(
                    self, setting, scenarios[lo:hi], reuse=reuse
                )
                return [fold(e) for e in costs.evaluations]
            return [
                fold(self.evaluate(setting, s, reuse=reuse))
                for s in scenarios[lo:hi]
            ]

        futures = [
            pool.submit(sweep_chunk, lo, hi)
            for lo, hi in self._chunk_ranges(len(scenarios))
        ]
        outcomes: list[ScenarioEvaluation] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    # ------------------------------------------------------------------
    def evaluate_normal_batch(
        self, settings: "list[WeightSetting] | tuple[WeightSetting, ...]"
    ) -> tuple[ScenarioEvaluation, ...]:
        """Failure-free costs of several settings, fanned across the pool."""
        settings = list(settings)
        if (
            self._n_jobs == 1
            or len(settings) < 2
            or self._executor_kind == "thread"
        ):
            return super().evaluate_normal_batch(settings)
        tasks = [
            self._make_task(
                seq,
                _worker_normal_batch,
                (tuple((s.delay, s.tput) for s in chunk),),
                lambda chunk=chunk: self._serial_normal_ticket(chunk),
            )
            for seq, chunk in enumerate(self._chunks(settings))
        ]
        outcomes = self._collect(self._supervise(tasks))
        self._num_evaluations += len(settings)
        return tuple(outcomes)

    def _serial_normal_ticket(
        self, chunk: "list[WeightSetting]"
    ) -> tuple[list[ScenarioEvaluation], None, None, float]:
        """Quarantined/degraded normal-batch ticket, computed in-process."""
        before = self._num_evaluations
        begin = time.perf_counter()
        try:
            outcomes = [
                _strip_routings(self.evaluate_normal(s)) for s in chunk
            ]
        finally:
            self._num_evaluations = before
        return (outcomes, None, None, time.perf_counter() - begin)


def make_evaluator(
    network: Network,
    traffic: DtrTraffic,
    config: OptimizerConfig,
    delay_mode: str = "worst",
) -> DtrEvaluator:
    """The right evaluator for ``config.execution``.

    ``executor="hosts"`` selects the distributed evaluator (scenario
    sweeps across a TCP host pool), ``n_jobs > 1`` (or 0 = all CPUs on
    a multi-core host) the parallel evaluator, ``routing_cache`` alone
    the caching one, and the plain serial evaluator otherwise.  All
    four produce bit-identical results.
    """
    execution = config.execution
    if execution.executor == "hosts":
        # Deferred import: repro.core.distributed imports this module.
        from repro.core.distributed import DistributedDtrEvaluator

        return DistributedDtrEvaluator(network, traffic, config, delay_mode)
    if execution.resolved_jobs > 1:
        return ParallelDtrEvaluator(network, traffic, config, delay_mode)
    if execution.routing_cache:
        return CachingDtrEvaluator(network, traffic, config, delay_mode)
    return DtrEvaluator(network, traffic, config, delay_mode)
