"""Checkpoint/resume for the two-phase optimizer.

Rocketfuel-scale Phase-2 runs are hours long; an interruption used to
mean recomputing the world.  :class:`CheckpointManager` snapshots the
full optimizer state at safe loop boundaries — incumbent weights, the
acceptable pool, the sampling store, phase/iteration counters and the
generator's ``bit_generator`` state — so an interrupted run restarts
from the last boundary and finishes with **bit-identical** final weights
and costs (pinned by ``tests/core/test_checkpoint.py`` and the CI
resume-smoke job).

The invariant holds because checkpoints are only taken at outer-loop
iteration boundaries, where the search state is exactly the loop locals
plus the RNG state: restoring both and re-entering the loop replays the
identical draw/evaluate sequence.  Evaluations that exist only as reuse
hints (the incumbent's NORMAL evaluation) are recomputed on restore —
re-evaluation is bit-identical by the repo's evaluator-parity invariant,
so nothing downstream can diverge.

Compatibility is enforced, not assumed: every checkpoint records the
:class:`~repro.scenarios.ScenarioSet` digest, an
:class:`~repro.config.ExecutionParams` fingerprint, the result-affecting
config fingerprint and the instance (network + traffic) fingerprint.  A
resume whose run does not match **every** field raises
:class:`CheckpointMismatchError` instead of silently computing something
else.

Writes are atomic (temp file + ``os.replace`` in the target directory)
and happen every ``every`` boundaries, plus once more at the next
boundary after a SIGINT/SIGTERM — the handler only sets a flag, the
loop writes the snapshot and raises :class:`OptimizerInterrupted`, so a
kill can never tear a half-written state file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import signal
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.config import ExecutionParams, OptimizerConfig
from repro.routing.network import Network
from repro.traffic.gravity import DtrTraffic

#: On-disk checkpoint format version; bumped on incompatible layout
#: changes so stale files are refused instead of mis-unpickled.
CHECKPOINT_VERSION = 1

#: Default checkpoint period, in outer-loop iteration boundaries.
DEFAULT_CHECKPOINT_EVERY = 25

#: Stages a checkpoint can capture, in pipeline order.
STAGES = ("phase1a", "phase1b", "phase2", "done")


class CheckpointError(RuntimeError):
    """A checkpoint file could not be read or used."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint belongs to a different run configuration.

    Raised instead of silently resuming: the stored scenario digest,
    execution fingerprint, config fingerprint or instance fingerprint
    does not match the resuming run.  Re-run with the original flags, or
    delete the checkpoint to start fresh.
    """


class OptimizerInterrupted(RuntimeError):
    """The run stopped at a boundary after SIGINT/SIGTERM.

    Attributes:
        path: the checkpoint file holding the resumable state.
    """

    def __init__(self, path: "str | Path") -> None:
        super().__init__(
            f"optimizer interrupted; resumable checkpoint at {path}"
        )
        self.path = Path(path)


def _sha1(text: str) -> str:
    return hashlib.sha1(text.encode()).hexdigest()[:16]


def config_fingerprint(
    config: OptimizerConfig,
    failure_model: object = None,
    critical_fraction: "float | None" = None,
    full_search: bool = False,
) -> str:
    """Fingerprint of everything result-affecting about a run's config.

    Covers every config block except ``execution`` (fingerprinted
    separately) plus the run arguments that select the search target:
    the failure model, the critical-fraction override and the
    full-search flag.  Frozen-dataclass ``repr`` is deterministic, so
    the digest is process-stable.
    """
    parts = [
        repr(config.delay),
        repr(config.sla),
        repr(config.weights),
        repr(config.sampling),
        repr(config.search),
        repr(config.critical_fraction),
        repr(config.keep_acceptable_settings),
        repr(getattr(failure_model, "value", failure_model)),
        repr(critical_fraction),
        repr(full_search),
    ]
    return _sha1("|".join(parts))


#: Execution knobs excluded from the resume-compatibility fingerprint:
#: the resilience layer (retry budgets, deadlines, chaos plans) never
#: changes computed values, and the canonical recovery from a crashed
#: run is precisely "resume with *different* retry knobs".  The ``hosts``
#: spec is excluded for the same reason — a sweep is bit-identical under
#: any host set, and resuming a cluster run on different (or fewer)
#: machines must not be refused.
_RESILIENCE_KNOBS = frozenset(
    {
        "max_retries",
        "retry_backoff",
        "task_timeout",
        "sweep_deadline",
        "fault_plan",
        "hosts",
    }
)


def execution_fingerprint(execution: ExecutionParams) -> str:
    """Fingerprint of the execution knobs (``repr`` is deterministic).

    Resilience knobs are excluded (see :data:`_RESILIENCE_KNOBS`), so a
    run that crashed or degraded can be resumed under a stricter — or
    laxer — retry policy without tripping the compatibility check.
    """
    parts = [
        f"{f.name}={getattr(execution, f.name)!r}"
        for f in dataclasses.fields(execution)
        if f.name not in _RESILIENCE_KNOBS
    ]
    return _sha1("|".join(parts))


def instance_fingerprint(network: Network, traffic: DtrTraffic) -> str:
    """Content fingerprint of one problem instance (topology + traffic).

    Hashes the arc list (endpoints, capacities, propagation delays) and
    both demand matrices byte-exactly, so two runs resume-compatible by
    this fingerprint evaluate identical floats.
    """
    h = hashlib.sha1()
    h.update(f"{network.name}|{network.num_nodes}".encode())
    for arc in network.arcs:
        h.update(
            f"{arc.src}|{arc.dst}|{arc.capacity!r}|{arc.prop_delay!r}"
            .encode()
        )
    h.update(traffic.delay.values.tobytes())
    h.update(traffic.throughput.values.tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class CheckpointMeta:
    """Identity header every checkpoint carries.

    Attributes:
        version: on-disk format version.
        stage: pipeline stage the payload captures (one of
            :data:`STAGES`).
        ticks: boundary counter at the time of the write (monotonic
            across stages; diagnostic only).
        scenario_digest: digest of the run's full scenario set.
        config_fingerprint: result-affecting config + run-args digest.
        execution_fingerprint: :class:`ExecutionParams` digest.
        instance_fingerprint: network + traffic content digest.
    """

    version: int
    stage: str
    ticks: int
    scenario_digest: str
    config_fingerprint: str
    execution_fingerprint: str
    instance_fingerprint: str

    def compatible_with(self, other: "CheckpointMeta") -> "list[str]":
        """Field names (besides stage/ticks) that differ from ``other``."""
        mismatched = []
        for name in (
            "version",
            "scenario_digest",
            "config_fingerprint",
            "execution_fingerprint",
            "instance_fingerprint",
        ):
            if getattr(self, name) != getattr(other, name):
                mismatched.append(name)
        return mismatched


@dataclass(frozen=True)
class OptimizerCheckpoint:
    """One snapshot: identity header plus the stage's pickled state."""

    meta: CheckpointMeta
    payload: dict


def save_checkpoint(
    path: "str | Path", checkpoint: OptimizerCheckpoint
) -> None:
    """Atomically write a checkpoint (temp file + rename, same dir)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: "str | Path") -> OptimizerCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    if not isinstance(checkpoint, OptimizerCheckpoint):
        raise CheckpointError(f"{path} is not an optimizer checkpoint")
    if checkpoint.meta.version != CHECKPOINT_VERSION:
        raise CheckpointMismatchError(
            f"checkpoint {path} has format version "
            f"{checkpoint.meta.version}, expected {CHECKPOINT_VERSION}"
        )
    return checkpoint


class CheckpointManager:
    """Periodic + signal-driven checkpointing for one optimizer run.

    The optimizer calls :meth:`tick` at every safe boundary with the
    current stage name and a zero-argument callable producing the
    stage's state dict.  The manager writes a checkpoint every ``every``
    boundaries, and at the first boundary after a SIGINT/SIGTERM — then
    raises :class:`OptimizerInterrupted` so the run unwinds cleanly
    (worker pools shut down through the normal ``finally`` paths).

    Used as a context manager around the run: ``__enter__`` installs the
    signal handlers (main thread only; elsewhere signal-driven stops are
    simply unavailable), ``__exit__`` restores the previous handlers.

    Args:
        path: checkpoint file location.
        meta: identity header (stage/ticks fields are overwritten per
            write).
        every: boundaries between periodic writes.
        interrupt_after: testing/CI hook — deliver a real SIGTERM to
            this process at the Nth boundary, exercising the genuine
            signal path deterministically ("kill mid-iteration" without
            wall-clock races).
    """

    def __init__(
        self,
        path: "str | Path",
        meta: CheckpointMeta,
        every: int = DEFAULT_CHECKPOINT_EVERY,
        interrupt_after: "int | None" = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if interrupt_after is not None and interrupt_after < 1:
            raise ValueError("interrupt_after must be >= 1 when given")
        self._path = Path(path)
        self._meta = meta
        self._every = every
        self._interrupt_after = interrupt_after
        self._kill_sent = False
        self._ticks = 0
        self._writes = 0
        self._interrupted = False
        self._previous: dict[int, object] = {}

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The checkpoint file location."""
        return self._path

    @property
    def ticks(self) -> int:
        """Boundaries seen so far."""
        return self._ticks

    @property
    def writes(self) -> int:
        """Checkpoints written so far."""
        return self._writes

    @property
    def interrupted(self) -> bool:
        """Whether a stop signal is pending."""
        return self._interrupted

    # ------------------------------------------------------------------
    def _handle_signal(self, signum: int, frame: object) -> None:
        del frame
        self._interrupted = True

    def install(self) -> None:
        """Install SIGINT/SIGTERM handlers (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(
                    signum, self._handle_signal
                )
            except (ValueError, OSError):  # pragma: no cover
                pass

    def uninstall(self) -> None:
        """Restore the handlers saved by :meth:`install`."""
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()

    def __enter__(self) -> "CheckpointManager":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    def tick(
        self, stage: str, payload_fn: Callable[[], dict]
    ) -> None:
        """One safe boundary: write if due, raise if interrupted.

        ``payload_fn`` is only called when a write actually happens, so
        the per-boundary cost of an idle manager is a counter bump.
        """
        self._ticks += 1
        if (
            self._interrupt_after is not None
            and not self._kill_sent
            and self._ticks >= self._interrupt_after
        ):
            # A real signal, delivered to ourselves: the handler and the
            # unwind below run exactly as they would under an external
            # kill, minus the wall-clock race.
            self._kill_sent = True
            os.kill(os.getpid(), signal.SIGTERM)
            if not self._previous:
                # No handler installed (non-main thread): the flag is
                # the best we can do.
                self._interrupted = True
        due = self._interrupted or (self._ticks % self._every == 0)
        if not due:
            return
        self.write(stage, payload_fn())
        if self._interrupted:
            raise OptimizerInterrupted(self._path)

    def write(self, stage: str, payload: dict) -> None:
        """Write one checkpoint unconditionally (atomic)."""
        if stage not in STAGES:
            raise ValueError(f"unknown checkpoint stage {stage!r}")
        meta = CheckpointMeta(
            version=self._meta.version,
            stage=stage,
            ticks=self._ticks,
            scenario_digest=self._meta.scenario_digest,
            config_fingerprint=self._meta.config_fingerprint,
            execution_fingerprint=self._meta.execution_fingerprint,
            instance_fingerprint=self._meta.instance_fingerprint,
        )
        save_checkpoint(self._path, OptimizerCheckpoint(meta, payload))
        self._writes += 1

    def finalize(self, result: object) -> None:
        """Record the finished run (stage ``"done"``).

        Resuming from a done checkpoint returns the stored result
        without recomputing anything, which makes re-running a completed
        shard idempotent.
        """
        self.write("done", {"stage": "done", "result": result})


def resolve_resume(
    path: "str | Path | None", meta: CheckpointMeta
) -> "dict | None":
    """Load and validate a resume payload, or None to start fresh.

    A missing file is not an error — ``--resume`` on the first run of a
    pipeline simply starts from scratch.  An existing checkpoint must
    match ``meta`` on every identity field or
    :class:`CheckpointMismatchError` is raised.

    Returns:
        The checkpoint payload dict (its ``"stage"`` key states where to
        re-enter), or None when there is nothing to resume.
    """
    if path is None:
        return None
    path = Path(path)
    if not path.exists():
        return None
    checkpoint = load_checkpoint(path)
    mismatched = checkpoint.meta.compatible_with(meta)
    if mismatched:
        details = ", ".join(
            f"{name}: checkpoint={getattr(checkpoint.meta, name)!r} "
            f"run={getattr(meta, name)!r}"
            for name in mismatched
        )
        raise CheckpointMismatchError(
            f"checkpoint {path} belongs to a different run ({details}); "
            "re-run with the original flags or delete the checkpoint"
        )
    return checkpoint.payload
