"""Evaluation of a DTR weight setting: the paper's cost oracle.

:class:`DtrEvaluator` binds a network, the two traffic matrices and the
cost-model parameters, and answers "what does weight setting ``W`` cost
under scenario ``s``?"  Everything the optimizer and every experiment
needs funnels through :meth:`DtrEvaluator.evaluate`:

1. route each class by its own weights (SPF + ECMP);
2. superpose class loads (shared FIFO) and derive per-arc delays (Eq. 1);
3. delay class pays the SLA penalty Lambda (Eq. 2) on its worst used path;
4. throughput class pays the Fortz–Thorup cost Phi on total loads.

Failure sweeps exploit a structural shortcut: an arc that lies on no
shortest-path DAG of a class under normal conditions cannot change that
class's routing when it fails (removing a never-shortest arc leaves all
shortest distances, DAGs and loads untouched), so the normal routing is
reused.  Passing the normal-scenario evaluation as ``reuse`` enables the
shortcut; tests pin it against the direct computation.

That shortcut is the trivial (all-destinations-unaffected) case of the
delta-rerouting core (:mod:`repro.routing.incremental`), which the
evaluator uses for every routing when
``config.execution.incremental_routing`` is on (the default): single-arc
weight moves (:meth:`DtrEvaluator.evaluate_move` /
:meth:`DtrEvaluator.revert_move`) and failure scenarios re-route only
the destinations the delta can affect, and path-delay columns of
untouched destinations are copied from the ``reuse`` evaluation instead
of re-propagated.  All of it is bit-identical to from-scratch
evaluation; tests pin the parity.

Scenario composition (:mod:`repro.scenarios`): every evaluation entry
point also accepts composed :class:`~repro.scenarios.Scenario` objects
and :class:`~repro.scenarios.ScenarioSet` collections.  The topology
part is unwrapped onto the exact legacy path (so a legacy-equivalent
ScenarioSet is bit-identical to its FailureSet), and a traffic variant
routes the evaluation through a cached *sibling* evaluator bound to the
perturbed traffic — the sibling owns its own incremental routers and
propagation memos, making every reuse key traffic-variant-aware by
construction.  :meth:`DtrEvaluator.evaluate_scenarios` is the one sweep
contract shared by the serial, caching and parallel evaluators.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Sequence, Union

import numpy as np

from repro.config import OptimizerConfig
from repro.core.delay import arc_delays
from repro.core.fortz import fortz_cost
from repro.core.lexicographic import CostPair
from repro.core.perturbation import Move
from repro.core.sla import SlaOutcome, sla_outcome
from repro.core.weights import WeightSetting
from repro.routing.backend import resolve_sweep_batching
from repro.routing.engine import ClassRouting, PathDelayReuse, RoutingEngine
from repro.routing.failures import NORMAL, FailureScenario, FailureSet
from repro.routing.incremental import IncrementalRouter
from repro.routing.network import Network
from repro.routing.sweep import (
    flush_delay_batch,
    plan_sweep,
    route_scenario_batch,
)
from repro.scenarios.scenario import Scenario, ScenarioSet, as_scenario
from repro.scenarios.variants import TrafficVariant
from repro.traffic.gravity import DtrTraffic

#: Everything the sweep entry points accept as a scenario collection: a
#: ScenarioSet, a legacy FailureSet, or any sequence of Scenario /
#: FailureScenario items.
Scenarios = Union[ScenarioSet, FailureSet, Sequence]

#: LRU capacity of each variant's NORMAL-evaluation cache (the robust
#: search alternates between an incumbent and one candidate setting, so
#: a handful of entries per variant already serves every hit; the cache
#: is per variant, so wide cross products cannot thrash it).
_VARIANT_NORMAL_CACHE = 4


@dataclass(frozen=True)
class ScenarioEvaluation:
    """Full outcome of one (weight setting, scenario) evaluation.

    Attributes:
        scenario: the topology part of the scenario evaluated (a
            composed scenario's failure half; the traffic half is in
            ``variant``).
        cost: the global cost ``K = <Lambda, Phi>``.
        sla: SLA accounting for the delay class.
        loads_delay: per-arc delay-class loads.
        loads_tput: per-arc throughput-class loads.
        arc_delay: per-arc delay ``D_l`` from total loads.
        pair_delays: ``(N, N)`` end-to-end delay matrix of the delay class.
        utilization: per-arc total utilization.
        routing_delay: the delay-class routing (enables failure-sweep
            reuse; None on reused evaluations).
        routing_tput: the throughput-class routing.
        variant: the traffic variant in force (None = base traffic).
        kind: the scenario-family tag when the evaluation came from a
            composed :class:`~repro.scenarios.Scenario` (None on plain
            failure evaluations).
    """

    scenario: FailureScenario
    cost: CostPair
    sla: SlaOutcome
    loads_delay: np.ndarray
    loads_tput: np.ndarray
    arc_delay: np.ndarray
    pair_delays: np.ndarray
    utilization: np.ndarray
    routing_delay: ClassRouting | None = None
    routing_tput: ClassRouting | None = None
    variant: TrafficVariant | None = None
    kind: str | None = None

    @property
    def total_loads(self) -> np.ndarray:
        """Per-arc load across both classes."""
        return self.loads_delay + self.loads_tput


@dataclass(frozen=True)
class ScenarioCosts:
    """Costs of one weight setting across a whole scenario set.

    The generalization of the old failure-sweep result to composed
    scenarios: outcomes may mix failure kinds and traffic variants, and
    :meth:`by_kind` splits them back out for per-family reporting.

    Attributes:
        evaluations: per-scenario outcomes, in scenario order.
    """

    evaluations: tuple[ScenarioEvaluation, ...]

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def total_cost(self) -> CostPair:
        """``K_fail``: component-wise sum over scenarios (Eq. 4 / Eq. 7)."""
        return CostPair.total([e.cost for e in self.evaluations])

    @property
    def violations(self) -> np.ndarray:
        """Per-scenario SLA violation counts."""
        return np.asarray(
            [e.sla.violations for e in self.evaluations], dtype=np.int64
        )

    @property
    def phi_values(self) -> np.ndarray:
        """Per-scenario throughput costs ``Phi_fail,l``."""
        return np.asarray([e.cost.phi for e in self.evaluations])

    def mean_violations(self) -> float:
        """Average SLA violations per failure scenario."""
        if not self.evaluations:
            return 0.0
        return float(self.violations.mean())

    def top_fraction_mean_violations(self, fraction: float = 0.1) -> float:
        """Mean violations over the worst ``fraction`` of scenarios.

        The paper's "average top-10 % SLA violations" focuses on the
        failures with the highest violation counts.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        if not self.evaluations:
            return 0.0
        counts = np.sort(self.violations)[::-1]
        k = max(1, round(fraction * len(counts)))
        return float(counts[:k].mean())

    def kinds(self) -> tuple[str, ...]:
        """Distinct scenario kinds, in first-appearance order.

        Evaluations without a kind tag (plain failure sweeps) report as
        ``"failure"``.
        """
        seen: dict[str, None] = {}
        for evaluation in self.evaluations:
            seen.setdefault(evaluation.kind or "failure")
        return tuple(seen)

    def by_kind(self) -> "dict[str, ScenarioCosts]":
        """Per-kind sub-results, preserving scenario order within each."""
        return {
            kind: ScenarioCosts(
                tuple(
                    e
                    for e in self.evaluations
                    if (e.kind or "failure") == kind
                )
            )
            for kind in self.kinds()
        }


FailureEvaluation = ScenarioCosts
"""Legacy name of :class:`ScenarioCosts` (pre-scenario-subsystem API)."""


def compact_evaluation(
    evaluation: ScenarioEvaluation,
) -> ScenarioEvaluation:
    """A scalars-only copy of one evaluation: costs and SLA kept.

    Drops every per-arc/per-pair array (loads, delays, utilization) and
    the routings — what remains (``cost``, the all-scalar ``sla``,
    ``variant``, ``kind``) is exactly what cost-folding consumers such
    as Phase 2's ordered sweep read.  The scalars are the originals, so
    folds over compact evaluations are bit-identical to folds over full
    ones.
    """
    if evaluation.loads_delay is None and evaluation.routing_delay is None:
        return evaluation
    return replace(
        evaluation,
        loads_delay=None,
        loads_tput=None,
        arc_delay=None,
        pair_delays=None,
        utilization=None,
        routing_delay=None,
        routing_tput=None,
    )


@dataclass(frozen=True)
class SweepMemoStats:
    """Counters of the costs-only sweep memo (cache_stats-style).

    Attributes:
        hits: sweeps answered from the memo (no dispatch at all).
        misses: sweeps that had to be evaluated (then memoized).
    """

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total memoizable sweep requests."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of sweep requests served from the memo."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: "SweepMemoStats") -> "SweepMemoStats":
        return SweepMemoStats(
            self.hits + other.hits, self.misses + other.misses
        )


#: Entries kept in the costs-only sweep memo.  Phase 2 cycles through at
#: most ``keep_acceptable_settings`` diversification starts plus the
#: incumbent, so a few dozen compact (scalars-only) entries already
#: serve every repeat; the memo is deliberately small because its values
#: are kept alive for the whole search.
_SWEEP_MEMO_CAPACITY = 32


class DtrEvaluator:
    """Cost oracle for one (network, traffic, configuration) instance."""

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        if traffic.num_nodes != network.num_nodes:
            raise ValueError("traffic and network dimensions differ")
        self._network = network
        self._traffic = traffic
        self._config = config
        self._delay_mode = delay_mode
        self._engine = RoutingEngine(
            network, backend=config.execution.routing_backend
        )
        self._num_evaluations = 0
        self._incremental = config.execution.incremental_routing
        self._sweep_batching = config.execution.sweep_batching
        self._routers: dict[str, IncrementalRouter] = {}
        self._router_lock = threading.RLock()
        #: Sibling oracles bound to variant-perturbed traffic, keyed by
        #: variant digest (see :meth:`_variant_evaluator`).
        self._variant_evaluators: dict[str, DtrEvaluator] = {}
        #: Per-variant LRUs of NORMAL evaluations, keyed by setting.
        self._variant_normal_cache: dict[
            str, OrderedDict[tuple[bytes, bytes], ScenarioEvaluation]
        ] = {}
        #: Costs-only sweep memo: (setting key, scenario-set digest) ->
        #: compact :class:`ScenarioCosts`.  Serves repeat
        #: :meth:`evaluate_scenario_costs` sweeps — Phase 2's
        #: worst-first re-sorts revisit the same pool settings — without
        #: re-dispatching any evaluation work.
        self._sweep_memo: "OrderedDict[tuple, ScenarioCosts]" = (
            OrderedDict()
        )
        self._sweep_memo_hits = 0
        self._sweep_memo_misses = 0

    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The evaluated topology."""
        return self._network

    @property
    def traffic(self) -> DtrTraffic:
        """The evaluated traffic instance."""
        return self._traffic

    @property
    def config(self) -> OptimizerConfig:
        """Cost-model and search parameters."""
        return self._config

    @property
    def engine(self) -> RoutingEngine:
        """The underlying routing engine."""
        return self._engine

    @property
    def delay_mode(self) -> str:
        """Path-delay aggregation mode (``"worst"`` or ``"mean"``)."""
        return self._delay_mode

    @property
    def num_evaluations(self) -> int:
        """How many scenario evaluations this oracle has performed."""
        return self._num_evaluations

    def with_traffic(self, traffic: DtrTraffic) -> "DtrEvaluator":
        """A sibling evaluator for different (e.g. perturbed) traffic."""
        return type(self)(
            self._network, traffic, self._config, self._delay_mode
        )

    def close(self) -> None:
        """Release execution resources (variant sibling oracles)."""
        siblings = list(self._variant_evaluators.values())
        self._variant_evaluators.clear()
        self._variant_normal_cache.clear()
        for sibling in siblings:
            sibling.close()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        setting: WeightSetting,
        scenario: "FailureScenario | Scenario" = NORMAL,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioEvaluation:
        """Cost of one weight setting under one scenario.

        Args:
            setting: the DTR weight setting.
            scenario: failure scenario, or a composed
                :class:`~repro.scenarios.Scenario` (its topology part is
                unwrapped onto the exact legacy path; a traffic variant
                delegates to the variant's sibling oracle).
            reuse: a NORMAL-scenario evaluation *of the same setting*
                under base traffic (with routings attached); classes
                whose shortest-path DAGs avoid every failed arc are not
                re-routed, and with incremental routing the unaffected
                destinations of partially-affected classes reuse their
                distance, mask and path-delay columns too.  Ignored by
                traffic-variant scenarios, which maintain their own
                per-variant reuse.
        """
        kind: str | None = None
        if isinstance(scenario, Scenario):
            if scenario.variant is not None:
                return self._evaluate_variant(setting, scenario)
            kind = scenario.kind
            scenario = scenario.failure
        if reuse is not None and reuse.variant is not None:
            # A variant evaluation cannot seed base-traffic reuse.
            reuse = None
        if setting.num_arcs != self._network.num_arcs:
            raise ValueError("weight setting does not match the network")
        self._num_evaluations += 1

        routing_d: ClassRouting | None = None
        routing_t: ClassRouting | None = None
        reusable_d: frozenset[int] | None = None
        if (
            reuse is not None
            and scenario.failed_arcs
            and not scenario.removed_nodes
            and reuse.routing_delay is not None
            and reuse.routing_tput is not None
        ):
            failed = list(scenario.failed_arcs)
            if not reuse.routing_delay.used_arcs()[failed].any():
                routing_d = reuse.routing_delay
                reusable_d = frozenset(
                    int(t) for t in routing_d.destinations
                )
            if not reuse.routing_tput.used_arcs()[failed].any():
                routing_t = reuse.routing_tput
            if routing_d is not None and routing_t is not None:
                # Neither class touched the failed arcs: identical costs.
                return replace(
                    reuse,
                    scenario=scenario,
                    routing_delay=None,
                    routing_tput=None,
                    kind=kind,
                )

        base_d = (
            reuse.routing_delay
            if reuse is not None and reuse.scenario.is_normal
            else None
        )
        if routing_d is None:
            routing_d, reusable_d = self._route_with_reuse(
                "delay",
                setting.delay,
                self._traffic.delay.values,
                scenario,
                base_d,
            )
        if routing_t is None:
            routing_t, _ = self._route_with_reuse(
                "tput",
                setting.tput,
                self._traffic.throughput.values,
                scenario,
                None,
            )
        total = routing_d.loads + routing_t.loads
        delays = arc_delays(
            total,
            self._network.capacity,
            self._network.prop_delay,
            self._config.delay,
        )
        delay_reuse = None
        if (
            reusable_d
            and reuse is not None
            and reuse.scenario.is_normal
        ):
            delay_reuse = PathDelayReuse(
                pair_delays=reuse.pair_delays,
                arc_delays=reuse.arc_delay,
                reusable=reusable_d,
            )
        pair_delays = self._engine.path_delays(
            routing_d,
            delays,
            mode=self._delay_mode,
            reuse=delay_reuse,
            memo=self._incremental,
        )
        sla = sla_outcome(pair_delays, routing_d.demands, self._config.sla)
        phi = fortz_cost(
            total, self._network.capacity, include=routing_t.loads > 0.0
        )
        return ScenarioEvaluation(
            scenario=scenario,
            cost=CostPair(sla.cost, phi),
            sla=sla,
            loads_delay=routing_d.loads,
            loads_tput=routing_t.loads,
            arc_delay=delays,
            pair_delays=pair_delays,
            utilization=total / self._network.capacity,
            routing_delay=routing_d,
            routing_tput=routing_t,
            kind=kind,
        )

    # ------------------------------------------------------------------
    # traffic-variant delegation
    # ------------------------------------------------------------------
    def _evaluate_variant(
        self, setting: WeightSetting, composed: Scenario
    ) -> ScenarioEvaluation:
        """Evaluate a traffic-variant scenario through its sibling oracle.

        The variant's perturbed traffic gets a dedicated sibling
        evaluator (cached per variant digest), so its incremental
        routers, propagation memos and routing caches are bound to that
        traffic — every reuse key is traffic-variant-aware by
        construction, with no collisions against base-traffic state.
        For composed failure×variant scenarios the sibling's NORMAL
        evaluation of the same setting (small per-variant LRU) supplies
        the failed-arc shortcut.  Returned evaluations carry no
        routings: they belong to the sibling and must not seed
        base-traffic reuse.

        The parent lock guards only the sibling registry and the NORMAL
        cache, never the evaluation itself — the sibling serializes its
        own routing work under its own lock, so threaded sweeps keep
        plain-failure and variant evaluations concurrent.  A racing
        duplicate NORMAL evaluation is possible and harmless: results
        are bit-identical, last write wins.
        """
        variant = composed.variant
        assert variant is not None
        self._num_evaluations += 1
        with self._router_lock:
            sibling = self._variant_evaluator(variant)
        v_reuse = None
        if not composed.failure.is_normal:
            v_reuse = self._variant_normal(sibling, variant, setting)
        outcome = sibling.evaluate(setting, composed.failure, reuse=v_reuse)
        return replace(
            outcome,
            variant=variant,
            kind=composed.kind,
            routing_delay=None,
            routing_tput=None,
        )

    def _variant_evaluator(self, variant: TrafficVariant) -> "DtrEvaluator":
        """The sibling oracle for one variant (built on first use)."""
        sibling = self._variant_evaluators.get(variant.digest)
        if sibling is None:
            sibling = self.with_traffic(variant.apply(self._traffic))
            self._variant_evaluators[variant.digest] = sibling
        return sibling

    def _variant_normal(
        self,
        sibling: "DtrEvaluator",
        variant: TrafficVariant,
        setting: WeightSetting,
    ) -> ScenarioEvaluation:
        """The sibling's NORMAL evaluation of ``setting``, LRU-cached.

        One LRU per variant: a failures-major cross product touches
        every variant once per failure, so a cache shared across
        variants would evict each entry right before its next use.
        """
        key = (setting.delay.tobytes(), setting.tput.tobytes())
        with self._router_lock:
            cache = self._variant_normal_cache.setdefault(
                variant.digest, OrderedDict()
            )
            entry = cache.get(key)
            if entry is not None:
                cache.move_to_end(key)
                return entry
        entry = sibling.evaluate(setting, NORMAL)
        with self._router_lock:
            cache[key] = entry
            while len(cache) > _VARIANT_NORMAL_CACHE:
                cache.popitem(last=False)
        return entry

    def _router_for(
        self, class_id: str, weights: np.ndarray, demands: np.ndarray
    ) -> IncrementalRouter:
        """The per-class incremental router (built on first use).

        A cached router is discarded when it no longer routes the
        requested demands — cannot happen through the public API (an
        evaluator's traffic is fixed; variants get sibling evaluators),
        but a stale router silently corrupting loads is the one failure
        mode worth an explicit guard.
        """
        router = self._routers.get(class_id)
        if router is not None and not router.routes_demands(demands):
            router = None
        if router is None:
            router = IncrementalRouter(
                self._network,
                demands,
                weights,
                plan=self._engine.plan,
                backend=self._config.execution.routing_backend,
            )
            self._routers[class_id] = router
        return router

    def _route_with_reuse(
        self,
        class_id: str,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario,
        base_routing: ClassRouting | None,
    ) -> tuple[ClassRouting, frozenset[int] | None]:
        """Route one class, reporting which destinations match the base.

        The second element names the destinations whose distance column
        and DAG-mask row are bit-identical to ``base_routing``'s (for
        path-delay column reuse); None when nothing can be claimed.
        Weights and demands are *not* re-validated here: weights come
        from a :class:`WeightSetting` (``>= 1`` enforced on
        construction, arc count checked in :meth:`evaluate`) and demands
        from the traffic instance validated in ``__init__``.
        """
        if not self._incremental:
            return (
                self._engine.route_class(
                    weights, demands, scenario, validate=False
                ),
                None,
            )
        with self._router_lock:
            router = self._router_for(class_id, weights, demands)
            router.sync(weights)
            if scenario.is_normal:
                reusable = router.matching_destinations(base_routing)
                return router.routing, reusable
            scenario_routing = router.route_scenario(
                scenario, want_reusable=base_routing is not None
            )
            return scenario_routing.routing, (
                scenario_routing.reusable
                if base_routing is not None
                else None
            )

    def _route(
        self,
        class_id: str,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario,
    ) -> ClassRouting:
        """Route one class; subclasses may interpose a routing cache.

        ``class_id`` (``"delay"`` / ``"tput"``) namespaces cache entries.
        """
        return self._route_with_reuse(
            class_id, weights, demands, scenario, None
        )[0]

    def evaluate_normal(self, setting: WeightSetting) -> ScenarioEvaluation:
        """Cost under the failure-free scenario."""
        return self.evaluate(setting, NORMAL)

    def evaluate_move(
        self,
        setting: WeightSetting,
        move: Move,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioEvaluation:
        """Failure-free cost of a candidate one :class:`Move` from its base.

        The local-search fast path, bit-identical to
        ``evaluate_normal(setting)``.  ``move`` is the single-arc delta
        that produced ``setting``; with incremental routing it is applied
        to the per-class routers directly (O(affected destinations) —
        often zero, e.g. a weight increase on an off-DAG arc), and
        ``reuse`` — the *base* setting's normal evaluation, as returned
        by the previous ``evaluate_move`` / ``evaluate_normal`` call on
        this evaluator — lets untouched destinations reuse their
        path-delay columns as well.  Both hints are safe against protocol
        drift: the router diffs the requested weights itself and falls
        back to a rebuild, and a base that does not match the router
        state is ignored.
        """
        if self._incremental and move is not None:
            with self._router_lock:
                for class_id, arc, old, new in move.deltas:
                    router = self._routers.get(class_id)
                    if (
                        router is not None
                        and router.weight_of(arc) == float(old)
                    ):
                        router.set_arc_weight(arc, new)
        return self.evaluate(setting, NORMAL, reuse=reuse)

    def revert_move(self, setting: WeightSetting, move: Move) -> None:
        """Restore the routers after a rejected move, in O(affected).

        The counterpart of :meth:`evaluate_move`: ``move.revert(...)``
        restores the *weight setting*; this restores the evaluator's
        incremental router state so the next candidate is again a
        single-arc delta.  A no-op without incremental routing, and safe
        to skip entirely — the routers re-diff on the next evaluation.
        """
        del setting  # the routers track their own weights
        if not self._incremental:
            return
        with self._router_lock:
            for class_id, arc, old, new in move.deltas:
                router = self._routers.get(class_id)
                if (
                    router is not None
                    and router.weight_of(arc) == float(new)
                ):
                    router.set_arc_weight(arc, old)

    def evaluate_normal_batch(
        self, settings: "list[WeightSetting] | tuple[WeightSetting, ...]"
    ) -> tuple[ScenarioEvaluation, ...]:
        """Failure-free costs of several settings, in input order.

        The serial implementation is a plain loop; the parallel evaluator
        fans the batch out across its worker pool.
        """
        return tuple(self.evaluate_normal(s) for s in settings)

    def evaluate_scenarios(
        self,
        setting: WeightSetting,
        scenarios: Scenarios,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioCosts:
        """Cost of the setting under every scenario of a set.

        The one sweep contract shared by every evaluator (serial,
        caching, parallel — all bit-identical): ``scenarios`` may be a
        :class:`~repro.scenarios.ScenarioSet`, a legacy
        :class:`~repro.routing.failures.FailureSet`, or any sequence of
        :class:`~repro.scenarios.Scenario` / :class:`FailureScenario`
        items.  Scenarios are evaluated in enumeration order and costs
        fold in that order, so equal sets produce bit-identical sums.

        Args:
            setting: the DTR weight setting.
            scenarios: scenarios to sweep.
            reuse: optional NORMAL evaluation of ``setting`` under base
                traffic for the unchanged-routing shortcut (computed on
                demand if omitted; traffic-variant scenarios maintain
                their own per-variant reuse instead).

        With ``config.execution.sweep_batching`` resolved on (the
        default for multi-scenario sweeps, requires incremental
        routing), the sweep runs through the scenario-axis batch engine
        (:mod:`repro.routing.sweep`): scenarios are grouped by
        structural footprint and the outstanding kernel work of a whole
        group — load propagations, path-delay DPs — runs once per group
        instead of once per scenario.  Results are bit-identical to the
        per-scenario loop (pinned by
        ``tests/core/test_sweep_evaluator.py``).
        """
        items = list(scenarios)
        if reuse is None:
            reuse = self.evaluate_normal(setting)
        if self._use_sweep_batching(len(items)):
            return ScenarioCosts(
                tuple(self._sweep_batched(setting, items, reuse))
            )
        return ScenarioCosts(
            tuple(self.evaluate(setting, s, reuse=reuse) for s in items)
        )

    # ------------------------------------------------------------------
    # costs-only sweeps and the sweep memo
    # ------------------------------------------------------------------
    @property
    def sweep_memo_stats(self) -> SweepMemoStats:
        """Counters of the costs-only sweep memo."""
        with self._router_lock:
            return SweepMemoStats(
                self._sweep_memo_hits, self._sweep_memo_misses
            )

    @property
    def resilience_stats(self) -> "ResilienceStats":
        """Failure/retry/degradation counters (``cache_stats`` style).

        The serial oracle dispatches nothing, so its counters are
        always zero; :class:`~repro.core.parallel.ParallelDtrEvaluator`
        overrides this with its supervisor's live counters.  Exposed
        here so callers can report resilience uniformly across
        evaluator kinds.
        """
        from repro.core.resilience import ResilienceStats

        return ResilienceStats()

    def evaluate_scenario_costs(
        self,
        setting: WeightSetting,
        scenarios: Scenarios,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioCosts:
        """Costs of the setting across a scenario set, scalars only.

        The costs-only counterpart of :meth:`evaluate_scenarios` — same
        per-scenario arithmetic, same fold order, but the returned
        evaluations are :func:`compact_evaluation` copies (costs and SLA
        scalars, no arrays or routings).  Two consequences:

        * a parallel evaluator's workers fold locally and ship scalars
          instead of per-scenario arrays (see
          :class:`~repro.core.parallel.ParallelDtrEvaluator`);
        * results are memoized by ``(setting key, scenario-set
          digest)``, so a repeat sweep of the same setting over the same
          set — Phase 2's worst-first re-sorts do exactly this — is
          answered without dispatching any work.  Memo hits return the
          stored object verbatim, so they are bit-identical by
          construction and counted in :attr:`sweep_memo_stats`, never in
          :attr:`num_evaluations`.
        """
        items = list(scenarios)
        key = (
            setting.key(),
            ScenarioSet(tuple(as_scenario(s) for s in items)).digest,
        )
        with self._router_lock:
            cached = self._sweep_memo.get(key)
            if cached is not None:
                self._sweep_memo.move_to_end(key)
                self._sweep_memo_hits += 1
                return cached
            self._sweep_memo_misses += 1
        costs = self._sweep_costs(setting, items, reuse)
        with self._router_lock:
            self._sweep_memo[key] = costs
            while len(self._sweep_memo) > _SWEEP_MEMO_CAPACITY:
                self._sweep_memo.popitem(last=False)
        return costs

    def _sweep_costs(
        self,
        setting: WeightSetting,
        items: list,
        reuse: ScenarioEvaluation | None,
    ) -> ScenarioCosts:
        """One costs-only sweep (memo miss); subclasses parallelize."""
        full = self.evaluate_scenarios(setting, items, reuse=reuse)
        return ScenarioCosts(
            tuple(compact_evaluation(e) for e in full.evaluations)
        )

    # ------------------------------------------------------------------
    # scenario-axis batch sweeps
    # ------------------------------------------------------------------
    def _use_sweep_batching(self, num_scenarios: int) -> bool:
        """Whether this sweep runs the batch sweep engine.

        The engine rides the incremental routers (so it requires
        ``incremental_routing``) and its cross-scenario kernels are the
        vector stack — a forced ``routing_backend="python"`` therefore
        disables batching too, keeping that knob's A/B isolation (and
        its float-weight caveat) intact.
        """
        if not self._incremental:
            return False
        if self._config.execution.routing_backend == "python":
            return False
        return resolve_sweep_batching(self._sweep_batching, num_scenarios)

    def _sweep_batched(
        self,
        setting: WeightSetting,
        items: "list[FailureScenario | Scenario]",
        reuse: ScenarioEvaluation | None,
    ) -> "list[ScenarioEvaluation]":
        """Evaluate a sweep through the scenario-axis batch engine.

        Scenarios are bucketed by :func:`repro.routing.sweep.plan_sweep`
        — arc-failure groups run the batch core, variant groups batch
        through their sibling oracle, the rest takes the exact legacy
        per-scenario path — and results reassemble in input order, so
        the returned list is bit-identical to the per-scenario loop.
        """
        if setting.num_arcs != self._network.num_arcs:
            raise ValueError("weight setting does not match the network")
        if reuse is not None and reuse.variant is not None:
            # A variant evaluation cannot seed base-traffic reuse.
            reuse = None
        results: "list[ScenarioEvaluation | None]" = [None] * len(items)
        plan = plan_sweep(items, self._network.num_nodes)
        for idx in plan.legacy:
            results[idx] = self.evaluate(setting, items[idx], reuse=reuse)
        for _, idxs in plan.variant_groups:
            self._evaluate_variant_group(setting, idxs, items, results)
        for group in plan.batch_groups:
            self._evaluate_failure_group(
                setting, group, items, reuse, results
            )
        return results

    def _evaluate_variant_group(
        self,
        setting: WeightSetting,
        idxs: "tuple[int, ...]",
        items: "list",
        results: "list[ScenarioEvaluation | None]",
    ) -> None:
        """Evaluate all scenarios sharing one traffic variant, batched.

        The batched counterpart of :meth:`_evaluate_variant`: one
        sibling lookup and one per-variant NORMAL reuse serve the whole
        group, and the group's failure halves sweep through the
        sibling's *serial* batched path (never a nested worker pool).
        Per scenario the sibling performs the same evaluation as the
        per-scenario path, so results are bit-identical.
        """
        variant = items[idxs[0]].variant
        assert variant is not None
        self._num_evaluations += len(idxs)
        with self._router_lock:
            sibling = self._variant_evaluator(variant)
        outcomes: dict[int, ScenarioEvaluation] = {}
        fail_idx = [
            idx for idx in idxs if not items[idx].failure.is_normal
        ]
        for idx in idxs:
            if items[idx].failure.is_normal:
                outcomes[idx] = sibling.evaluate(
                    setting, items[idx].failure
                )
        if fail_idx:
            v_reuse = self._variant_normal(sibling, variant, setting)
            costs = DtrEvaluator.evaluate_scenarios(
                sibling,
                setting,
                [items[idx].failure for idx in fail_idx],
                reuse=v_reuse,
            )
            outcomes.update(zip(fail_idx, costs.evaluations))
        for idx in idxs:
            results[idx] = replace(
                outcomes[idx],
                variant=variant,
                kind=items[idx].kind,
                routing_delay=None,
                routing_tput=None,
            )

    def _batch_route_lookup(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
    ) -> ClassRouting | None:
        """Routing-cache probe hook of the batch sweep path (none here)."""
        del class_id, scenario, weights
        return None

    def _batch_route_store(
        self,
        class_id: str,
        scenario: FailureScenario,
        weights: np.ndarray,
        routing: ClassRouting,
    ) -> None:
        """Routing-cache store hook of the batch sweep path (no-op here)."""
        del class_id, scenario, weights, routing

    def _evaluate_failure_group(
        self,
        setting: WeightSetting,
        idxs: "tuple[int, ...]",
        items: "list",
        reuse: ScenarioEvaluation | None,
        results: "list[ScenarioEvaluation | None]",
    ) -> None:
        """Evaluate one batch group of plain arc-failure scenarios.

        Mirrors :meth:`evaluate` stage by stage — the failed-arc
        shortcut, the routing-cache probe, incremental scenario routing,
        arc delays, path-delay reuse, SLA and Fortz costs — but runs the
        outstanding kernel work of the whole group through single
        invocations: one :func:`~repro.routing.sweep.
        route_scenario_batch` per class and one
        :func:`~repro.routing.sweep.flush_delay_batch` for the delay
        DPs.  Every stage replays the identical floats, so each
        scenario's evaluation is bit-identical to the per-scenario path.
        Exact duplicates (same failure, same kind) share one evaluation.
        """
        self._num_evaluations += len(idxs)
        order: "list[tuple[FailureScenario, str | None]]" = []
        slots: "dict[tuple, list[int]]" = {}
        for idx in idxs:
            item = items[idx]
            if isinstance(item, Scenario):
                key = (item.failure, item.kind)
            else:
                key = (item, None)
            if key not in slots:
                slots[key] = []
                order.append(key)
            slots[key].append(idx)

        have_reuse = (
            reuse is not None
            and reuse.routing_delay is not None
            and reuse.routing_tput is not None
        )
        used_d = reuse.routing_delay.used_arcs() if have_reuse else None
        used_t = reuse.routing_tput.used_arcs() if have_reuse else None
        base_d = (
            reuse.routing_delay
            if reuse is not None and reuse.scenario.is_normal
            else None
        )

        # Stage 1: the failed-arc shortcut and the routing-cache probe,
        # per unique failure; what neither answers goes to the routers.
        shortcut: "dict[tuple, ScenarioEvaluation]" = {}
        resolved: "dict[tuple, list]" = {}
        route_d: "list[tuple]" = []
        route_t: "list[tuple]" = []
        for key in order:
            failure, kind = key
            routing_d: ClassRouting | None = None
            routing_t: ClassRouting | None = None
            reusable_d: "frozenset[int] | None" = None
            if have_reuse:
                failed = list(failure.failed_arcs)
                if not used_d[failed].any():
                    routing_d = reuse.routing_delay
                    reusable_d = frozenset(
                        int(t) for t in routing_d.destinations
                    )
                if not used_t[failed].any():
                    routing_t = reuse.routing_tput
                if routing_d is not None and routing_t is not None:
                    # Neither class touched the failed arcs: identical
                    # costs (the serial shortcut, verbatim).
                    shortcut[key] = replace(
                        reuse,
                        scenario=failure,
                        routing_delay=None,
                        routing_tput=None,
                        kind=kind,
                    )
                    continue
            if routing_d is None:
                routing_d = self._batch_route_lookup(
                    "delay", failure, setting.delay
                )
                if routing_d is None:
                    route_d.append(key)
                else:
                    # A hit reports no reusable set, and is re-stored —
                    # an incremental (dominated-weights) hit installs
                    # the exact key — exactly like the serial caching
                    # path's get-then-put sequence.
                    self._batch_route_store(
                        "delay", failure, setting.delay, routing_d
                    )
            if routing_t is None:
                routing_t = self._batch_route_lookup(
                    "tput", failure, setting.tput
                )
                if routing_t is None:
                    route_t.append(key)
                else:
                    self._batch_route_store(
                        "tput", failure, setting.tput, routing_t
                    )
            resolved[key] = [routing_d, routing_t, reusable_d]

        # Stage 2: batch-route the rest per class through the
        # incremental routers (scenario-axis batched propagation).  The
        # delay class's load-batch schedules are kept: the delay DPs of
        # the same columns replay them below.
        handoffs: "list" = []
        if route_d or route_t:
            with self._router_lock:
                if route_d:
                    router = self._router_for(
                        "delay", setting.delay, self._traffic.delay.values
                    )
                    router.sync(setting.delay)
                    routings, handoffs = route_scenario_batch(
                        router,
                        [key[0] for key in route_d],
                        want_reusable=base_d is not None,
                    )
                    for key, scenario_routing in zip(route_d, routings):
                        entry = resolved[key]
                        entry[0] = scenario_routing.routing
                        entry[2] = (
                            scenario_routing.reusable
                            if base_d is not None
                            else None
                        )
                        self._batch_route_store(
                            "delay", key[0], setting.delay, entry[0]
                        )
                if route_t:
                    router = self._router_for(
                        "tput",
                        setting.tput,
                        self._traffic.throughput.values,
                    )
                    router.sync(setting.tput)
                    routings, _ = route_scenario_batch(
                        router,
                        [key[0] for key in route_t],
                        want_reusable=False,
                    )
                    for key, scenario_routing in zip(route_t, routings):
                        resolved[key][1] = scenario_routing.routing
                        self._batch_route_store(
                            "tput", key[0], setting.tput, resolved[key][1]
                        )

        # Stage 3: arc delays and the path-delay reuse/memo pre-pass per
        # scenario; outstanding delay columns flush in one batched DP.
        n = self._network.num_nodes
        reuse_normal = reuse is not None and reuse.scenario.is_normal
        delay_tasks: "list[tuple]" = []
        assembled: "list[tuple]" = []
        for key in order:
            if key in shortcut:
                continue
            routing_d, routing_t, reusable_d = resolved[key]
            total = routing_d.loads + routing_t.loads
            delays = arc_delays(
                total,
                self._network.capacity,
                self._network.prop_delay,
                self._config.delay,
            )
            delay_reuse = None
            if reusable_d and reuse_normal:
                delay_reuse = PathDelayReuse(
                    pair_delays=reuse.pair_delays,
                    arc_delays=reuse.arc_delay,
                    reusable=reusable_d,
                )
            out = np.full((n, n), np.nan)
            pending = self._engine._delay_pending(
                routing_d, delays, self._delay_mode, delay_reuse, True, out
            )
            delay_tasks.append((routing_d, delays, out, pending))
            assembled.append((key, routing_d, routing_t, total, delays, out))
        # Resolve the loads-batch handoffs to delay-task indices: every
        # routed delay-class scenario has a task (only shortcut ones
        # don't, and those were never routed).
        task_of = {
            entry[0]: task_index
            for task_index, entry in enumerate(assembled)
        }
        shared = [
            (
                np.asarray(
                    [task_of[route_d[i]] for i, _ in handoff.cells],
                    dtype=np.intp,
                ),
                np.asarray([t for _, t in handoff.cells], dtype=np.intp),
                handoff.schedule,
            )
            for handoff in handoffs
        ]
        flush_delay_batch(
            self._engine, self._delay_mode, delay_tasks, shared
        )

        # Stage 4: per-scenario cost assembly (identical arithmetic).
        for key, routing_d, routing_t, total, delays, out in assembled:
            failure, kind = key
            sla = sla_outcome(out, routing_d.demands, self._config.sla)
            phi = fortz_cost(
                total,
                self._network.capacity,
                include=routing_t.loads > 0.0,
            )
            shortcut[key] = ScenarioEvaluation(
                scenario=failure,
                cost=CostPair(sla.cost, phi),
                sla=sla,
                loads_delay=routing_d.loads,
                loads_tput=routing_t.loads,
                arc_delay=delays,
                pair_delays=out,
                utilization=total / self._network.capacity,
                routing_delay=routing_d,
                routing_tput=routing_t,
                kind=kind,
            )
        for key, evaluation in shortcut.items():
            for idx in slots[key]:
                results[idx] = evaluation

    def evaluate_failures(
        self,
        setting: WeightSetting,
        failures: Scenarios,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioCosts:
        """Legacy name for :meth:`evaluate_scenarios` (same contract)."""
        return self.evaluate_scenarios(setting, failures, reuse=reuse)
