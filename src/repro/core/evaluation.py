"""Evaluation of a DTR weight setting: the paper's cost oracle.

:class:`DtrEvaluator` binds a network, the two traffic matrices and the
cost-model parameters, and answers "what does weight setting ``W`` cost
under scenario ``s``?"  Everything the optimizer and every experiment
needs funnels through :meth:`DtrEvaluator.evaluate`:

1. route each class by its own weights (SPF + ECMP);
2. superpose class loads (shared FIFO) and derive per-arc delays (Eq. 1);
3. delay class pays the SLA penalty Lambda (Eq. 2) on its worst used path;
4. throughput class pays the Fortz–Thorup cost Phi on total loads.

Failure sweeps exploit a structural shortcut: an arc that lies on no
shortest-path DAG of a class under normal conditions cannot change that
class's routing when it fails (removing a never-shortest arc leaves all
shortest distances, DAGs and loads untouched), so the normal routing is
reused.  Passing the normal-scenario evaluation as ``reuse`` enables the
shortcut; tests pin it against the direct computation.

That shortcut is the trivial (all-destinations-unaffected) case of the
delta-rerouting core (:mod:`repro.routing.incremental`), which the
evaluator uses for every routing when
``config.execution.incremental_routing`` is on (the default): single-arc
weight moves (:meth:`DtrEvaluator.evaluate_move` /
:meth:`DtrEvaluator.revert_move`) and failure scenarios re-route only
the destinations the delta can affect, and path-delay columns of
untouched destinations are copied from the ``reuse`` evaluation instead
of re-propagated.  All of it is bit-identical to from-scratch
evaluation; tests pin the parity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.config import OptimizerConfig
from repro.core.delay import arc_delays
from repro.core.fortz import fortz_cost
from repro.core.lexicographic import CostPair
from repro.core.perturbation import Move
from repro.core.sla import SlaOutcome, sla_outcome
from repro.core.weights import WeightSetting
from repro.routing.engine import ClassRouting, PathDelayReuse, RoutingEngine
from repro.routing.failures import NORMAL, FailureScenario, FailureSet
from repro.routing.incremental import IncrementalRouter
from repro.routing.network import Network
from repro.traffic.gravity import DtrTraffic


@dataclass(frozen=True)
class ScenarioEvaluation:
    """Full outcome of one (weight setting, scenario) evaluation.

    Attributes:
        scenario: the failure scenario evaluated.
        cost: the global cost ``K = <Lambda, Phi>``.
        sla: SLA accounting for the delay class.
        loads_delay: per-arc delay-class loads.
        loads_tput: per-arc throughput-class loads.
        arc_delay: per-arc delay ``D_l`` from total loads.
        pair_delays: ``(N, N)`` end-to-end delay matrix of the delay class.
        utilization: per-arc total utilization.
        routing_delay: the delay-class routing (enables failure-sweep
            reuse; None on reused evaluations).
        routing_tput: the throughput-class routing.
    """

    scenario: FailureScenario
    cost: CostPair
    sla: SlaOutcome
    loads_delay: np.ndarray
    loads_tput: np.ndarray
    arc_delay: np.ndarray
    pair_delays: np.ndarray
    utilization: np.ndarray
    routing_delay: ClassRouting | None = None
    routing_tput: ClassRouting | None = None

    @property
    def total_loads(self) -> np.ndarray:
        """Per-arc load across both classes."""
        return self.loads_delay + self.loads_tput


@dataclass(frozen=True)
class FailureEvaluation:
    """Costs of one weight setting across a whole failure set.

    Attributes:
        evaluations: per-scenario outcomes, in scenario order.
    """

    evaluations: tuple[ScenarioEvaluation, ...]

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def total_cost(self) -> CostPair:
        """``K_fail``: component-wise sum over scenarios (Eq. 4 / Eq. 7)."""
        return CostPair.total([e.cost for e in self.evaluations])

    @property
    def violations(self) -> np.ndarray:
        """Per-scenario SLA violation counts."""
        return np.asarray(
            [e.sla.violations for e in self.evaluations], dtype=np.int64
        )

    @property
    def phi_values(self) -> np.ndarray:
        """Per-scenario throughput costs ``Phi_fail,l``."""
        return np.asarray([e.cost.phi for e in self.evaluations])

    def mean_violations(self) -> float:
        """Average SLA violations per failure scenario."""
        if not self.evaluations:
            return 0.0
        return float(self.violations.mean())

    def top_fraction_mean_violations(self, fraction: float = 0.1) -> float:
        """Mean violations over the worst ``fraction`` of scenarios.

        The paper's "average top-10 % SLA violations" focuses on the
        failures with the highest violation counts.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        if not self.evaluations:
            return 0.0
        counts = np.sort(self.violations)[::-1]
        k = max(1, round(fraction * len(counts)))
        return float(counts[:k].mean())


class DtrEvaluator:
    """Cost oracle for one (network, traffic, configuration) instance."""

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig,
        delay_mode: str = "worst",
    ) -> None:
        if traffic.num_nodes != network.num_nodes:
            raise ValueError("traffic and network dimensions differ")
        self._network = network
        self._traffic = traffic
        self._config = config
        self._delay_mode = delay_mode
        self._engine = RoutingEngine(
            network, backend=config.execution.routing_backend
        )
        self._num_evaluations = 0
        self._incremental = config.execution.incremental_routing
        self._routers: dict[str, IncrementalRouter] = {}
        self._router_lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The evaluated topology."""
        return self._network

    @property
    def traffic(self) -> DtrTraffic:
        """The evaluated traffic instance."""
        return self._traffic

    @property
    def config(self) -> OptimizerConfig:
        """Cost-model and search parameters."""
        return self._config

    @property
    def engine(self) -> RoutingEngine:
        """The underlying routing engine."""
        return self._engine

    @property
    def delay_mode(self) -> str:
        """Path-delay aggregation mode (``"worst"`` or ``"mean"``)."""
        return self._delay_mode

    @property
    def num_evaluations(self) -> int:
        """How many scenario evaluations this oracle has performed."""
        return self._num_evaluations

    def with_traffic(self, traffic: DtrTraffic) -> "DtrEvaluator":
        """A sibling evaluator for different (e.g. perturbed) traffic."""
        return type(self)(
            self._network, traffic, self._config, self._delay_mode
        )

    def close(self) -> None:
        """Release execution resources (no-op for the serial evaluator)."""

    # ------------------------------------------------------------------
    def evaluate(
        self,
        setting: WeightSetting,
        scenario: FailureScenario = NORMAL,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioEvaluation:
        """Cost of one weight setting under one scenario.

        Args:
            setting: the DTR weight setting.
            scenario: failure scenario.
            reuse: a NORMAL-scenario evaluation *of the same setting*
                (with routings attached); classes whose shortest-path
                DAGs avoid every failed arc are not re-routed, and with
                incremental routing the unaffected destinations of
                partially-affected classes reuse their distance, mask and
                path-delay columns too.
        """
        if setting.num_arcs != self._network.num_arcs:
            raise ValueError("weight setting does not match the network")
        self._num_evaluations += 1

        routing_d: ClassRouting | None = None
        routing_t: ClassRouting | None = None
        reusable_d: frozenset[int] | None = None
        if (
            reuse is not None
            and scenario.failed_arcs
            and not scenario.removed_nodes
            and reuse.routing_delay is not None
            and reuse.routing_tput is not None
        ):
            failed = list(scenario.failed_arcs)
            if not reuse.routing_delay.used_arcs()[failed].any():
                routing_d = reuse.routing_delay
                reusable_d = frozenset(
                    int(t) for t in routing_d.destinations
                )
            if not reuse.routing_tput.used_arcs()[failed].any():
                routing_t = reuse.routing_tput
            if routing_d is not None and routing_t is not None:
                # Neither class touched the failed arcs: identical costs.
                return replace(
                    reuse,
                    scenario=scenario,
                    routing_delay=None,
                    routing_tput=None,
                )

        base_d = (
            reuse.routing_delay
            if reuse is not None and reuse.scenario.is_normal
            else None
        )
        if routing_d is None:
            routing_d, reusable_d = self._route_with_reuse(
                "delay",
                setting.delay,
                self._traffic.delay.values,
                scenario,
                base_d,
            )
        if routing_t is None:
            routing_t, _ = self._route_with_reuse(
                "tput",
                setting.tput,
                self._traffic.throughput.values,
                scenario,
                None,
            )
        total = routing_d.loads + routing_t.loads
        delays = arc_delays(
            total,
            self._network.capacity,
            self._network.prop_delay,
            self._config.delay,
        )
        delay_reuse = None
        if (
            reusable_d
            and reuse is not None
            and reuse.scenario.is_normal
        ):
            delay_reuse = PathDelayReuse(
                pair_delays=reuse.pair_delays,
                arc_delays=reuse.arc_delay,
                reusable=reusable_d,
            )
        pair_delays = self._engine.path_delays(
            routing_d,
            delays,
            mode=self._delay_mode,
            reuse=delay_reuse,
            memo=self._incremental,
        )
        sla = sla_outcome(pair_delays, routing_d.demands, self._config.sla)
        phi = fortz_cost(
            total, self._network.capacity, include=routing_t.loads > 0.0
        )
        return ScenarioEvaluation(
            scenario=scenario,
            cost=CostPair(sla.cost, phi),
            sla=sla,
            loads_delay=routing_d.loads,
            loads_tput=routing_t.loads,
            arc_delay=delays,
            pair_delays=pair_delays,
            utilization=total / self._network.capacity,
            routing_delay=routing_d,
            routing_tput=routing_t,
        )

    def _router_for(
        self, class_id: str, weights: np.ndarray, demands: np.ndarray
    ) -> IncrementalRouter:
        """The per-class incremental router (built on first use)."""
        router = self._routers.get(class_id)
        if router is None:
            router = IncrementalRouter(
                self._network,
                demands,
                weights,
                plan=self._engine.plan,
                backend=self._config.execution.routing_backend,
            )
            self._routers[class_id] = router
        return router

    def _route_with_reuse(
        self,
        class_id: str,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario,
        base_routing: ClassRouting | None,
    ) -> tuple[ClassRouting, frozenset[int] | None]:
        """Route one class, reporting which destinations match the base.

        The second element names the destinations whose distance column
        and DAG-mask row are bit-identical to ``base_routing``'s (for
        path-delay column reuse); None when nothing can be claimed.
        Weights and demands are *not* re-validated here: weights come
        from a :class:`WeightSetting` (``>= 1`` enforced on
        construction, arc count checked in :meth:`evaluate`) and demands
        from the traffic instance validated in ``__init__``.
        """
        if not self._incremental:
            return (
                self._engine.route_class(
                    weights, demands, scenario, validate=False
                ),
                None,
            )
        with self._router_lock:
            router = self._router_for(class_id, weights, demands)
            router.sync(weights)
            if scenario.is_normal:
                reusable = router.matching_destinations(base_routing)
                return router.routing, reusable
            scenario_routing = router.route_scenario(
                scenario, want_reusable=base_routing is not None
            )
            return scenario_routing.routing, (
                scenario_routing.reusable
                if base_routing is not None
                else None
            )

    def _route(
        self,
        class_id: str,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario,
    ) -> ClassRouting:
        """Route one class; subclasses may interpose a routing cache.

        ``class_id`` (``"delay"`` / ``"tput"``) namespaces cache entries.
        """
        return self._route_with_reuse(
            class_id, weights, demands, scenario, None
        )[0]

    def evaluate_normal(self, setting: WeightSetting) -> ScenarioEvaluation:
        """Cost under the failure-free scenario."""
        return self.evaluate(setting, NORMAL)

    def evaluate_move(
        self,
        setting: WeightSetting,
        move: Move,
        reuse: ScenarioEvaluation | None = None,
    ) -> ScenarioEvaluation:
        """Failure-free cost of a candidate one :class:`Move` from its base.

        The local-search fast path, bit-identical to
        ``evaluate_normal(setting)``.  ``move`` is the single-arc delta
        that produced ``setting``; with incremental routing it is applied
        to the per-class routers directly (O(affected destinations) —
        often zero, e.g. a weight increase on an off-DAG arc), and
        ``reuse`` — the *base* setting's normal evaluation, as returned
        by the previous ``evaluate_move`` / ``evaluate_normal`` call on
        this evaluator — lets untouched destinations reuse their
        path-delay columns as well.  Both hints are safe against protocol
        drift: the router diffs the requested weights itself and falls
        back to a rebuild, and a base that does not match the router
        state is ignored.
        """
        if self._incremental and move is not None:
            with self._router_lock:
                for class_id, arc, old, new in move.deltas:
                    router = self._routers.get(class_id)
                    if (
                        router is not None
                        and router.weight_of(arc) == float(old)
                    ):
                        router.set_arc_weight(arc, new)
        return self.evaluate(setting, NORMAL, reuse=reuse)

    def revert_move(self, setting: WeightSetting, move: Move) -> None:
        """Restore the routers after a rejected move, in O(affected).

        The counterpart of :meth:`evaluate_move`: ``move.revert(...)``
        restores the *weight setting*; this restores the evaluator's
        incremental router state so the next candidate is again a
        single-arc delta.  A no-op without incremental routing, and safe
        to skip entirely — the routers re-diff on the next evaluation.
        """
        del setting  # the routers track their own weights
        if not self._incremental:
            return
        with self._router_lock:
            for class_id, arc, old, new in move.deltas:
                router = self._routers.get(class_id)
                if (
                    router is not None
                    and router.weight_of(arc) == float(new)
                ):
                    router.set_arc_weight(arc, old)

    def evaluate_normal_batch(
        self, settings: "list[WeightSetting] | tuple[WeightSetting, ...]"
    ) -> tuple[ScenarioEvaluation, ...]:
        """Failure-free costs of several settings, in input order.

        The serial implementation is a plain loop; the parallel evaluator
        fans the batch out across its worker pool.
        """
        return tuple(self.evaluate_normal(s) for s in settings)

    def evaluate_failures(
        self,
        setting: WeightSetting,
        failures: FailureSet,
        reuse: ScenarioEvaluation | None = None,
    ) -> FailureEvaluation:
        """Cost of the setting under every scenario of a failure set.

        Args:
            setting: the DTR weight setting.
            failures: scenarios to sweep.
            reuse: optional NORMAL evaluation of ``setting`` for the
                unchanged-routing shortcut (computed on demand if omitted).
        """
        if reuse is None:
            reuse = self.evaluate_normal(setting)
        return FailureEvaluation(
            tuple(self.evaluate(setting, s, reuse=reuse) for s in failures)
        )
