"""Deterministic fault injection for chaos-testing the sweep executor.

Testing the resilience layer (:mod:`repro.core.resilience`) against
*real* worker deaths, stalls and raises is only useful if every chaos
run is reproducible bit-for-bit.  This module provides that
determinism: a :class:`FaultPlan` names exactly which faults fire and
when, keyed on the **task sequence number** the parent assigns to every
dispatched ticket (deterministic by construction — it depends on chunk
order, never on scheduling) and the **attempt number** of the dispatch
(1-based; retries re-dispatch with the next attempt).  Two runs with
the same plan, seed and inputs inject the identical faults at the
identical points, so the chaos tests in ``tests/core/test_resilience.py``
and the CI chaos-smoke job can pin exact invariants ("results bitwise
identical to the fault-free run") instead of flaky approximations.

Fault kinds:

* :class:`WorkerKill` — the worker executing the matching task delivers
  ``SIGKILL`` to itself before computing anything: a genuine, unclean
  worker death (the pool breaks exactly as it would under the OOM
  killer).
* :class:`TaskDelay` — the worker sleeps before computing, long enough
  to trip a configured per-task timeout.
* :class:`StageFault` — the worker raises :class:`FaultInjected` at a
  named stage: ``"task"`` fires before the task body, the batch-engine
  stages (``"route_batch"``, ``"delay_flush"``) fire inside
  :mod:`repro.routing.sweep` through a zero-overhead hook.

Plans are installed **worker-side only** (the pool initializer calls
:func:`install_fault_plan`): the parent process never injects, so the
supervisor's serial in-process fallback always computes clean results.
Plans serialize to JSON (:meth:`FaultPlan.to_json`) and can be drawn
from a seed (:meth:`FaultPlan.sample`) for randomized-but-reproducible
chaos sweeps.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

#: Stage names with injection points wired in (``"task"`` fires in the
#: dispatch wrapper; the rest inside the batch sweep engine).
KNOWN_STAGES = ("task", "route_batch", "delay_flush")


class FaultInjected(RuntimeError):
    """An injected failure fired (never raised outside chaos runs)."""


def _normalize_attempts(
    attempts: "tuple[int, ...] | list[int] | None",
) -> "tuple[int, ...] | None":
    """Validate the 1-based attempt filter (None = every attempt)."""
    if attempts is None:
        return None
    attempts = tuple(int(a) for a in attempts)
    if not attempts or any(a < 1 for a in attempts):
        raise ValueError("attempts must be 1-based positive integers")
    return attempts


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL the worker before it computes the matching task.

    Attributes:
        task: task sequence number the fault keys on.
        attempts: attempt numbers (1-based) that fire; None fires on
            every attempt (a persistent pool killer — the supervisor
            must quarantine the task to complete the sweep).
    """

    task: int
    attempts: "tuple[int, ...] | None" = (1,)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "attempts", _normalize_attempts(self.attempts)
        )

    def matches(self, task: int, attempt: int) -> bool:
        """Whether this fault fires for (task, attempt)."""
        return self.task == task and (
            self.attempts is None or attempt in self.attempts
        )


@dataclass(frozen=True)
class TaskDelay:
    """Sleep before computing the matching task (trips task timeouts).

    Attributes:
        task: task sequence number the fault keys on.
        seconds: how long the worker stalls.
        attempts: attempt numbers (1-based) that fire; None = always.
    """

    task: int
    seconds: float
    attempts: "tuple[int, ...] | None" = (1,)

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        object.__setattr__(
            self, "attempts", _normalize_attempts(self.attempts)
        )

    def matches(self, task: int, attempt: int) -> bool:
        """Whether this fault fires for (task, attempt)."""
        return self.task == task and (
            self.attempts is None or attempt in self.attempts
        )


@dataclass(frozen=True)
class StageFault:
    """Raise :class:`FaultInjected` at a named stage of a task.

    Attributes:
        stage: injection point (see :data:`KNOWN_STAGES`).
        task: task sequence number the fault keys on.
        attempts: attempt numbers (1-based) that fire; None = always
            (a *poison task* — it fails every retry, so the supervisor
            must degrade it to the serial path).
    """

    stage: str
    task: int
    attempts: "tuple[int, ...] | None" = (1,)

    def __post_init__(self) -> None:
        if self.stage not in KNOWN_STAGES:
            raise ValueError(
                f"unknown fault stage {self.stage!r}; "
                f"choose from {', '.join(KNOWN_STAGES)}"
            )
        object.__setattr__(
            self, "attempts", _normalize_attempts(self.attempts)
        )

    def matches(self, stage: str, task: int, attempt: int) -> bool:
        """Whether this fault fires for (stage, task, attempt)."""
        return (
            self.stage == stage
            and self.task == task
            and (self.attempts is None or attempt in self.attempts)
        )


_FAULT_KINDS = {
    "kill": WorkerKill,
    "delay": TaskDelay,
    "stage": StageFault,
}


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible chaos schedule: which faults fire, and when.

    Frozen (hashable, deterministic ``repr``) so it can ride inside
    :class:`~repro.config.ExecutionParams` and ship to workers through
    the pool initializer like every other execution knob.

    Attributes:
        faults: the fault specs, in declaration order.
        seed: the seed the plan was drawn from (0 for hand-built
            plans; recorded so a sampled plan's identity is complete).
    """

    faults: "tuple[WorkerKill | TaskDelay | StageFault, ...]" = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, tuple(_FAULT_KINDS.values())):
                raise ValueError(f"not a fault spec: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the plan (stable field order, reversible)."""
        kinds = {cls: name for name, cls in _FAULT_KINDS.items()}
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    {"kind": kinds[type(f)], **f.__dict__}
                    for f in self.faults
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_json`."""
        data = json.loads(text)
        faults = []
        for spec in data["faults"]:
            spec = dict(spec)
            kind = _FAULT_KINDS[spec.pop("kind")]
            if spec.get("attempts") is not None:
                spec["attempts"] = tuple(spec["attempts"])
            faults.append(kind(**spec))
        return cls(faults=tuple(faults), seed=int(data.get("seed", 0)))

    @classmethod
    def sample(
        cls,
        seed: int,
        num_tasks: int,
        kills: int = 1,
        delays: int = 0,
        stage_faults: int = 0,
        delay_seconds: float = 0.2,
    ) -> "FaultPlan":
        """Draw a reproducible random plan over ``num_tasks`` tickets.

        Sampling uses its own ``numpy`` generator seeded with ``seed``
        only, so the same arguments always produce the same plan —
        chaos sweeps stay bit-for-bit reproducible end to end.
        """
        import numpy as np

        if num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        rng = np.random.default_rng(seed)
        faults: "list[WorkerKill | TaskDelay | StageFault]" = []
        for _ in range(kills):
            faults.append(
                WorkerKill(task=int(rng.integers(num_tasks)))
            )
        for _ in range(delays):
            faults.append(
                TaskDelay(
                    task=int(rng.integers(num_tasks)),
                    seconds=delay_seconds,
                )
            )
        for _ in range(stage_faults):
            stage = KNOWN_STAGES[1 + int(rng.integers(2))]
            faults.append(
                StageFault(stage=stage, task=int(rng.integers(num_tasks)))
            )
        return cls(faults=tuple(faults), seed=seed)


# ----------------------------------------------------------------------
# per-process installation and the injection points
# ----------------------------------------------------------------------
#: The plan installed in *this* process (workers only; the parent never
#: installs one, so serial fallback evaluations are always clean).
_PLAN: FaultPlan | None = None

#: The task the current thread of execution is inside: (seq, attempt).
_CONTEXT: "tuple[int, int] | None" = None


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install (or clear, with None) this process's fault plan.

    Also wires the batch sweep engine's fault hook
    (:func:`repro.routing.sweep.set_fault_hook`) so stage faults fire
    inside the kernels with zero overhead when no plan is installed.
    """
    global _PLAN
    _PLAN = plan
    from repro.routing.sweep import set_fault_hook

    set_fault_hook(fault_point if plan is not None else None)


def installed_fault_plan() -> FaultPlan | None:
    """The plan active in this process, or None."""
    return _PLAN


def enter_task(task: int, attempt: int) -> None:
    """Mark task entry and fire kill/delay/``"task"``-stage faults.

    Called by the dispatch wrapper in the worker before the task body;
    must be paired with :func:`exit_task`.
    """
    global _CONTEXT
    _CONTEXT = (task, attempt)
    plan = _PLAN
    if plan is None:
        return
    for fault in plan.faults:
        if isinstance(fault, WorkerKill) and fault.matches(task, attempt):
            # A genuine unclean death: no cleanup, no exit handlers —
            # exactly what the OOM killer or a segfault looks like.
            os.kill(os.getpid(), signal.SIGKILL)
        if isinstance(fault, TaskDelay) and fault.matches(task, attempt):
            time.sleep(fault.seconds)
    fault_point("task")


def exit_task() -> None:
    """Clear the task context set by :func:`enter_task`."""
    global _CONTEXT
    _CONTEXT = None


def fault_point(stage: str) -> None:
    """Raise :class:`FaultInjected` if a stage fault matches here.

    A no-op unless a plan is installed *and* the current thread is
    inside a task context (so parent-side evaluations never inject).
    """
    plan, context = _PLAN, _CONTEXT
    if plan is None or context is None:
        return
    task, attempt = context
    for fault in plan.faults:
        if isinstance(fault, StageFault) and fault.matches(
            stage, task, attempt
        ):
            raise FaultInjected(
                f"injected fault at stage {stage!r} "
                f"(task {task}, attempt {attempt})"
            )
