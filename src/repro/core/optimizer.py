"""The robust DTR optimizer: the paper's full two-phase pipeline.

:class:`RobustDtrOptimizer` wires together Phase 1 (regular optimization
and critical-link identification) and Phase 2 (robust optimization over
the critical failure scenarios) and returns both the *regular* and the
*robust* weight settings so experiments can compare them — exactly the
"R" vs "NR" columns of the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import PAPER_CONFIG, OptimizerConfig
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointManager,
    CheckpointMeta,
    config_fingerprint,
    execution_fingerprint,
    instance_fingerprint,
    resolve_resume,
)
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import make_evaluator
from repro.core.phase1 import Phase1Result, run_phase1
from repro.core.phase2 import (
    Phase2Result,
    RobustConstraints,
    run_phase2,
)
from repro.core.weights import WeightSetting
from repro.routing.failures import FailureModel
from repro.routing.network import Network
from repro.scenarios.generators import legacy_failures
from repro.scenarios.scenario import ScenarioSet
from repro.traffic.gravity import DtrTraffic


@dataclass(frozen=True)
class RobustRoutingResult:
    """Combined outcome of the two-phase optimization.

    Attributes:
        phase1: regular optimization + criticality outcome.
        phase2: robust optimization outcome.
        critical_failures: the scenarios Phase 2 optimized over.
        all_failures: the full scenario set of the run: the network's
            single-failure set (as a legacy-equivalent ScenarioSet) by
            default, or the explicit ScenarioSet the optimizer was given.
        phase1_seconds: wall time of Phase 1.
        phase2_seconds: wall time of Phase 2.
    """

    phase1: Phase1Result
    phase2: Phase2Result
    critical_failures: ScenarioSet
    all_failures: ScenarioSet
    phase1_seconds: float
    phase2_seconds: float
    #: True on placeholder results returned for arms another shard owns
    #: (see :mod:`repro.exp.common`); real optimizer runs always set
    #: False.
    deferred: bool = False

    @property
    def regular_setting(self) -> WeightSetting:
        """The performance-only ("no robust") weight setting."""
        return self.phase1.best_setting

    @property
    def robust_setting(self) -> WeightSetting:
        """The robust weight setting."""
        return self.phase2.best_setting

    @property
    def critical_fraction_used(self) -> float:
        """``|Ec| / |E|`` actually realized."""
        total = len(self.phase1.estimate.rho_lam)
        return len(self.phase1.critical_arcs) / total


class RobustDtrOptimizer:
    """End-to-end robust DTR optimization for one problem instance.

    Args:
        network: the topology.
        traffic: the two-class traffic instance.
        config: parameters (defaults to the paper's values).  The
            ``config.execution`` block selects the evaluation engine:
            ``n_jobs > 1`` sweeps failure sets across a worker pool and
            ``routing_cache`` reuses class routings across settings; both
            are bit-identical to the serial evaluator.
        failure_model: granularity of single-failure enumeration
            (physical link by default; per-arc available).  Ignored when
            ``scenarios`` is given.
        rng: random generator; pass a seeded one for reproducibility.
        scenarios: optimize robustness against this explicit
            :class:`~repro.scenarios.ScenarioSet` (SRLGs, k-link,
            regional, node, surge, cross products, ...) instead of the
            paper's single-failure enumeration.  An explicit set is
            swept in full — Phase 1's critical-link restriction only
            applies to the default single-failure set, whose per-link
            cost samples are what the criticality estimate measures.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig = PAPER_CONFIG,
        failure_model: FailureModel = FailureModel.LINK,
        rng: np.random.Generator | None = None,
        scenarios: ScenarioSet | None = None,
    ) -> None:
        self._evaluator = make_evaluator(network, traffic, config)
        self._failure_model = failure_model
        self._rng = rng if rng is not None else np.random.default_rng()
        self._scenarios = scenarios

    @property
    def evaluator(self) -> DtrEvaluator:
        """The underlying cost oracle."""
        return self._evaluator

    def close(self) -> None:
        """Release the evaluator's execution resources (worker pools)."""
        self._evaluator.close()

    # ------------------------------------------------------------------
    def _checkpoint_meta(
        self,
        all_failures: ScenarioSet,
        critical_fraction: float | None,
        full_search: bool,
    ) -> CheckpointMeta:
        """The identity header binding checkpoints to this exact run."""
        config = self._evaluator.config
        return CheckpointMeta(
            version=CHECKPOINT_VERSION,
            stage="",
            ticks=0,
            scenario_digest=all_failures.digest,
            config_fingerprint=config_fingerprint(
                config,
                failure_model=self._failure_model,
                critical_fraction=critical_fraction,
                full_search=full_search,
            ),
            execution_fingerprint=execution_fingerprint(config.execution),
            instance_fingerprint=instance_fingerprint(
                self._evaluator.network, self._evaluator.traffic
            ),
        )

    def run(
        self,
        critical_fraction: float | None = None,
        full_search: bool = False,
        checkpoint: "str | Path | None" = None,
        resume_from: "str | Path | None" = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        interrupt_after: "int | None" = None,
    ) -> RobustRoutingResult:
        """Run Phases 1 and 2.

        Args:
            critical_fraction: override the configured ``|Ec| / |E|``.
            full_search: optimize over *all* single failures instead of
                the critical subset (the paper's brute-force comparator).
            checkpoint: write resumable snapshots to this file — every
                ``checkpoint_every`` loop boundaries and at the first
                boundary after SIGINT/SIGTERM, after which the run
                raises :class:`~repro.core.checkpoint.
                OptimizerInterrupted`.
            resume_from: resume from this checkpoint file if it exists
                (a missing file starts fresh; a checkpoint from an
                incompatible run raises :class:`~repro.core.checkpoint.
                CheckpointMismatchError`).  The resumed run's final
                weights and costs are bit-identical to an uninterrupted
                run.
            checkpoint_every: boundaries between periodic writes.
            interrupt_after: testing/CI hook — self-deliver a SIGTERM at
                the Nth boundary (requires ``checkpoint``).

        Returns:
            The combined result.
        """
        network = self._evaluator.network
        if self._scenarios is not None:
            all_failures = self._scenarios
        else:
            all_failures = legacy_failures(network, self._failure_model)

        meta = self._checkpoint_meta(
            all_failures, critical_fraction, full_search
        )
        restore = resolve_resume(resume_from, meta)
        if restore is not None and restore.get("stage") == "done":
            return restore["result"]
        manager: CheckpointManager | None = None
        if checkpoint is not None:
            manager = CheckpointManager(
                checkpoint,
                meta,
                every=checkpoint_every,
                interrupt_after=interrupt_after,
            )
        elif interrupt_after is not None:
            raise ValueError("interrupt_after requires checkpoint")

        try:
            if manager is not None:
                manager.install()
            return self._run_stages(
                all_failures,
                critical_fraction,
                full_search,
                manager,
                restore,
            )
        finally:
            if manager is not None:
                manager.uninstall()

    def _run_stages(
        self,
        all_failures: ScenarioSet,
        critical_fraction: float | None,
        full_search: bool,
        manager: "CheckpointManager | None",
        restore: "dict | None",
    ) -> RobustRoutingResult:
        """The pipeline body, optionally re-entering mid-stage."""
        stage = restore.get("stage") if restore else None
        if stage in (None, "phase1a", "phase1b"):
            t0 = time.perf_counter()
            phase1 = run_phase1(
                self._evaluator,
                self._rng,
                critical_fraction=critical_fraction,
                manager=manager,
                restore=restore,
            )
            phase1_seconds = time.perf_counter() - t0
        else:
            phase1 = restore["phase1"]
            phase1_seconds = restore["phase1_seconds"]
            self._rng.bit_generator.state = restore["rng_state"]

        if self._scenarios is not None:
            critical_failures = all_failures
        elif full_search:
            critical_failures = all_failures
        else:
            critical_failures = all_failures.restricted_to_arcs(
                phase1.critical_arcs
            )
        constraints = RobustConstraints(
            lam_star=phase1.best_cost.lam,
            phi_star=phase1.best_cost.phi,
            chi=self._evaluator.config.sampling.chi,
        )
        t1 = time.perf_counter()
        phase2 = run_phase2(
            self._evaluator,
            critical_failures,
            phase1.pool,
            constraints,
            self._rng,
            manager=manager,
            context={
                "phase1": phase1,
                "phase1_seconds": phase1_seconds,
            },
            restore=restore if stage == "phase2" else None,
        )
        phase2_seconds = time.perf_counter() - t1
        result = RobustRoutingResult(
            phase1=phase1,
            phase2=phase2,
            critical_failures=critical_failures,
            all_failures=all_failures,
            phase1_seconds=phase1_seconds,
            phase2_seconds=phase2_seconds,
        )
        if manager is not None:
            manager.finalize(result)
        return result
