"""The robust DTR optimizer: the paper's full two-phase pipeline.

:class:`RobustDtrOptimizer` wires together Phase 1 (regular optimization
and critical-link identification) and Phase 2 (robust optimization over
the critical failure scenarios) and returns both the *regular* and the
*robust* weight settings so experiments can compare them — exactly the
"R" vs "NR" columns of the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import PAPER_CONFIG, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import make_evaluator
from repro.core.phase1 import Phase1Result, run_phase1
from repro.core.phase2 import (
    Phase2Result,
    RobustConstraints,
    run_phase2,
)
from repro.core.weights import WeightSetting
from repro.routing.failures import FailureModel
from repro.routing.network import Network
from repro.scenarios.generators import legacy_failures
from repro.scenarios.scenario import ScenarioSet
from repro.traffic.gravity import DtrTraffic


@dataclass(frozen=True)
class RobustRoutingResult:
    """Combined outcome of the two-phase optimization.

    Attributes:
        phase1: regular optimization + criticality outcome.
        phase2: robust optimization outcome.
        critical_failures: the scenarios Phase 2 optimized over.
        all_failures: the full scenario set of the run: the network's
            single-failure set (as a legacy-equivalent ScenarioSet) by
            default, or the explicit ScenarioSet the optimizer was given.
        phase1_seconds: wall time of Phase 1.
        phase2_seconds: wall time of Phase 2.
    """

    phase1: Phase1Result
    phase2: Phase2Result
    critical_failures: ScenarioSet
    all_failures: ScenarioSet
    phase1_seconds: float
    phase2_seconds: float

    @property
    def regular_setting(self) -> WeightSetting:
        """The performance-only ("no robust") weight setting."""
        return self.phase1.best_setting

    @property
    def robust_setting(self) -> WeightSetting:
        """The robust weight setting."""
        return self.phase2.best_setting

    @property
    def critical_fraction_used(self) -> float:
        """``|Ec| / |E|`` actually realized."""
        total = len(self.phase1.estimate.rho_lam)
        return len(self.phase1.critical_arcs) / total


class RobustDtrOptimizer:
    """End-to-end robust DTR optimization for one problem instance.

    Args:
        network: the topology.
        traffic: the two-class traffic instance.
        config: parameters (defaults to the paper's values).  The
            ``config.execution`` block selects the evaluation engine:
            ``n_jobs > 1`` sweeps failure sets across a worker pool and
            ``routing_cache`` reuses class routings across settings; both
            are bit-identical to the serial evaluator.
        failure_model: granularity of single-failure enumeration
            (physical link by default; per-arc available).  Ignored when
            ``scenarios`` is given.
        rng: random generator; pass a seeded one for reproducibility.
        scenarios: optimize robustness against this explicit
            :class:`~repro.scenarios.ScenarioSet` (SRLGs, k-link,
            regional, node, surge, cross products, ...) instead of the
            paper's single-failure enumeration.  An explicit set is
            swept in full — Phase 1's critical-link restriction only
            applies to the default single-failure set, whose per-link
            cost samples are what the criticality estimate measures.
    """

    def __init__(
        self,
        network: Network,
        traffic: DtrTraffic,
        config: OptimizerConfig = PAPER_CONFIG,
        failure_model: FailureModel = FailureModel.LINK,
        rng: np.random.Generator | None = None,
        scenarios: ScenarioSet | None = None,
    ) -> None:
        self._evaluator = make_evaluator(network, traffic, config)
        self._failure_model = failure_model
        self._rng = rng if rng is not None else np.random.default_rng()
        self._scenarios = scenarios

    @property
    def evaluator(self) -> DtrEvaluator:
        """The underlying cost oracle."""
        return self._evaluator

    def close(self) -> None:
        """Release the evaluator's execution resources (worker pools)."""
        self._evaluator.close()

    # ------------------------------------------------------------------
    def run(
        self,
        critical_fraction: float | None = None,
        full_search: bool = False,
    ) -> RobustRoutingResult:
        """Run Phases 1 and 2.

        Args:
            critical_fraction: override the configured ``|Ec| / |E|``.
            full_search: optimize over *all* single failures instead of
                the critical subset (the paper's brute-force comparator).

        Returns:
            The combined result.
        """
        network = self._evaluator.network
        t0 = time.perf_counter()
        phase1 = run_phase1(
            self._evaluator, self._rng, critical_fraction=critical_fraction
        )
        t1 = time.perf_counter()

        if self._scenarios is not None:
            all_failures = self._scenarios
            critical_failures = self._scenarios
        else:
            all_failures = legacy_failures(network, self._failure_model)
            if full_search:
                critical_failures = all_failures
            else:
                critical_failures = all_failures.restricted_to_arcs(
                    phase1.critical_arcs
                )
        constraints = RobustConstraints(
            lam_star=phase1.best_cost.lam,
            phi_star=phase1.best_cost.phi,
            chi=self._evaluator.config.sampling.chi,
        )
        phase2 = run_phase2(
            self._evaluator,
            critical_failures,
            phase1.pool,
            constraints,
            self._rng,
        )
        t2 = time.perf_counter()
        return RobustRoutingResult(
            phase1=phase1,
            phase2=phase2,
            critical_failures=critical_failures,
            all_failures=all_failures,
            phase1_seconds=t1 - t0,
            phase2_seconds=t2 - t1,
        )
