"""Cost-sample collection for criticality estimation (Section IV-D1).

During Phase 1a every weight perturbation that (a) starts from an
*acceptable* weight setting and (b) pushes both class weights of an arc
into the failure-emulation band ``[q * w_max, w_max]`` contributes one
``(Lambda, Phi)`` sample to that arc's failure-cost distribution.  The
:class:`CostSampleStore` keeps those samples; criticality (Eqs. 8-9)
is derived from them in :mod:`repro.core.criticality`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SamplingParams
from repro.core.lexicographic import CostPair


@dataclass(frozen=True)
class AcceptabilityRule:
    """Section IV-D1's relaxed acceptability test for sample collection.

    A pre-perturbation cost is acceptable when its delay cost does not
    exceed the best Lambda found so far by more than ``z * B1`` and its
    throughput cost stays below ``(1 + chi)`` times the best Phi.

    Attributes:
        z: delay-class slack factor (paper: 0.5).
        chi: throughput-class slack factor (paper: 0.2).
        b1: the fixed SLA penalty ``B1`` the slack is expressed in.
    """

    z: float
    chi: float
    b1: float

    def is_acceptable(self, cost: CostPair, best: CostPair) -> bool:
        """Whether ``cost`` qualifies relative to the current ``best``."""
        return (
            cost.lam <= best.lam + self.z * self.b1
            and cost.phi <= (1.0 + self.chi) * best.phi
        )


class CostSampleStore:
    """Per-arc failure-cost samples.

    Args:
        num_arcs: number of arcs tracked.
    """

    def __init__(self, num_arcs: int) -> None:
        if num_arcs < 1:
            raise ValueError("num_arcs must be positive")
        self._lam: list[list[float]] = [[] for _ in range(num_arcs)]
        self._phi: list[list[float]] = [[] for _ in range(num_arcs)]
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        """Number of arcs tracked."""
        return len(self._lam)

    @property
    def total_samples(self) -> int:
        """Total samples recorded across all arcs."""
        return self._total

    def add(self, arc: int, lam: float, phi: float) -> None:
        """Record one ``(Lambda, Phi)`` failure-cost sample for an arc."""
        self._lam[arc].append(float(lam))
        self._phi[arc].append(float(phi))
        self._total += 1

    def count(self, arc: int) -> int:
        """Number of samples recorded for one arc."""
        return len(self._lam[arc])

    def counts(self) -> np.ndarray:
        """Per-arc sample counts."""
        return np.asarray([len(s) for s in self._lam], dtype=np.int64)

    def lam_samples(self, arc: int) -> np.ndarray:
        """The Lambda samples of one arc."""
        return np.asarray(self._lam[arc], dtype=np.float64)

    def phi_samples(self, arc: int) -> np.ndarray:
        """The Phi samples of one arc."""
        return np.asarray(self._phi[arc], dtype=np.float64)

    # ------------------------------------------------------------------
    def least_sampled_arcs(self, k: int = 1) -> list[int]:
        """The ``k`` arcs with the fewest samples (ties by arc id)."""
        counts = self.counts()
        order = np.lexsort((np.arange(len(counts)), counts))
        return [int(a) for a in order[:k]]

    def has_min_samples(self, minimum: int) -> bool:
        """Whether every arc has at least ``minimum`` samples."""
        return bool(self.counts().min() >= minimum)


def left_tail_mean(samples: np.ndarray, fraction: float) -> float:
    """Mean of the smallest ``fraction`` of the samples.

    At least one sample is always included, so with few samples the tail
    mean degrades gracefully to the minimum.
    """
    if samples.size == 0:
        return 0.0
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    k = max(1, int(np.floor(fraction * samples.size)))
    smallest = np.partition(samples, k - 1)[:k]
    return float(smallest.mean())


def acceptability_rule(
    params: SamplingParams, b1: float
) -> AcceptabilityRule:
    """Build the acceptability test from sampling parameters."""
    return AcceptabilityRule(z=params.z, chi=params.chi, b1=b1)
