"""Supervision, retry and degradation policy for parallel sweeps.

:class:`~repro.core.parallel.ParallelDtrEvaluator` fans a sweep out to
a process pool as cheap ticket tasks.  Before this module, one
OOM-killed worker lost the whole sweep: futures had no timeout, a
``BrokenProcessPool`` propagated to the caller, and the shared-memory
payload could leak.  The :class:`SweepSupervisor` here wraps dispatch
so a sweep **always completes with results bit-identical to a
fault-free run**:

* Failures are classified (:func:`classify_failure`) as ``dead_pool``
  (the pool itself broke — worker SIGKILLed, interpreter died),
  ``timeout`` (a task exceeded its per-task deadline; the pool is
  treated as suspect and recycled), or ``task_error`` (the worker
  raised — possibly a poison task).
* Transient failures are retried with exponential backoff and
  deterministic jitter (:class:`RetryPolicy`), rebuilding the pool
  through the evaluator's existing warm-state machinery and
  re-dispatching **only the unfinished tickets**.
* A task that exhausts ``max_attempts`` is quarantined: its ticket is
  computed on the parent's serial in-process path, which shares no
  state with workers and is already pinned bit-identical to the
  parallel path.
* A sweep that exhausts its overall deadline degrades the whole
  remainder to serial and reports it.

Everything the supervisor does is counted in ``cache_stats``-style
:class:`ResilienceStats`, exposed per-evaluator
(``evaluator.resilience_stats``) and process-wide
(:func:`global_stats`, consumed by ``repro-exp``'s exit-code taxonomy
and the BENCH schema context).  Backoff sleeps draw jitter from a
generator seeded per supervised sweep, so retry schedules — like
everything else in this repo — are deterministic.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ExecutionParams

#: Failure classes (`classify_failure` return values).
FAILURE_DEAD_POOL = "dead_pool"
FAILURE_TIMEOUT = "timeout"
FAILURE_TASK_ERROR = "task_error"


def classify_failure(exc: BaseException) -> str:
    """Classify a task failure for the retry/degradation decision.

    ``dead_pool``: the executor is unusable (every in-flight task is
    charged an attempt and re-dispatched on a fresh pool).
    ``timeout``: the task outlived its per-task deadline (the pool may
    hold a wedged worker, so it is recycled too).
    ``task_error``: the worker raised; only the failing task retries.
    """
    if isinstance(exc, BrokenExecutor):
        return FAILURE_DEAD_POOL
    if isinstance(exc, (concurrent.futures.TimeoutError, TimeoutError)):
        return FAILURE_TIMEOUT
    return FAILURE_TASK_ERROR


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and deadlines for one supervised sweep.

    Attributes:
        max_retries: extra dispatch attempts per task beyond the first
            (0 disables retries: first failure quarantines).
        backoff: base backoff in seconds; attempt ``k`` sleeps
            ``backoff * 2**(k-1)`` scaled by jitter in ``[0.5, 1.0)``,
            capped at :attr:`max_backoff`.
        task_timeout: per-task deadline in seconds (None = no limit).
        sweep_deadline: whole-sweep deadline in seconds (None = no
            limit); once exhausted, the remainder runs serially.
        seed: seed for the jitter generator, so backoff schedules are
            reproducible.
    """

    max_retries: int = 2
    backoff: float = 0.05
    task_timeout: "float | None" = None
    sweep_deadline: "float | None" = None
    seed: int = 0
    max_backoff: float = 2.0

    @property
    def max_attempts(self) -> int:
        """Total dispatch attempts allowed per task (>= 1)."""
        return self.max_retries + 1

    @classmethod
    def from_execution(cls, execution: "ExecutionParams") -> "RetryPolicy":
        """Build the policy an evaluator should run under."""
        return cls(
            max_retries=execution.max_retries,
            backoff=execution.retry_backoff,
            task_timeout=execution.task_timeout,
            sweep_deadline=execution.sweep_deadline,
        )

    def backoff_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Deterministic-jitter backoff before dispatch ``attempt + 1``."""
        if self.backoff <= 0.0:
            return 0.0
        raw = self.backoff * (2.0 ** (attempt - 1))
        jitter = 0.5 + 0.5 * float(rng.random())
        return min(raw * jitter, self.max_backoff)


@dataclass(frozen=True)
class ResilienceStats:
    """Failure/retry/degradation counters (``cache_stats`` style).

    Attributes:
        worker_failures: tasks whose failure was classified
            ``dead_pool`` (a worker or the pool itself died).
        task_failures: tasks whose worker raised (``task_error``).
        timeouts: tasks that exceeded the per-task deadline.
        retries: re-dispatches after any failure class.
        pool_rebuilds: times the supervisor discarded and rebuilt the
            pool (dead or suspect).
        quarantined_tasks: tickets degraded to the serial path after
            exhausting ``max_attempts``.
        deadline_degraded_tasks: tickets degraded to the serial path
            because the sweep deadline ran out.
        host_failures: distributed hosts (``executor="hosts"``) that
            died or dropped their connection mid-sweep.
        host_respawns: dead hosts successfully respawned (``local:``
            mode) or reconnected (TCP mode) by pool recycling.
    """

    worker_failures: int = 0
    task_failures: int = 0
    timeouts: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    quarantined_tasks: int = 0
    deadline_degraded_tasks: int = 0
    host_failures: int = 0
    host_respawns: int = 0

    @property
    def total_failures(self) -> int:
        """All task-attempt failures, regardless of class."""
        return self.worker_failures + self.task_failures + self.timeouts

    @property
    def degraded(self) -> bool:
        """Whether any ticket fell back to the serial path."""
        return bool(self.quarantined_tasks or self.deadline_degraded_tasks)

    def __add__(self, other: "ResilienceStats") -> "ResilienceStats":
        return ResilienceStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> "dict[str, int]":
        """Plain-dict form for BENCH context / experiment metadata."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ResilienceCounters:
    """Mutable, thread-safe accumulator behind :class:`ResilienceStats`.

    Each evaluator owns one; increments mirror into the process-global
    accumulator (:func:`global_counters`) so ``repro-exp`` can report
    an exit-code taxonomy without plumbing every evaluator instance.
    """

    def __init__(self, mirror: "ResilienceCounters | None" = None):
        self._lock = threading.Lock()
        self._stats = ResilienceStats()
        self._mirror = mirror

    def record(self, **deltas: int) -> None:
        """Add the given counter deltas (field names of the stats)."""
        with self._lock:
            self._stats = self._stats + ResilienceStats(**deltas)
        if self._mirror is not None:
            self._mirror.record(**deltas)

    def snapshot(self) -> ResilienceStats:
        """Immutable copy of the current counters."""
        with self._lock:
            return self._stats

    def reset(self) -> None:
        """Zero the counters (does not touch the mirror)."""
        with self._lock:
            self._stats = ResilienceStats()


@dataclass(frozen=True)
class TransportStats:
    """Where a fan-out sweep's bytes and seconds went (``cache_stats``
    style).

    One instance summarizes a dispatch transport — the process pool's
    shm/pickle channel or the distributed host pool's TCP sockets — so
    ``BENCH_*.json`` context blocks can show payload amortization
    (publish-once bytes vs per-task ticket bytes) and worker/host busy
    time next to wall-clock.

    Attributes:
        publishes: publish-once payload shipments (shm sweep states, or
            per-host instance/scenario/setting epochs).
        payload_bytes: bytes of those publish-once payloads.
        tasks: tickets dispatched (every attempt counts — retries ship
            bytes too).
        task_bytes: bytes of ticket messages (the per-task cost once
            payloads are amortized).
        result_bytes: bytes of results shipped back.
        busy_seconds: summed worker/host compute time spent on tasks.
    """

    publishes: int = 0
    payload_bytes: int = 0
    tasks: int = 0
    task_bytes: int = 0
    result_bytes: int = 0
    busy_seconds: float = 0.0

    def __add__(self, other: "TransportStats") -> "TransportStats":
        return TransportStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> "dict[str, float]":
        """Plain-dict form for BENCH context / experiment metadata."""
        out: "dict[str, float]" = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = (
                round(value, 6) if isinstance(value, float) else value
            )
        return out

    @property
    def bytes_per_task(self) -> float:
        """Mean ticket bytes on the wire per dispatched task."""
        return self.task_bytes / self.tasks if self.tasks else 0.0


class TransportCounters:
    """Mutable, thread-safe accumulator behind :class:`TransportStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats = TransportStats()

    def record(self, **deltas: "int | float") -> None:
        """Add the given counter deltas (field names of the stats)."""
        with self._lock:
            self._stats = self._stats + TransportStats(**deltas)

    def snapshot(self) -> TransportStats:
        """Immutable copy of the current counters."""
        with self._lock:
            return self._stats

    def reset(self) -> None:
        """Zero the counters."""
        with self._lock:
            self._stats = TransportStats()


_GLOBAL = ResilienceCounters()


def global_counters() -> ResilienceCounters:
    """The process-wide accumulator evaluators mirror into."""
    return _GLOBAL


def global_stats() -> ResilienceStats:
    """Snapshot of all resilience events in this process."""
    return _GLOBAL.snapshot()


def reset_global_stats() -> None:
    """Zero the process-wide accumulator (start of a run)."""
    _GLOBAL.reset()


@dataclass
class SupervisedTask:
    """One re-dispatchable unit of a supervised sweep.

    Attributes:
        seq: deterministic task sequence number (fault plans and
            logs key on it).
        submit: ``submit(pool, attempt) -> Future`` dispatching the
            ticket on the given executor.
        fallback: computes the ticket on the parent's serial
            in-process path; must return a result bit-identical to a
            successful worker dispatch.
    """

    seq: int
    submit: "Callable[[Any, int], concurrent.futures.Future]"
    fallback: "Callable[[], Any]"


class SweepSupervisor:
    """Drives a set of tickets to completion despite worker failures.

    The supervisor owns no pool: it asks the evaluator for one
    (``ensure_pool``) and tells it to discard a dead or suspect one
    (``reset_pool``), so pool identity/warm-state semantics stay where
    they already live.  ``run`` returns results in task order and is
    deterministic in everything except wall-clock (retry schedules
    draw jitter from a seeded generator).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        counters: ResilienceCounters,
        ensure_pool: "Callable[[], Any]",
        reset_pool: "Callable[[], None]",
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
    ):
        self._policy = policy
        self._counters = counters
        self._ensure_pool = ensure_pool
        self._reset_pool = reset_pool
        self._clock = clock
        self._sleep = sleep
        self._rng = np.random.default_rng(policy.seed)

    # ------------------------------------------------------------------
    def run(self, tasks: "Sequence[SupervisedTask]") -> "list[Any]":
        """Complete every task, returning results in task order."""
        policy = self._policy
        results: "list[Any]" = [None] * len(tasks)
        done = [False] * len(tasks)
        attempts = [0] * len(tasks)
        start = self._clock()

        def deadline_left() -> "float | None":
            if policy.sweep_deadline is None:
                return None
            return policy.sweep_deadline - (self._clock() - start)

        def serial_remainder(indices: "list[int]", reason: str) -> None:
            for i in indices:
                if done[i]:
                    continue
                results[i] = tasks[i].fallback()
                done[i] = True
                self._counters.record(**{reason: 1})

        pending = list(range(len(tasks)))
        while pending:
            remaining = deadline_left()
            if remaining is not None and remaining <= 0.0:
                serial_remainder(pending, "deadline_degraded_tasks")
                break

            # Dispatch one round of every pending ticket.  A submit
            # failing with BrokenExecutor means the pool died between
            # rounds; the round proceeds with whatever got in flight.
            try:
                pool = self._ensure_pool()
            except BrokenExecutor:
                self._reset_pool()
                self._counters.record(pool_rebuilds=1)
                continue
            in_flight: "list[tuple[int, concurrent.futures.Future]]" = []
            pool_dead = False
            for i in pending:
                next_attempt = attempts[i] + 1
                try:
                    future = tasks[i].submit(pool, next_attempt)
                except BrokenExecutor:
                    pool_dead = True
                    break
                attempts[i] = next_attempt
                if next_attempt > 1:
                    self._counters.record(retries=1)
                in_flight.append((i, future))

            retry: "list[int]" = []
            for i, future in in_flight:
                remaining = deadline_left()
                timeout = policy.task_timeout
                if remaining is not None:
                    timeout = (
                        remaining
                        if timeout is None
                        else min(timeout, remaining)
                    )
                try:
                    results[i] = future.result(timeout=timeout)
                    done[i] = True
                    continue
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - classified below
                    kind = classify_failure(exc)

                if kind == FAILURE_TIMEOUT and (
                    remaining is not None and remaining <= 0.0
                ):
                    # The *sweep* deadline ran out mid-wait, not the
                    # task's own budget: degrade everything unfinished.
                    self._reset_pool()
                    self._counters.record(pool_rebuilds=1)
                    serial_remainder(pending, "deadline_degraded_tasks")
                    return results

                if kind == FAILURE_DEAD_POOL:
                    self._counters.record(worker_failures=1)
                    pool_dead = True
                elif kind == FAILURE_TIMEOUT:
                    self._counters.record(timeouts=1)
                    # A wedged worker may still hold the pool hostage;
                    # recycle it before the next round.
                    pool_dead = True
                else:
                    self._counters.record(task_failures=1)

                if attempts[i] >= policy.max_attempts:
                    results[i] = tasks[i].fallback()
                    done[i] = True
                    self._counters.record(quarantined_tasks=1)
                else:
                    retry.append(i)

            pending = [i for i in pending if not done[i]]
            if pool_dead:
                self._reset_pool()
                self._counters.record(pool_rebuilds=1)
            if retry and policy.backoff > 0.0:
                self._sleep(
                    policy.backoff_seconds(max(attempts[i] for i in retry), self._rng)
                )
        return results
