"""Critical-link selection: Algorithm 1 of the paper (Section IV-D2).

Given the normalized per-class criticalities, links are sorted into two
descending lists ``E_Lambda`` and ``E_Phi``.  Keeping only the top-``m``
of a list leaves an expected normalized optimization error equal to the
sum of the truncated tail.  Algorithm 1 starts from both full lists and
repeatedly shrinks whichever list would lose *less* error by dropping its
last element, until the union of the two list heads reaches the target
size ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.criticality import CriticalityEstimate, descending_ranking


@dataclass(frozen=True)
class CriticalSelection:
    """Outcome of the critical-link selection.

    Attributes:
        critical_arcs: the selected arc ids, ascending.
        kept_lam: how many arcs of the delay-class list were kept (n1).
        kept_phi: how many arcs of the throughput-class list were kept (n2).
        residual_error_lam: normalized error left out of the delay list.
        residual_error_phi: normalized error left out of the tput list.
    """

    critical_arcs: tuple[int, ...]
    kept_lam: int
    kept_phi: int
    residual_error_lam: float
    residual_error_phi: float

    def __len__(self) -> int:
        return len(self.critical_arcs)


def tail_error(sorted_values: np.ndarray) -> np.ndarray:
    """``err[m] = sum of sorted_values[m:]`` for every head size ``m``.

    ``sorted_values`` must already be in descending criticality order;
    the output has length ``len(values) + 1`` with ``err[len] = 0``.
    """
    reversed_cumsum = np.concatenate(
        ([0.0], np.cumsum(sorted_values[::-1]))
    )[::-1]
    return reversed_cumsum


def select_critical_links(
    estimate: CriticalityEstimate, target_size: int
) -> CriticalSelection:
    """Run Algorithm 1.

    Args:
        estimate: criticality estimates for every arc.
        target_size: desired ``|Ec|``; the result may be smaller when the
            two list heads overlap heavily (the loop stops at the first
            union of size at most the target... the union shrinks by at
            most one per step, so the result has size <= target and the
            largest achievable size not exceeding it).

    Returns:
        The selected arcs plus diagnostics.
    """
    n = estimate.num_arcs
    if not 1 <= target_size <= n:
        raise ValueError("target_size must lie in [1, num_arcs]")

    rho_lam = estimate.normalized_lam
    rho_phi = estimate.normalized_phi
    order_lam = descending_ranking(rho_lam)
    order_phi = descending_ranking(rho_phi)
    sorted_lam = rho_lam[order_lam]
    sorted_phi = rho_phi[order_phi]
    err_lam = tail_error(sorted_lam)
    err_phi = tail_error(sorted_phi)

    n1 = n
    n2 = n

    def union_size(k1: int, k2: int) -> int:
        if k1 == 0:
            return k2
        if k2 == 0:
            return k1
        head = set(order_lam[:k1].tolist())
        head.update(order_phi[:k2].tolist())
        return len(head)

    while union_size(n1, n2) > target_size and (n1 > 0 or n2 > 0):
        # Shrinking the Lambda list to n1-1 leaves error err_lam[n1-1];
        # keep the list whose shrink would hurt more.
        shrink_lam_error = err_lam[n1 - 1] if n1 > 0 else np.inf
        shrink_phi_error = err_phi[n2 - 1] if n2 > 0 else np.inf
        if n2 > 0 and shrink_lam_error >= shrink_phi_error:
            n2 -= 1
        elif n1 > 0:
            n1 -= 1
        else:
            break

    selected: set[int] = set(order_lam[:n1].tolist())
    selected.update(order_phi[:n2].tolist())
    return CriticalSelection(
        critical_arcs=tuple(sorted(int(a) for a in selected)),
        kept_lam=n1,
        kept_phi=n2,
        residual_error_lam=float(err_lam[n1]),
        residual_error_phi=float(err_phi[n2]),
    )
