"""DTR weight settings: two integer weights per arc (Section III).

``W := union over arcs of {W_l^D, W_l^T}`` — one weight per arc per
traffic class, forming two logical topologies over the shared physical
network.  The local search mutates settings in place and copies on
acceptance, so the class is deliberately a thin mutable wrapper around two
int64 arrays.
"""

from __future__ import annotations

import numpy as np

from repro.config import WeightParams


class WeightSetting:
    """One DTR weight assignment.

    Attributes:
        delay: per-arc weights ``W^D`` for the delay-sensitive topology.
        tput: per-arc weights ``W^T`` for the throughput-sensitive one.
    """

    __slots__ = ("delay", "tput")

    def __init__(self, delay: np.ndarray, tput: np.ndarray) -> None:
        delay = np.asarray(delay, dtype=np.int64)
        tput = np.asarray(tput, dtype=np.int64)
        if delay.shape != tput.shape or delay.ndim != 1:
            raise ValueError("weight arrays must be 1-D and equally sized")
        if np.any(delay < 1) or np.any(tput < 1):
            raise ValueError("weights must be >= 1")
        self.delay = delay
        self.tput = tput

    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        """Number of arcs covered by this setting."""
        return self.delay.shape[0]

    @classmethod
    def uniform(cls, num_arcs: int, value: int = 1) -> "WeightSetting":
        """All-equal weights (hop-count routing) for both classes."""
        return cls(
            np.full(num_arcs, value, dtype=np.int64),
            np.full(num_arcs, value, dtype=np.int64),
        )

    @classmethod
    def random(
        cls,
        num_arcs: int,
        params: WeightParams,
        rng: np.random.Generator,
    ) -> "WeightSetting":
        """Uniformly random weights in ``[w_min, w_max]`` for both classes."""
        return cls(
            rng.integers(params.w_min, params.w_max + 1, size=num_arcs),
            rng.integers(params.w_min, params.w_max + 1, size=num_arcs),
        )

    def copy(self) -> "WeightSetting":
        """An independent copy (arrays are duplicated)."""
        return WeightSetting(self.delay.copy(), self.tput.copy())

    # ------------------------------------------------------------------
    def arc_pair(self, arc: int) -> tuple[int, int]:
        """The ``(W^D, W^T)`` pair of one arc."""
        return int(self.delay[arc]), int(self.tput[arc])

    def set_arc(self, arc: int, w_delay: int, w_tput: int) -> None:
        """Assign both class weights of one arc (in place)."""
        if w_delay < 1 or w_tput < 1:
            raise ValueError("weights must be >= 1")
        self.delay[arc] = w_delay
        self.tput[arc] = w_tput

    def emulates_failure(self, arc: int, params: WeightParams) -> bool:
        """Whether both class weights of ``arc`` are failure-like.

        Section IV-D1 records a cost sample for arc ``l`` when both of its
        perturbed weights land in ``[q * w_max, w_max]``.
        """
        floor = params.failure_emulation_floor
        return (
            self.delay[arc] >= floor
            and self.tput[arc] >= floor
            and self.delay[arc] <= params.w_max
            and self.tput[arc] <= params.w_max
        )

    def fail_arc_weights(
        self, arc: int, params: WeightParams, rng: np.random.Generator
    ) -> None:
        """Set both weights of ``arc`` to random failure-like values."""
        floor = params.failure_emulation_floor
        self.delay[arc] = int(rng.integers(floor, params.w_max + 1))
        self.tput[arc] = int(rng.integers(floor, params.w_max + 1))

    # ------------------------------------------------------------------
    def key(self) -> tuple[bytes, bytes]:
        """Hashable snapshot for deduplicating recorded settings."""
        return (self.delay.tobytes(), self.tput.tobytes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightSetting):
            return NotImplemented
        return bool(
            np.array_equal(self.delay, other.delay)
            and np.array_equal(self.tput, other.tput)
        )

    def __repr__(self) -> str:
        return f"WeightSetting(num_arcs={self.num_arcs})"
