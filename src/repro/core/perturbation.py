"""Weight-perturbation moves for the local searches of Phases 1 and 2.

Phase 1 follows the paper: "both weights (one for each traffic class) on
each link are randomly perturbed".  Phase 2 additionally uses finer moves
that change a single class's weight on an arc, which helps it fine-tune
around the constraint surface of Eqs. (5)-(6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import WeightParams
from repro.core.weights import WeightSetting


@dataclass(frozen=True)
class Move:
    """One reversible weight change on a single arc.

    Attributes:
        arc: the arc whose weights change.
        new_delay: new delay-class weight.
        new_tput: new throughput-class weight.
        old_delay: previous delay-class weight (for revert).
        old_tput: previous throughput-class weight (for revert).
    """

    arc: int
    new_delay: int
    new_tput: int
    old_delay: int
    old_tput: int

    def apply(self, setting: WeightSetting) -> None:
        """Apply the move in place."""
        setting.set_arc(self.arc, self.new_delay, self.new_tput)

    def revert(self, setting: WeightSetting) -> None:
        """Undo the move in place."""
        setting.set_arc(self.arc, self.old_delay, self.old_tput)

    @property
    def changes_anything(self) -> bool:
        """Whether the move differs from the current weights."""
        return (
            self.new_delay != self.old_delay
            or self.new_tput != self.old_tput
        )

    @property
    def deltas(self) -> tuple[tuple[str, int, int, int], ...]:
        """Per-class single-arc deltas as ``(class_id, arc, old, new)``.

        The incremental-routing protocol: the evaluator applies these to
        its per-class routers on :meth:`~repro.core.evaluation.
        DtrEvaluator.evaluate_move` and plays them backwards on
        :meth:`~repro.core.evaluation.DtrEvaluator.revert_move`, so both
        directions cost O(affected destinations) instead of a re-route.
        Classes whose weight is unchanged are omitted.
        """
        out = []
        if self.new_delay != self.old_delay:
            out.append(("delay", self.arc, self.old_delay, self.new_delay))
        if self.new_tput != self.old_tput:
            out.append(("tput", self.arc, self.old_tput, self.new_tput))
        return tuple(out)


def random_pair_move(
    setting: WeightSetting,
    arc: int,
    params: WeightParams,
    rng: np.random.Generator,
) -> Move:
    """Phase-1 move: redraw both class weights of an arc uniformly."""
    old_delay, old_tput = setting.arc_pair(arc)
    return Move(
        arc=arc,
        new_delay=int(rng.integers(params.w_min, params.w_max + 1)),
        new_tput=int(rng.integers(params.w_min, params.w_max + 1)),
        old_delay=old_delay,
        old_tput=old_tput,
    )


def random_single_class_move(
    setting: WeightSetting,
    arc: int,
    params: WeightParams,
    rng: np.random.Generator,
) -> Move:
    """Phase-2 move: redraw the weight of one randomly chosen class."""
    old_delay, old_tput = setting.arc_pair(arc)
    new_weight = int(rng.integers(params.w_min, params.w_max + 1))
    if rng.integers(0, 2) == 0:
        return Move(arc, new_weight, old_tput, old_delay, old_tput)
    return Move(arc, old_delay, new_weight, old_delay, old_tput)


def random_phase2_move(
    setting: WeightSetting,
    arc: int,
    params: WeightParams,
    rng: np.random.Generator,
) -> Move:
    """Phase-2 move mix: mostly single-class, sometimes both."""
    if rng.random() < 0.25:
        return random_pair_move(setting, arc, params, rng)
    return random_single_class_move(setting, arc, params, rng)


def scramble_some_arcs(
    setting: WeightSetting,
    params: WeightParams,
    rng: np.random.Generator,
    fraction: float = 0.05,
) -> WeightSetting:
    """A copy of ``setting`` with a few arcs' weights redrawn.

    Phase-2 diversifications restart "close to" an acceptable setting;
    this produces such a nearby setting.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must lie in [0, 1]")
    result = setting.copy()
    count = max(1, round(fraction * setting.num_arcs))
    for arc in rng.choice(setting.num_arcs, size=count, replace=False):
        random_pair_move(result, int(arc), params, rng).apply(result)
    return result
