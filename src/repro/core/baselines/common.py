"""Shared plumbing for baselines that swap the critical-link selector.

Every alternative selector plugs into the same robust pipeline: Phase 1
supplies the regular optimum and the acceptable pool; the selector picks
``Ec``; Phase 2 optimizes over the failures touching ``Ec``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.evaluation import DtrEvaluator
from repro.core.phase1 import Phase1Result
from repro.core.phase2 import (
    Phase2Result,
    RobustConstraints,
    run_phase2,
)
from repro.routing.failures import FailureModel, single_failures


def optimize_with_critical_arcs(
    evaluator: DtrEvaluator,
    phase1: Phase1Result,
    critical_arcs: Sequence[int],
    rng: np.random.Generator,
    failure_model: FailureModel = FailureModel.LINK,
) -> Phase2Result:
    """Run Phase 2 against the failures touching an arbitrary arc set.

    Args:
        evaluator: the cost oracle.
        phase1: a completed Phase 1 (supplies optimum and starting pool).
        critical_arcs: the arc set standing in for ``Ec``.
        rng: random generator.
        failure_model: failure enumeration granularity.

    Returns:
        The Phase 2 result for this selector.
    """
    failures = single_failures(
        evaluator.network, failure_model
    ).restricted_to_arcs(critical_arcs)
    if len(failures) == 0:
        raise ValueError("critical arc set touches no failure scenario")
    constraints = RobustConstraints(
        lam_star=phase1.best_cost.lam,
        phi_star=phase1.best_cost.phi,
        chi=evaluator.config.sampling.chi,
    )
    return run_phase2(evaluator, failures, phase1.pool, constraints, rng)
