"""Baselines the paper compares against (Sections II, IV-C, V-F).

* :mod:`regular` — performance-only routing (Phase 1 alone, "NR").
* :mod:`full_search` — robust optimization with ``Ec = E`` (brute force).
* :mod:`random_selection` — Yuan '03: random critical links.
* :mod:`load_based` — Fortz '03: highest-utilization links are critical.
* :mod:`fluctuation_based` — Sridharan '05: links whose emulated-failure
  costs cross good/bad thresholds are critical.
* :mod:`node_failure` — robust optimization targeting node failures.
"""

from repro.core.baselines.fluctuation_based import (
    fluctuation_critical_arcs,
)
from repro.core.baselines.full_search import full_search_optimize
from repro.core.baselines.load_based import load_based_critical_arcs
from repro.core.baselines.node_failure import node_failure_optimize
from repro.core.baselines.random_selection import random_critical_arcs
from repro.core.baselines.regular import regular_optimize
from repro.core.baselines.common import optimize_with_critical_arcs

__all__ = [
    "fluctuation_critical_arcs",
    "full_search_optimize",
    "load_based_critical_arcs",
    "node_failure_optimize",
    "optimize_with_critical_arcs",
    "random_critical_arcs",
    "regular_optimize",
]
