"""Robust optimization targeting single *node* failures (Section V-F).

The paper compares its link-failure-robust routing against a routing
explicitly optimized for node failures, computed with "an essentially
exhaustive heuristic, which is computationally feasible ... because of
the smaller (linear) number of failure patterns": Phase 2 over all
single-node scenarios, no critical-set restriction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.evaluation import DtrEvaluator
from repro.core.phase1 import Phase1Result
from repro.core.phase2 import (
    Phase2Result,
    RobustConstraints,
    run_phase2,
)
from repro.routing.failures import single_node_failures


def node_failure_optimize(
    evaluator: DtrEvaluator,
    phase1: Phase1Result,
    rng: np.random.Generator,
    nodes: Sequence[int] | None = None,
) -> Phase2Result:
    """Run Phase 2 against all (or the given) single node failures."""
    failures = single_node_failures(evaluator.network, nodes)
    constraints = RobustConstraints(
        lam_star=phase1.best_cost.lam,
        phi_star=phase1.best_cost.phi,
        chi=evaluator.config.sampling.chi,
    )
    return run_phase2(evaluator, failures, phase1.pool, constraints, rng)
