"""Threshold-crossing critical-link selection (Sridharan '05 [23]).

[23] defines critical links as those whose network costs "vary wildly"
across failure-emulating weight settings, operationalized with two
thresholds bounding regions of good and bad performance: a link is the
more critical the more its samples fall on *both* sides.  The paper
(Section IV-C) reports that fixed thresholds do not transfer to DTR's
wider cost ranges; this implementation keeps the scheme faithful —
global quantile thresholds over the delay-class samples — so experiments
can exhibit exactly that failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling import CostSampleStore


def fluctuation_critical_arcs(
    store: CostSampleStore,
    target_size: int,
    good_quantile: float = 0.25,
    bad_quantile: float = 0.75,
) -> tuple[int, ...]:
    """Arcs ranked by how often their samples land in both cost regions.

    Args:
        store: the Phase-1 failure-cost samples.
        target_size: desired ``|Ec|``.
        good_quantile: global quantile defining the good region.
        bad_quantile: global quantile defining the bad region.

    Returns:
        The ``target_size`` arcs with the highest fluctuation score,
        where the score is ``min(#good, #bad)`` — samples on both sides
        are what marks a link as weight-selection-sensitive.
    """
    if not 0 < good_quantile < bad_quantile < 1:
        raise ValueError("need 0 < good_quantile < bad_quantile < 1")
    num_arcs = store.num_arcs
    if not 1 <= target_size <= num_arcs:
        raise ValueError("target_size must lie in [1, num_arcs]")

    pooled = np.concatenate(
        [store.lam_samples(a) for a in range(num_arcs)]
        or [np.zeros(0)]
    )
    if pooled.size == 0:
        return tuple(range(target_size))
    good = float(np.quantile(pooled, good_quantile))
    bad = float(np.quantile(pooled, bad_quantile))

    scores = np.zeros(num_arcs)
    for arc in range(num_arcs):
        samples = store.lam_samples(arc)
        if samples.size == 0:
            continue
        scores[arc] = min(
            int((samples <= good).sum()), int((samples >= bad).sum())
        )
    order = np.lexsort((np.arange(num_arcs), -scores))
    return tuple(sorted(int(a) for a in order[:target_size]))
