"""Full search: robust optimization with ``Ec = E`` (Section IV-E).

The brute-force comparator for the critical-link approach: Phase 2
evaluates *every* single failure for every candidate, making it the
accuracy gold standard (``beta_full``) at maximal computational cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import DtrEvaluator
from repro.core.phase1 import Phase1Result
from repro.core.phase2 import (
    Phase2Result,
    RobustConstraints,
    run_phase2,
)
from repro.routing.failures import FailureModel, single_failures


def full_search_optimize(
    evaluator: DtrEvaluator,
    phase1: Phase1Result,
    rng: np.random.Generator,
    failure_model: FailureModel = FailureModel.LINK,
) -> Phase2Result:
    """Run Phase 2 over the complete single-failure set."""
    failures = single_failures(evaluator.network, failure_model)
    constraints = RobustConstraints(
        lam_star=phase1.best_cost.lam,
        phi_star=phase1.best_cost.phi,
        chi=evaluator.config.sampling.chi,
    )
    return run_phase2(evaluator, failures, phase1.pool, constraints, rng)
