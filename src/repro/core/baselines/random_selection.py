"""Random critical-link selection (Yuan '03 [24], discussed in IV-C).

The earliest critical-link scheme simply samples the critical set
uniformly at random.  The paper reports that DTR's enormous solution
space makes this impractical; reproducing it quantifies that gap.
"""

from __future__ import annotations

import numpy as np

from repro.routing.network import Network


def random_critical_arcs(
    network: Network, target_size: int, rng: np.random.Generator
) -> tuple[int, ...]:
    """Uniformly random arc subset of the requested size."""
    if not 1 <= target_size <= network.num_arcs:
        raise ValueError("target_size must lie in [1, num_arcs]")
    chosen = rng.choice(network.num_arcs, size=target_size, replace=False)
    return tuple(sorted(int(a) for a in chosen))
