"""Regular (performance-only) optimization — the paper's "No Robust" arm.

Runs Phase 1 alone: the weight setting minimizes ``K_normal`` and is
oblivious to failures.  Every robustness table compares against this.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import DtrEvaluator
from repro.core.phase1 import Phase1Result, run_phase1


def regular_optimize(
    evaluator: DtrEvaluator, rng: np.random.Generator
) -> Phase1Result:
    """Optimize for normal conditions only.

    Sample collection still runs (it is nearly free and keeps the result
    reusable as the first half of a robust optimization), but nothing
    downstream of Phase 1 executes.
    """
    return run_phase1(evaluator, rng)
