"""Load-based critical-link selection (Fortz '03 [10], discussed in IV-C).

Links are ranked by their impact on network utilization: the most-loaded
links under the regular-optimal routing are deemed critical.  The paper
notes this breaks down under DTR because load is not the dominant metric
for the delay class.
"""

from __future__ import annotations

from repro.core.evaluation import DtrEvaluator
from repro.core.weights import WeightSetting

import numpy as np


def load_based_critical_arcs(
    evaluator: DtrEvaluator,
    setting: WeightSetting,
    target_size: int,
) -> tuple[int, ...]:
    """The ``target_size`` arcs with the highest utilization.

    Args:
        evaluator: the cost oracle.
        setting: the routing whose loads define criticality (use the
            Phase 1 optimum).
        target_size: desired ``|Ec|``.
    """
    num_arcs = evaluator.network.num_arcs
    if not 1 <= target_size <= num_arcs:
        raise ValueError("target_size must lie in [1, num_arcs]")
    outcome = evaluator.evaluate_normal(setting)
    order = np.lexsort(
        (np.arange(num_arcs), -outcome.utilization)
    )
    return tuple(sorted(int(a) for a in order[:target_size]))
