"""Fortz–Thorup congestion cost for throughput-sensitive traffic.

The paper reuses "the load-based cost function f(x_l) of [8]" — the
classic piecewise-linear, convex link cost whose slope escalates as
utilization crosses 1/3, 2/3, 9/10, 1 and 11/10.  The overall cost
``Phi`` sums ``f(x_l)`` over the links carrying throughput-sensitive
traffic, evaluated on the *total* load (classes share the queue).

Costs are expressed in "capacity-normalized" form: a slope of 1 means one
cost unit per unit of ``x_l / C_l``.  This keeps magnitudes comparable
across capacities and matches Fortz–Thorup's normalized plots.
"""

from __future__ import annotations

import numpy as np

#: Utilization breakpoints of the Fortz–Thorup link cost.
FORTZ_BREAKPOINTS: tuple[float, ...] = (0.0, 1 / 3, 2 / 3, 0.9, 1.0, 1.1)

#: Slopes on the successive segments (cost units per unit utilization).
FORTZ_SLOPES: tuple[float, ...] = (1.0, 3.0, 10.0, 70.0, 500.0, 5000.0)


def _segment_offsets() -> np.ndarray:
    """Cost value at each breakpoint, making the function continuous."""
    offsets = [0.0]
    for i in range(1, len(FORTZ_BREAKPOINTS)):
        span = FORTZ_BREAKPOINTS[i] - FORTZ_BREAKPOINTS[i - 1]
        offsets.append(offsets[-1] + FORTZ_SLOPES[i - 1] * span)
    return np.asarray(offsets)


_OFFSETS = _segment_offsets()
_BREAKS = np.asarray(FORTZ_BREAKPOINTS)
_SLOPES = np.asarray(FORTZ_SLOPES)


def fortz_link_cost(utilization: np.ndarray) -> np.ndarray:
    """Per-arc Fortz–Thorup cost ``f`` as a function of utilization.

    Piecewise linear, increasing and convex; vectorized over arcs.
    Negative utilizations are invalid.
    """
    rho = np.asarray(utilization, dtype=np.float64)
    if np.any(rho < 0):
        raise ValueError("utilization must be non-negative")
    seg = np.searchsorted(_BREAKS, rho, side="right") - 1
    seg = np.clip(seg, 0, len(_SLOPES) - 1)
    return _OFFSETS[seg] + _SLOPES[seg] * (rho - _BREAKS[seg])


def fortz_cost(
    total_loads: np.ndarray,
    capacity: np.ndarray,
    include: np.ndarray | None = None,
) -> float:
    """Network congestion cost ``Phi``.

    Args:
        total_loads: per-arc load ``x_l`` across both classes (bits/s).
        capacity: per-arc capacity (bits/s).
        include: optional boolean mask restricting the sum to the links
            carrying throughput-sensitive traffic (the paper's set ``L``);
            default sums over all arcs.

    Returns:
        The scalar cost ``Phi``.
    """
    loads = np.asarray(total_loads, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    if loads.shape != capacity.shape:
        raise ValueError("loads and capacity shapes must match")
    per_arc = fortz_link_cost(loads / capacity)
    if include is not None:
        per_arc = per_arc[np.asarray(include, dtype=bool)]
    return float(per_arc.sum())


def uncongested_bound(
    total_loads: np.ndarray,
    capacity: np.ndarray,
    include: np.ndarray | None = None,
) -> float:
    """Slope-1 lower bound on ``Phi`` for the same loads.

    Useful as a normalization constant when plotting cost series: the
    bound is what ``Phi`` would be if every link stayed in the cheapest
    segment.
    """
    loads = np.asarray(total_loads, dtype=np.float64)
    rho = loads / np.asarray(capacity, dtype=np.float64)
    if include is not None:
        rho = rho[np.asarray(include, dtype=bool)]
    return float(rho.sum())
