"""Phase 2: robust optimization over a scenario set (Section IV-A).

Starting from the acceptable weight settings recorded in Phase 1, Phase 2
locally searches for the setting minimizing the compounded scenario cost
``K_fail = <Lambda_fail, Phi_fail>`` (Eq. 4 — or Eq. 7 when the failure
set is restricted to critical links), subject to the normal-condition
constraints of Eqs. (5)-(6): the delay cost must stay at ``Lambda*`` and
the throughput cost within ``(1 + chi) Phi*``.

The search is scenario-agnostic: it accepts any
:class:`~repro.scenarios.ScenarioSet` — the paper's single-link set, an
SRLG or regional family, traffic surges, failure×surge cross products —
as well as a legacy :class:`~repro.routing.failures.FailureSet` (the two
are bit-identical through the evaluator's unwrapping path).

Candidate evaluation is the hot path: the normal-scenario constraint
check runs first (one evaluation, through the evaluator's incremental
:meth:`~repro.core.evaluation.DtrEvaluator.evaluate_move` fast path)
and the per-scenario failure sweep is abandoned as soon as its partial
lexicographic cost can no longer beat the incumbent (costs only grow as
scenarios accumulate).  Rejected moves restore the evaluator's
incremental router state via
:meth:`~repro.core.evaluation.DtrEvaluator.revert_move` in O(affected
destinations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import OptimizerConfig
from repro.core.checkpoint import CheckpointManager
from repro.core.evaluation import (
    DtrEvaluator,
    ScenarioCosts,
    ScenarioEvaluation,
)
from repro.core.lexicographic import (
    LAMBDA_TOLERANCE,
    CostPair,
    relative_improvement,
)
from repro.core.local_search import (
    DiversificationController,
    RecordedSetting,
    SearchStats,
)
from repro.core.perturbation import random_phase2_move, scramble_some_arcs
from repro.core.weights import WeightSetting
from repro.routing.failures import FailureSet
from repro.scenarios.scenario import ScenarioSet


@dataclass(frozen=True)
class RobustConstraints:
    """The Eq. (5)-(6) constraints binding Phase 2 to Phase 1's optimum.

    Attributes:
        lam_star: best failure-free delay cost ``Lambda*_normal``.
        phi_star: best failure-free throughput cost ``Phi*_normal``.
        chi: allowed relative degradation of the throughput cost.
    """

    lam_star: float
    phi_star: float
    chi: float

    def satisfied_by(self, normal_cost: CostPair) -> bool:
        """Whether a failure-free cost meets both constraints."""
        return (
            normal_cost.lam <= self.lam_star + LAMBDA_TOLERANCE
            and normal_cost.phi <= (1.0 + self.chi) * self.phi_star
        )


def bounded_failure_cost(
    evaluator: DtrEvaluator,
    setting: WeightSetting,
    failures: "ScenarioSet | FailureSet | list",
    bound: CostPair | None,
    stats: SearchStats | None = None,
    reuse: "ScenarioEvaluation | None" = None,
) -> CostPair | None:
    """``K_fail`` of a setting, or None once it provably exceeds ``bound``.

    Scenario costs are non-negative, so the partial sum is a lexicographic
    lower bound on the final cost; as soon as it exceeds the incumbent the
    sweep is pruned.  Passing the scenarios sorted by expected cost
    (highest first) makes the pruning bite earliest; passing ``reuse``
    (the setting's normal-scenario evaluation) enables the
    unchanged-routing shortcut.
    """
    lam = 0.0
    phi = 0.0
    for scenario in failures:
        outcome = evaluator.evaluate(setting, scenario, reuse=reuse)
        if stats is not None:
            stats.evaluations += 1
        lam += outcome.cost.lam
        phi += outcome.cost.phi
        if bound is not None and CostPair(lam, phi) > bound:
            if stats is not None:
                stats.pruned_evaluations += 1
            return None
    return CostPair(lam, phi)


def _ordered_sweep(
    evaluator: DtrEvaluator,
    setting: WeightSetting,
    failures: "ScenarioSet | FailureSet",
    stats: SearchStats,
    reuse: "ScenarioEvaluation | None" = None,
) -> tuple[list, CostPair]:
    """Full failure sweep returning scenarios sorted worst-first.

    The ordering front-loads the expensive scenarios of the *incumbent*,
    which is the best available predictor of where a candidate's partial
    cost will exceed the bound.  The sweep goes through
    ``evaluator.evaluate_scenario_costs`` — the costs-only sweep
    contract: only per-scenario scalars come back (parallel workers fold
    locally instead of shipping arrays), and repeat sweeps of the same
    (setting, scenario set) are answered by the evaluator's sweep memo
    without re-dispatching.  Per-candidate *bounded* sweeps stay serial
    because the lexicographic pruning is inherently sequential.
    """
    if reuse is None:
        reuse = evaluator.evaluate_normal(setting)
        stats.evaluations += 1
    evaluation = evaluator.evaluate_scenario_costs(
        setting, failures, reuse=reuse
    )
    stats.evaluations += len(evaluation)
    costs = []
    lam = 0.0
    phi = 0.0
    for scenario, outcome in zip(failures, evaluation.evaluations):
        costs.append((outcome.cost.lam, outcome.cost.phi, scenario))
        lam += outcome.cost.lam
        phi += outcome.cost.phi
    costs.sort(key=lambda item: (-item[0], -item[1]))
    return [scenario for _, _, scenario in costs], CostPair(lam, phi)


@dataclass(frozen=True)
class Phase2Result:
    """Outcome of the robust search.

    Attributes:
        best_setting: the robust weight setting.
        best_kfail: its compounded failure cost over the search's
            failure set.
        normal_cost: its failure-free cost (satisfies the constraints).
        failure_evaluation: full per-scenario evaluation of the best
            setting over the search's scenario set.
        constraints: the constraints the search enforced.
        stats: search counters.
    """

    best_setting: WeightSetting
    best_kfail: CostPair
    normal_cost: CostPair
    failure_evaluation: ScenarioCosts
    constraints: RobustConstraints
    stats: SearchStats


def run_phase2(
    evaluator: DtrEvaluator,
    failures: "ScenarioSet | FailureSet",
    starts: tuple[RecordedSetting, ...],
    constraints: RobustConstraints,
    rng: np.random.Generator,
    manager: "CheckpointManager | None" = None,
    context: "dict | None" = None,
    restore: "dict | None" = None,
) -> Phase2Result:
    """Run the robust local search.

    Args:
        evaluator: the cost oracle.
        failures: scenarios defining ``K_fail``: all single link
            failures for the paper's full search, the critical subset
            otherwise, or any composed ScenarioSet (SRLGs, regional
            failures, traffic surges, cross products).
        starts: acceptable settings from Phase 1, best first; must be
            non-empty.
        constraints: the Eq. (5)-(6) constraints.
        rng: random generator.
        manager: checkpoint at the top of every outer iteration.
        context: extra payload merged into every checkpoint (the
            optimizer stores its Phase 1 result here so a Phase 2
            checkpoint is self-contained).
        restore: a ``"phase2"``-stage checkpoint payload to re-enter
            from; the resumed search is bit-identical to one that never
            stopped.

    Returns:
        The robust setting and its evaluations.
    """
    if not starts:
        raise ValueError("phase 2 needs at least one starting setting")
    if len(failures) == 0:
        raise ValueError("phase 2 needs at least one scenario")

    config: OptimizerConfig = evaluator.config
    wp = config.weights
    sp = config.search
    num_arcs = evaluator.network.num_arcs

    if restore is None:
        stats = SearchStats()
        current = starts[0].setting.copy()
        cur_normal_eval = evaluator.evaluate_normal(current)
        cur_normal = cur_normal_eval.cost
        stats.evaluations += 1
        ordered, cur_kfail = _ordered_sweep(
            evaluator, current, failures, stats, reuse=cur_normal_eval
        )
        best_setting = current.copy()
        best_kfail = cur_kfail

        controller = DiversificationController(
            interval=sp.phase2_diversification_interval,
            min_rounds=sp.phase2_diversifications,
            cutoff=sp.improvement_cutoff,
            cap_factor=sp.round_iteration_cap_factor,
        )
        round_start_cost = best_kfail
        next_start = 1
    else:
        if restore.get("stage") != "phase2":
            raise ValueError(
                f"cannot resume phase 2 from stage {restore.get('stage')!r}"
            )
        stats = restore["stats"]
        rng.bit_generator.state = restore["rng_state"]
        (
            current,
            cur_kfail,
            best_setting,
            best_kfail,
            controller,
            round_start_cost,
            next_start,
            ordered,
        ) = restore["loop"]
        # Recomputed, not stored (bit-identical by evaluator parity);
        # the checkpointed counters already account for it.
        cur_normal_eval = evaluator.evaluate_normal(current)
        cur_normal = cur_normal_eval.cost
    sweep = max(1, round(sp.arcs_per_iteration_fraction * num_arcs))

    while stats.iterations < sp.max_iterations:
        if manager is not None:
            manager.tick(
                "phase2",
                lambda: {
                    "stage": "phase2",
                    "rng_state": rng.bit_generator.state,
                    "stats": stats,
                    "loop": (
                        current,
                        cur_kfail,
                        best_setting,
                        best_kfail,
                        controller,
                        round_start_cost,
                        next_start,
                        ordered,
                    ),
                    **(context or {}),
                },
            )
        improved = False
        for arc in rng.permutation(num_arcs)[:sweep]:
            move = random_phase2_move(current, int(arc), wp, rng)
            if not move.changes_anything:
                continue
            move.apply(current)
            cand_normal_eval = evaluator.evaluate_move(
                current, move, reuse=cur_normal_eval
            )
            cand_normal = cand_normal_eval.cost
            stats.evaluations += 1
            if not constraints.satisfied_by(cand_normal):
                move.revert(current)
                evaluator.revert_move(current, move)
                continue
            cand_kfail = bounded_failure_cost(
                evaluator,
                current,
                ordered,
                cur_kfail,
                stats,
                reuse=cand_normal_eval,
            )
            if cand_kfail is not None and cand_kfail.is_better_than(
                cur_kfail
            ):
                cur_kfail = cand_kfail
                cur_normal = cand_normal
                cur_normal_eval = cand_normal_eval
                improved = True
                stats.accepted_moves += 1
                if cand_kfail.is_better_than(best_kfail):
                    best_kfail = cand_kfail
                    best_setting = current.copy()
            else:
                move.revert(current)
                evaluator.revert_move(current, move)
        stats.iterations += 1
        if controller.note_iteration(improved):
            controller.note_diversification(
                relative_improvement(round_start_cost, best_kfail)
            )
            stats.diversifications += 1
            if controller.should_stop():
                break
            round_start_cost = best_kfail
            (
                current,
                cur_normal_eval,
                ordered,
                cur_kfail,
            ) = _diversified_start(
                evaluator, failures, starts, constraints, rng, next_start,
                stats,
            )
            cur_normal = cur_normal_eval.cost
            next_start += 1

    normal_cost = evaluator.evaluate_normal(best_setting).cost
    failure_evaluation = evaluator.evaluate_scenarios(best_setting, failures)
    return Phase2Result(
        best_setting=best_setting,
        best_kfail=failure_evaluation.total_cost,
        normal_cost=normal_cost,
        failure_evaluation=failure_evaluation,
        constraints=constraints,
        stats=stats,
    )


def _diversified_start(
    evaluator: DtrEvaluator,
    failures: "ScenarioSet | FailureSet",
    starts: tuple[RecordedSetting, ...],
    constraints: RobustConstraints,
    rng: np.random.Generator,
    round_index: int,
    stats: SearchStats,
) -> tuple[WeightSetting, "ScenarioEvaluation", list, CostPair]:
    """Next diversification start: a pool setting, lightly scrambled.

    The scramble is kept only when it still satisfies the constraints
    (Phase 2 rounds must start from feasible points).
    """
    base = starts[round_index % len(starts)]
    candidate = scramble_some_arcs(
        base.setting, evaluator.config.weights, rng
    )
    normal_eval = evaluator.evaluate_normal(candidate)
    stats.evaluations += 1
    if not constraints.satisfied_by(normal_eval.cost):
        candidate = base.setting.copy()
        normal_eval = evaluator.evaluate_normal(candidate)
        stats.evaluations += 1
    ordered, kfail = _ordered_sweep(
        evaluator, candidate, failures, stats, reuse=normal_eval
    )
    return candidate, normal_eval, ordered, kfail
