"""Lexicographic global cost ``K = <Lambda, Phi>`` (Section III).

Delay-sensitive traffic takes precedence: ``K1 > K2`` iff
``Lambda1 > Lambda2``, or ``Lambda1 == Lambda2`` and ``Phi1 > Phi2``.
Comparisons use small tolerances so floating-point noise in the routing
evaluation cannot flip an ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Absolute tolerance when comparing Lambda values (penalty units).
LAMBDA_TOLERANCE = 1e-6

#: Relative tolerance when comparing Phi values.
PHI_RELATIVE_TOLERANCE = 1e-9


@dataclass(frozen=True, order=False)
class CostPair:
    """One global cost value ``<Lambda, Phi>``.

    Attributes:
        lam: delay-class SLA penalty ``Lambda``.
        phi: throughput-class congestion cost ``Phi``.
    """

    lam: float
    phi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lam) or math.isnan(self.phi):
            raise ValueError("cost components must not be NaN")

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def lam_equals(self, other: "CostPair") -> bool:
        """Whether the Lambda components are equal up to tolerance."""
        return abs(self.lam - other.lam) <= LAMBDA_TOLERANCE

    def phi_equals(self, other: "CostPair") -> bool:
        """Whether the Phi components are equal up to tolerance."""
        scale = max(abs(self.phi), abs(other.phi), 1.0)
        return abs(self.phi - other.phi) <= PHI_RELATIVE_TOLERANCE * scale

    def __lt__(self, other: "CostPair") -> bool:
        if not self.lam_equals(other):
            return self.lam < other.lam
        if not self.phi_equals(other):
            return self.phi < other.phi
        return False

    def __le__(self, other: "CostPair") -> bool:
        return not other < self

    def __gt__(self, other: "CostPair") -> bool:
        return other < self

    def __ge__(self, other: "CostPair") -> bool:
        return not self < other

    def is_better_than(self, other: "CostPair") -> bool:
        """Strictly better (lower) in the lexicographic order."""
        return self < other

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "CostPair") -> "CostPair":
        return CostPair(self.lam + other.lam, self.phi + other.phi)

    @classmethod
    def zero(cls) -> "CostPair":
        """The additive identity."""
        return cls(0.0, 0.0)

    @classmethod
    def total(cls, costs: list["CostPair"]) -> "CostPair":
        """Component-wise sum of a list of costs."""
        return cls(
            sum(c.lam for c in costs),
            sum(c.phi for c in costs),
        )

    def __repr__(self) -> str:
        return f"CostPair(lam={self.lam:.6g}, phi={self.phi:.6g})"


def relative_improvement(before: CostPair, after: CostPair) -> float:
    """Relative cost reduction achieved by moving from ``before`` to ``after``.

    The search's stopping rule compares this against the cutoff ``c``.
    Improvement is measured on the dominant component: on Lambda when it
    changed, otherwise on Phi.  Non-improvements return 0.
    """
    if after.is_better_than(before):
        if not before.lam_equals(after):
            base = max(abs(before.lam), LAMBDA_TOLERANCE)
            return (before.lam - after.lam) / base
        base = max(abs(before.phi), PHI_RELATIVE_TOLERANCE)
        return (before.phi - after.phi) / base
    return 0.0
