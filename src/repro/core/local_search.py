"""Shared local-search scaffolding for Phases 1 and 2.

Both phases run the same outer scheme: sweep random arcs, accept
improving weight perturbations, diversify (restart) after an interval of
non-improving iterations, and stop once enough consecutive
diversification rounds fail to improve the global best by the relative
cutoff ``c`` (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lexicographic import CostPair
from repro.core.weights import WeightSetting


@dataclass
class SearchStats:
    """Bookkeeping counters of one search run.

    Attributes:
        iterations: arc sweeps performed.
        evaluations: candidate cost evaluations (constraint checks count).
        accepted_moves: moves that improved the current cost.
        diversifications: restart rounds completed.
        samples_recorded: failure-like cost samples recorded (Phase 1).
        pruned_evaluations: failure evaluations cut short by the
            lexicographic bound (Phase 2).
    """

    iterations: int = 0
    evaluations: int = 0
    accepted_moves: int = 0
    diversifications: int = 0
    samples_recorded: int = 0
    pruned_evaluations: int = 0


class DiversificationController:
    """Implements the paper's stop rule.

    A diversification round ends after ``interval`` consecutive
    non-improving iterations.  The search stops once ``min_rounds``
    consecutive completed rounds each improved the global best by less
    than ``cutoff`` (relative, on the dominant cost component).

    A round is also forcibly ended after ``interval * cap_factor``
    iterations even if tiny improvements keep arriving — without the cap,
    landscapes with long gentle Phi slopes would never let a round end.

    Args:
        interval: non-improving iterations per round.
        min_rounds: the paper's ``P1`` / ``P2``.
        cutoff: the relative improvement threshold ``c``.
        cap_factor: round-length cap as a multiple of ``interval``.
    """

    def __init__(
        self,
        interval: int,
        min_rounds: int,
        cutoff: float,
        cap_factor: int = 10,
    ) -> None:
        if interval < 1 or min_rounds < 1 or cap_factor < 1:
            raise ValueError("interval, min_rounds, cap_factor must be >= 1")
        if cutoff < 0:
            raise ValueError("cutoff must be non-negative")
        self._interval = interval
        self._min_rounds = min_rounds
        self._cutoff = cutoff
        self._round_cap = interval * cap_factor
        self._no_improve = 0
        self._round_iterations = 0
        self._quiet_rounds = 0
        self._rounds = 0

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Completed diversification rounds."""
        return self._rounds

    def note_iteration(self, improved: bool) -> bool:
        """Record one iteration; True when it is time to diversify."""
        self._round_iterations += 1
        if self._round_iterations >= self._round_cap:
            return True
        if improved:
            self._no_improve = 0
            return False
        self._no_improve += 1
        return self._no_improve >= self._interval

    def note_diversification(self, round_improvement: float) -> None:
        """Record a completed round and its relative best-cost improvement."""
        self._rounds += 1
        self._no_improve = 0
        self._round_iterations = 0
        if round_improvement < self._cutoff:
            self._quiet_rounds += 1
        else:
            self._quiet_rounds = 0

    def should_stop(self) -> bool:
        """Whether ``min_rounds`` consecutive quiet rounds have occurred."""
        return self._quiet_rounds >= self._min_rounds


@dataclass(frozen=True)
class RecordedSetting:
    """An acceptable weight setting kept as a Phase-2 starting point.

    Attributes:
        setting: the weight setting (private copy).
        cost: its failure-free cost ``K_normal``.
    """

    setting: WeightSetting
    cost: CostPair


class AcceptablePool:
    """Weight settings satisfying Eqs. (5)-(6) relative to the best cost.

    The pool keeps up to ``capacity`` settings whose normal-scenario cost
    has the same Lambda as the best found so far and a Phi within
    ``(1 + chi)`` of the best Phi.  When the best improves, entries that
    no longer qualify are evicted.

    Args:
        chi: the throughput slack of Eq. (6).
        capacity: maximum number of retained settings.
    """

    def __init__(self, chi: float, capacity: int) -> None:
        if chi < 0:
            raise ValueError("chi must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._chi = chi
        self._capacity = capacity
        self._entries: list[RecordedSetting] = []
        self._keys: set[tuple[bytes, bytes]] = set()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def qualifies(self, cost: CostPair, best: CostPair) -> bool:
        """Eq. (5)-(6) test of a normal-scenario cost against the best."""
        same_lam = CostPair(cost.lam, 0.0).lam_equals(CostPair(best.lam, 0.0))
        return same_lam and cost.phi <= (1.0 + self._chi) * best.phi

    def offer(
        self, setting: WeightSetting, cost: CostPair, best: CostPair
    ) -> bool:
        """Store a copy of ``setting`` if it qualifies; True if stored."""
        if not self.qualifies(cost, best):
            return False
        key = setting.key()
        if key in self._keys:
            return False
        self._entries.append(RecordedSetting(setting.copy(), cost))
        self._keys.add(key)
        self._entries.sort(key=lambda r: (r.cost.lam, r.cost.phi))
        if len(self._entries) > self._capacity:
            evicted = self._entries.pop()
            self._keys.discard(evicted.setting.key())
        return True

    def rebase(self, best: CostPair) -> None:
        """Evict entries that stopped qualifying after a new best cost."""
        kept = [r for r in self._entries if self.qualifies(r.cost, best)]
        self._entries = kept
        self._keys = {r.setting.key() for r in kept}

    def best_first(self) -> list[RecordedSetting]:
        """Entries ordered best-cost-first."""
        return list(self._entries)

    def is_empty(self) -> bool:
        """Whether the pool holds no setting."""
        return not self._entries
