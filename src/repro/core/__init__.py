"""Core contribution: the robust DTR optimizer and its cost model."""

from repro.core.criticality import CriticalityEstimate, estimate_criticality
from repro.core.delay import arc_delays, queueing_delay_at
from repro.core.evaluation import (
    DtrEvaluator,
    FailureEvaluation,
    ScenarioCosts,
    ScenarioEvaluation,
)
from repro.core.faults import (
    FaultInjected,
    FaultPlan,
    StageFault,
    TaskDelay,
    WorkerKill,
)
from repro.core.fortz import fortz_cost, fortz_link_cost
from repro.core.lexicographic import CostPair, relative_improvement
from repro.core.optimizer import RobustDtrOptimizer, RobustRoutingResult
from repro.core.parallel import (
    CacheStats,
    CachingDtrEvaluator,
    ParallelDtrEvaluator,
    RoutingCache,
    make_evaluator,
)
from repro.core.phase1 import Phase1Result, run_phase1
from repro.core.resilience import (
    ResilienceStats,
    RetryPolicy,
    global_stats,
    reset_global_stats,
)
from repro.core.phase2 import (
    Phase2Result,
    RobustConstraints,
    bounded_failure_cost,
    run_phase2,
)
from repro.core.sampling import CostSampleStore
from repro.core.selection import CriticalSelection, select_critical_links
from repro.core.sla import SlaOutcome, sla_outcome
from repro.core.weights import WeightSetting

__all__ = [
    "CacheStats",
    "CachingDtrEvaluator",
    "CostPair",
    "CostSampleStore",
    "CriticalSelection",
    "CriticalityEstimate",
    "DtrEvaluator",
    "FailureEvaluation",
    "FaultInjected",
    "FaultPlan",
    "ParallelDtrEvaluator",
    "ResilienceStats",
    "RetryPolicy",
    "RoutingCache",
    "Phase1Result",
    "Phase2Result",
    "RobustConstraints",
    "StageFault",
    "TaskDelay",
    "WorkerKill",
    "RobustDtrOptimizer",
    "RobustRoutingResult",
    "ScenarioCosts",
    "ScenarioEvaluation",
    "SlaOutcome",
    "WeightSetting",
    "arc_delays",
    "bounded_failure_cost",
    "estimate_criticality",
    "fortz_cost",
    "fortz_link_cost",
    "global_stats",
    "make_evaluator",
    "reset_global_stats",
    "queueing_delay_at",
    "relative_improvement",
    "run_phase1",
    "run_phase2",
    "select_critical_links",
    "sla_outcome",
]
