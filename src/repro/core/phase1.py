"""Phase 1: regular optimization plus critical-link identification.

Candidate moves are evaluated through the evaluator's incremental
:meth:`~repro.core.evaluation.DtrEvaluator.evaluate_move` fast path
(single-arc delta-rerouting); rejected moves restore the router state
with :meth:`~repro.core.evaluation.DtrEvaluator.revert_move`.

Phase 1a (Section IV-A) locally searches for the best failure-free DTR
weight setting while opportunistically recording failure-cost samples:
whenever a perturbation starting from an acceptable setting pushes both
class weights of an arc into the failure-emulation band, the resulting
cost is one sample of that arc's failure-cost distribution.

Phase 1b (Section IV-D1) tops up samples until the criticality *rankings*
of both classes stabilize (gamma-weighted rank-change index at most
``e``).

Phase 1c (Section IV-D2) turns samples into criticalities (Eqs. 8-9),
normalizes them, and runs Algorithm 1 to pick the critical set ``Ec``.

Checkpointing: both search loops call the optional
:class:`~repro.core.checkpoint.CheckpointManager` at the top of every
outer iteration (a *boundary*: the search state is exactly the loop
locals plus the RNG state).  A restored payload re-enters the loop with
those locals and the RNG state; the incumbent's reuse evaluation is
recomputed (bit-identical by evaluator parity), so an interrupted and
resumed Phase 1 produces bit-identical results to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import OptimizerConfig
from repro.core.checkpoint import CheckpointManager
from repro.core.convergence import RankConvergenceTracker
from repro.core.criticality import CriticalityEstimate, estimate_criticality
from repro.core.evaluation import DtrEvaluator, ScenarioEvaluation
from repro.core.lexicographic import CostPair, relative_improvement
from repro.core.local_search import (
    AcceptablePool,
    DiversificationController,
    RecordedSetting,
    SearchStats,
)
from repro.core.perturbation import Move, random_pair_move
from repro.core.sampling import (
    AcceptabilityRule,
    CostSampleStore,
    acceptability_rule,
)
from repro.core.selection import CriticalSelection, select_critical_links
from repro.core.weights import WeightSetting


#: Phase-1b draw/evaluate batch size.  A constant (not ``n_jobs``) so the
#: sampling trajectory — and therefore every seeded experiment table — is
#: identical for every worker count.
_SAMPLE_BATCH = 8


class SampleCollector:
    """Records failure-like perturbation costs and tracks rank convergence.

    Args:
        config: optimizer configuration (sampling + weight parameters).
        num_arcs: arcs in the network.
    """

    def __init__(self, config: OptimizerConfig, num_arcs: int) -> None:
        self._config = config
        self._store = CostSampleStore(num_arcs)
        self._rule: AcceptabilityRule = acceptability_rule(
            config.sampling, config.sla.b1
        )
        self._tracker = RankConvergenceTracker(
            config.sampling.rank_convergence_threshold
        )
        self._update_every = config.sampling.tau * num_arcs
        self._next_update = self._update_every

    # ------------------------------------------------------------------
    @property
    def store(self) -> CostSampleStore:
        """The collected samples."""
        return self._store

    @property
    def tracker(self) -> RankConvergenceTracker:
        """The rank-convergence tracker."""
        return self._tracker

    @property
    def rule(self) -> AcceptabilityRule:
        """The relaxed acceptability rule for pre-perturbation costs."""
        return self._rule

    def observe_move(
        self,
        move: Move,
        pre_cost: CostPair,
        post_cost: CostPair,
        best_cost: CostPair,
    ) -> bool:
        """Record a sample if the move emulates a failure; True if recorded."""
        floor = self._config.weights.failure_emulation_floor
        w_max = self._config.weights.w_max
        failure_like = (
            floor <= move.new_delay <= w_max
            and floor <= move.new_tput <= w_max
        )
        if not failure_like:
            return False
        if not self._rule.is_acceptable(pre_cost, best_cost):
            return False
        self.record(move.arc, post_cost)
        return True

    def record(self, arc: int, cost: CostPair) -> None:
        """Unconditionally record a failure-cost sample for an arc."""
        self._store.add(arc, cost.lam, cost.phi)
        if self._store.total_samples >= self._next_update:
            self._next_update += self._update_every
            self._tracker.update(
                estimate_criticality(self._store, self._config.sampling)
            )

    def force_update(self) -> None:
        """Refresh the tracker immediately (used at phase boundaries)."""
        self._tracker.update(
            estimate_criticality(self._store, self._config.sampling)
        )

    @property
    def needs_more_samples(self) -> bool:
        """Whether Phase 1b should (continue to) run."""
        if not self._store.has_min_samples(
            self._config.sampling.min_samples_per_link
        ):
            return True
        return not self._tracker.converged


@dataclass(frozen=True)
class Phase1Result:
    """Everything Phase 1 hands to Phase 2 and to the experiments.

    Attributes:
        best_setting: the regular-optimization weight setting.
        best_cost: its failure-free cost (``Lambda*``, ``Phi*``).
        best_evaluation: full evaluation of the best setting.
        pool: acceptable settings recorded as Phase-2 starting points
            (always contains the best setting).
        store: the failure-cost samples.
        estimate: per-arc criticality estimates.
        selection: the chosen critical set ``Ec``.
        stats: search counters.
        extra_samples: samples generated by Phase 1b.
        rank_converged: whether the rank test converged (False means the
            Phase 1b sample cap was hit first).
    """

    best_setting: WeightSetting
    best_cost: CostPair
    best_evaluation: ScenarioEvaluation
    pool: tuple[RecordedSetting, ...]
    store: CostSampleStore
    estimate: CriticalityEstimate
    selection: CriticalSelection
    stats: SearchStats
    extra_samples: int
    rank_converged: bool

    @property
    def critical_arcs(self) -> tuple[int, ...]:
        """The critical arc set ``Ec``."""
        return self.selection.critical_arcs


def run_phase1a(
    evaluator: DtrEvaluator,
    rng: np.random.Generator,
    collector: SampleCollector | None,
    stats: SearchStats,
    manager: "CheckpointManager | None" = None,
    restore: "dict | None" = None,
) -> tuple[WeightSetting, CostPair, AcceptablePool]:
    """The Phase 1a local search (regular optimization).

    Returns the best setting found, its cost, and the acceptable pool.
    ``manager`` checkpoints at the top of every outer iteration;
    ``restore`` (a previously checkpointed loop payload) re-enters the
    loop exactly where the snapshot was taken.
    """
    config = evaluator.config
    wp = config.weights
    sp = config.search
    num_arcs = evaluator.network.num_arcs

    if restore is None:
        current = WeightSetting.random(num_arcs, wp, rng)
        cur_eval = evaluator.evaluate_normal(current)
        cur_cost = cur_eval.cost
        stats.evaluations += 1
        best_setting = current.copy()
        best_cost = cur_cost

        pool = AcceptablePool(
            chi=config.sampling.chi,
            capacity=config.keep_acceptable_settings,
        )
        pool.offer(current, cur_cost, best_cost)

        controller = DiversificationController(
            interval=sp.phase1_diversification_interval,
            min_rounds=sp.phase1_diversifications,
            cutoff=sp.improvement_cutoff,
            cap_factor=sp.round_iteration_cap_factor,
        )
        round_start_cost = best_cost
    else:
        (
            current,
            cur_cost,
            best_setting,
            best_cost,
            pool,
            controller,
            round_start_cost,
        ) = restore["loop"]
        # The reuse hint is recomputed, not stored: re-evaluation is
        # bit-identical (evaluator parity), and the checkpoint stays
        # lean.  The counters already include this evaluation.
        cur_eval = evaluator.evaluate_normal(current)
    sweep = max(1, round(sp.arcs_per_iteration_fraction * num_arcs))

    while stats.iterations < sp.max_iterations:
        if manager is not None:
            manager.tick(
                "phase1a",
                lambda: {
                    "stage": "phase1a",
                    "rng_state": rng.bit_generator.state,
                    "stats": stats,
                    "collector": collector,
                    "loop": (
                        current,
                        cur_cost,
                        best_setting,
                        best_cost,
                        pool,
                        controller,
                        round_start_cost,
                    ),
                },
            )
        improved = False
        for arc in rng.permutation(num_arcs)[:sweep]:
            move = random_pair_move(current, int(arc), wp, rng)
            if not move.changes_anything:
                continue
            move.apply(current)
            cand_eval = evaluator.evaluate_move(current, move, reuse=cur_eval)
            cand_cost = cand_eval.cost
            stats.evaluations += 1
            if collector is not None and collector.observe_move(
                move, cur_cost, cand_cost, best_cost
            ):
                stats.samples_recorded += 1
            if cand_cost.is_better_than(cur_cost):
                cur_eval = cand_eval
                cur_cost = cand_cost
                improved = True
                stats.accepted_moves += 1
                if cand_cost.is_better_than(best_cost):
                    best_cost = cand_cost
                    best_setting = current.copy()
                    pool.rebase(best_cost)
                pool.offer(current, cand_cost, best_cost)
            else:
                move.revert(current)
                evaluator.revert_move(current, move)
        stats.iterations += 1
        if controller.note_iteration(improved):
            controller.note_diversification(
                relative_improvement(round_start_cost, best_cost)
            )
            stats.diversifications += 1
            if controller.should_stop():
                break
            round_start_cost = best_cost
            current = WeightSetting.random(num_arcs, wp, rng)
            cur_eval = evaluator.evaluate_normal(current)
            cur_cost = cur_eval.cost
            stats.evaluations += 1

    pool.rebase(best_cost)
    pool.offer(best_setting, best_cost, best_cost)
    return best_setting, best_cost, pool


def run_phase1b(
    evaluator: DtrEvaluator,
    rng: np.random.Generator,
    collector: SampleCollector,
    pool: AcceptablePool,
    best_setting: WeightSetting,
    stats: SearchStats,
    best_cost: "CostPair | None" = None,
    manager: "CheckpointManager | None" = None,
    restored_extra: "int | None" = None,
) -> int:
    """Generate extra failure-like samples until ranks converge.

    Bases are drawn from the acceptable pool (falling back to the best
    setting), the least-sampled arc gets its weights pushed into the
    failure band, and the resulting cost is recorded.  Returns the number
    of extra samples generated.

    Candidates are drawn and evaluated in fixed-size batches so a
    parallel evaluator can fan each batch across its workers.  The batch
    size is a *constant*, deliberately independent of ``n_jobs``: the
    draw sequence (which arcs get sampled, against which least-sampled
    ranking) must not depend on the worker count, or seeded experiment
    results would differ between ``--jobs`` settings.  Within one batch
    the least-sampled ranking is not refreshed between draws — the store
    updates once per recorded batch.

    ``manager`` checkpoints at the top of every batch (the boundary
    state is the collector, the pool and the sample counter);
    ``restored_extra`` re-enters mid-phase with that counter.
    ``best_cost`` only rides along into checkpoint payloads so a resume
    landing in Phase 1b can rebuild the Phase 1 result.
    """
    config = evaluator.config
    wp = config.weights
    cap = config.sampling.max_extra_samples
    bases = [r.setting for r in pool.best_first()] or [best_setting]
    extra = restored_extra or 0
    candidates_per_draw = 8
    while collector.needs_more_samples and extra < cap:
        if manager is not None:
            manager.tick(
                "phase1b",
                lambda: {
                    "stage": "phase1b",
                    "rng_state": rng.bit_generator.state,
                    "stats": stats,
                    "collector": collector,
                    "pool": pool,
                    "best_setting": best_setting,
                    "best_cost": best_cost,
                    "extra": extra,
                },
            )
        draws: list[tuple[int, WeightSetting]] = []
        for _ in range(min(_SAMPLE_BATCH, cap - extra)):
            base = bases[int(rng.integers(0, len(bases)))]
            starved = collector.store.least_sampled_arcs(
                candidates_per_draw
            )
            arc = starved[int(rng.integers(0, len(starved)))]
            candidate = base.copy()
            candidate.fail_arc_weights(arc, wp, rng)
            draws.append((arc, candidate))
        outcomes = evaluator.evaluate_normal_batch(
            [candidate for _, candidate in draws]
        )
        for (arc, _), outcome in zip(draws, outcomes):
            stats.evaluations += 1
            collector.record(arc, outcome.cost)
            stats.samples_recorded += 1
            extra += 1
    return extra


def run_phase1(
    evaluator: DtrEvaluator,
    rng: np.random.Generator,
    critical_fraction: float | None = None,
    manager: "CheckpointManager | None" = None,
    restore: "dict | None" = None,
) -> Phase1Result:
    """Run Phases 1a-1c and return the full Phase 1 result.

    ``manager`` enables periodic/signal checkpoints; ``restore`` (a
    checkpoint payload whose stage is ``"phase1a"`` or ``"phase1b"``)
    resumes mid-phase with bit-identical downstream results.
    """
    config = evaluator.config
    num_arcs = evaluator.network.num_arcs
    stage = restore.get("stage") if restore else None
    if stage is None:
        stats = SearchStats()
        collector = SampleCollector(config, num_arcs)
    else:
        if stage not in ("phase1a", "phase1b"):
            raise ValueError(f"cannot resume phase 1 from stage {stage!r}")
        stats = restore["stats"]
        collector = restore["collector"]
        rng.bit_generator.state = restore["rng_state"]

    if stage in (None, "phase1a"):
        best_setting, best_cost, pool = run_phase1a(
            evaluator,
            rng,
            collector,
            stats,
            manager=manager,
            restore=restore if stage == "phase1a" else None,
        )
        restored_extra = None
    else:
        best_setting = restore["best_setting"]
        best_cost = restore["best_cost"]
        pool = restore["pool"]
        restored_extra = restore["extra"]
    extra = run_phase1b(
        evaluator,
        rng,
        collector,
        pool,
        best_setting,
        stats,
        best_cost=best_cost,
        manager=manager,
        restored_extra=restored_extra,
    )

    estimate = estimate_criticality(collector.store, config.sampling)
    fraction = (
        config.critical_fraction
        if critical_fraction is None
        else critical_fraction
    )
    target = max(1, round(fraction * num_arcs))
    selection = select_critical_links(estimate, target)

    return Phase1Result(
        best_setting=best_setting,
        best_cost=best_cost,
        best_evaluation=evaluator.evaluate_normal(best_setting),
        pool=tuple(pool.best_first()),
        store=collector.store,
        estimate=estimate,
        selection=selection,
        stats=stats,
        extra_samples=extra,
        rank_converged=collector.tracker.converged,
    )
