"""Link criticality (Eqs. 8-9) and its normalization (Section IV-D2).

The criticality of arc ``l`` for a traffic class is the gap between the
mean and the left-tail (smallest 10 %) mean of its failure-cost
distribution: how much better an optimizer that *knows* about the arc can
expect to do versus one that is oblivious to it.  Normalizing by the sum
of all left-tail means (a lower-bound estimate of the achievable total
failure cost) yields the relative deviations that Algorithm 1 trades off
between the two classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SamplingParams
from repro.core.sampling import CostSampleStore, left_tail_mean


@dataclass(frozen=True)
class CriticalityEstimate:
    """Per-arc criticality for both traffic classes.

    Attributes:
        rho_lam: raw delay-class criticality ``rho_Lambda,l`` (Eq. 8).
        rho_phi: raw throughput-class criticality ``rho_Phi,l`` (Eq. 9).
        tail_lam: per-arc left-tail means ``Lambda~_fail,l``.
        tail_phi: per-arc left-tail means ``Phi~_fail,l``.
        sample_counts: per-arc sample counts backing the estimate.
    """

    rho_lam: np.ndarray
    rho_phi: np.ndarray
    tail_lam: np.ndarray
    tail_phi: np.ndarray
    sample_counts: np.ndarray

    @property
    def num_arcs(self) -> int:
        """Number of arcs covered."""
        return self.rho_lam.shape[0]

    @property
    def normalized_lam(self) -> np.ndarray:
        """``rho_Lambda,l / sum_j Lambda~_fail,j`` (zero-safe)."""
        return _normalize(self.rho_lam, float(self.tail_lam.sum()))

    @property
    def normalized_phi(self) -> np.ndarray:
        """``rho_Phi,l / sum_j Phi~_fail,j`` (zero-safe)."""
        return _normalize(self.rho_phi, float(self.tail_phi.sum()))

    def ranking_lam(self) -> np.ndarray:
        """Arc ids sorted by descending delay-class criticality."""
        return descending_ranking(self.rho_lam)

    def ranking_phi(self) -> np.ndarray:
        """Arc ids sorted by descending throughput-class criticality."""
        return descending_ranking(self.rho_phi)


def _normalize(rho: np.ndarray, denominator: float) -> np.ndarray:
    """Divide by the tail-sum denominator, mapping a zero sum to zeros.

    A zero denominator means no routing ever incurred that cost component
    under any sampled failure — every arc is then equally (un)critical
    for that class.
    """
    if denominator <= 0.0:
        return np.zeros_like(rho)
    return rho / denominator


def descending_ranking(values: np.ndarray) -> np.ndarray:
    """Indices sorted by descending value, ties broken by index.

    Deterministic tie-breaking keeps rank-convergence tracking stable when
    many arcs share a criticality of zero.
    """
    order = np.lexsort((np.arange(values.shape[0]), -values))
    return order


def estimate_criticality(
    store: CostSampleStore, params: SamplingParams
) -> CriticalityEstimate:
    """Compute Eqs. (8)-(9) from the collected samples.

    Arcs with no samples get zero criticality and zero tail means (they
    never appeared failure-like in an acceptable routing, so there is no
    evidence they matter).
    """
    n = store.num_arcs
    rho_lam = np.zeros(n)
    rho_phi = np.zeros(n)
    tail_lam = np.zeros(n)
    tail_phi = np.zeros(n)
    for arc in range(n):
        lam = store.lam_samples(arc)
        phi = store.phi_samples(arc)
        if lam.size == 0:
            continue
        t_lam = left_tail_mean(lam, params.left_tail_fraction)
        t_phi = left_tail_mean(phi, params.left_tail_fraction)
        tail_lam[arc] = t_lam
        tail_phi[arc] = t_phi
        rho_lam[arc] = float(lam.mean()) - t_lam
        rho_phi[arc] = float(phi.mean()) - t_phi
    return CriticalityEstimate(
        rho_lam=rho_lam,
        rho_phi=rho_phi,
        tail_lam=tail_lam,
        tail_phi=tail_phi,
        sample_counts=store.counts(),
    )
