"""Probabilistic failure model (the paper's Section VI extension).

"A probabilistic failure model can be formulated as part of a robust
optimization framework, and we believe that the critical link technique
developed in this paper can be extended to that model as well."

This module implements that extension:

* :class:`WeightedFailureSet` attaches a probability to every scenario;
* the robust objective becomes the *expected* failure cost
  ``K_fail = sum_l p_l <Lambda_fail,l, Phi_fail,l>``;
* criticality is weighted by scenario probability — a link whose failure
  is twice as likely is twice as costly to ignore — and Algorithm 1 then
  runs unchanged on the weighted values;
* :func:`probabilistic_robust_optimize` plugs the weighted objective
  into the Phase-2 search loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.criticality import CriticalityEstimate
from repro.core.evaluation import DtrEvaluator, ScenarioEvaluation
from repro.core.lexicographic import CostPair
from repro.core.local_search import (
    DiversificationController,
    RecordedSetting,
    SearchStats,
)
from repro.core.perturbation import random_phase2_move, scramble_some_arcs
from repro.core.phase2 import RobustConstraints
from repro.core.selection import CriticalSelection, select_critical_links
from repro.core.weights import WeightSetting
from repro.routing.failures import FailureScenario, FailureSet
from repro.routing.network import Network


@dataclass(frozen=True)
class WeightedFailureSet:
    """Failure scenarios with per-scenario probabilities.

    Attributes:
        scenarios: the failure scenarios.
        probabilities: matching probabilities (normalized to sum to 1).
    """

    scenarios: tuple[FailureScenario, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.scenarios) != len(self.probabilities):
            raise ValueError("one probability per scenario required")
        if not self.scenarios:
            raise ValueError("need at least one scenario")
        probs = np.asarray(self.probabilities, dtype=np.float64)
        if np.any(probs < 0) or probs.sum() <= 0:
            raise ValueError("probabilities must be non-negative, sum > 0")
        object.__setattr__(
            self,
            "probabilities",
            tuple(float(p) for p in probs / probs.sum()),
        )

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(zip(self.scenarios, self.probabilities))

    @classmethod
    def from_failure_set(
        cls, failures: FailureSet, probabilities: np.ndarray
    ) -> "WeightedFailureSet":
        """Attach probabilities to an existing failure set."""
        return cls(
            scenarios=tuple(failures.scenarios),
            probabilities=tuple(float(p) for p in probabilities),
        )

    def restricted_to_arcs(self, arc_ids) -> "WeightedFailureSet":
        """Scenarios touching the given arcs, with renormalized weights."""
        wanted = set(int(a) for a in arc_ids)
        kept = [
            (s, p)
            for s, p in zip(self.scenarios, self.probabilities)
            if wanted.intersection(s.failed_arcs)
        ]
        if not kept:
            raise ValueError("restriction removes every scenario")
        return WeightedFailureSet(
            scenarios=tuple(s for s, _ in kept),
            probabilities=tuple(p for _, p in kept),
        )


def length_proportional_probabilities(
    network: Network, failures: FailureSet
) -> np.ndarray:
    """Failure probabilities proportional to fiber length.

    Long-haul links see more backhoes: the standard availability model
    makes per-link failure probability proportional to span length,
    which we proxy with propagation delay.
    """
    lengths = np.asarray(
        [
            float(network.prop_delay[list(s.failed_arcs)].max())
            if s.failed_arcs
            else 0.0
            for s in failures
        ]
    )
    total = lengths.sum()
    if total <= 0:
        return np.full(len(failures), 1.0 / len(failures))
    return lengths / total


def uniform_probabilities(failures: FailureSet) -> np.ndarray:
    """The uniform failure distribution (the deterministic model)."""
    return np.full(len(failures), 1.0 / len(failures))


def expected_failure_cost(
    evaluator: DtrEvaluator,
    setting: WeightSetting,
    failures: WeightedFailureSet,
    reuse: ScenarioEvaluation | None = None,
) -> CostPair:
    """Expected cost ``sum_l p_l <Lambda_l, Phi_l>`` over the scenarios."""
    lam = 0.0
    phi = 0.0
    for scenario, probability in failures:
        outcome = evaluator.evaluate(setting, scenario, reuse=reuse)
        lam += probability * outcome.cost.lam
        phi += probability * outcome.cost.phi
    return CostPair(lam, phi)


def weighted_criticality(
    estimate: CriticalityEstimate,
    network: Network,
    failures: FailureSet,
    probabilities: np.ndarray,
) -> CriticalityEstimate:
    """Scale per-arc criticality by the arc's failure probability.

    Every arc inherits the probability of the (unique single-failure)
    scenario that fails it; arcs in no scenario keep weight zero.
    """
    arc_probability = np.zeros(estimate.num_arcs)
    for scenario, probability in zip(failures, probabilities):
        for arc in scenario.failed_arcs:
            arc_probability[arc] = probability
    scale = arc_probability * len(failures)  # 1.0 under uniform weights
    return CriticalityEstimate(
        rho_lam=estimate.rho_lam * scale,
        rho_phi=estimate.rho_phi * scale,
        tail_lam=estimate.tail_lam * scale,
        tail_phi=estimate.tail_phi * scale,
        sample_counts=estimate.sample_counts,
    )


def select_probabilistic_critical_links(
    estimate: CriticalityEstimate,
    network: Network,
    failures: FailureSet,
    probabilities: np.ndarray,
    target_size: int,
) -> CriticalSelection:
    """Algorithm 1 on probability-weighted criticalities."""
    weighted = weighted_criticality(
        estimate, network, failures, probabilities
    )
    return select_critical_links(weighted, target_size)


@dataclass(frozen=True)
class ProbabilisticRobustResult:
    """Outcome of the probabilistic robust search.

    Attributes:
        best_setting: the robust weight setting.
        expected_kfail: its expected failure cost over the search set.
        normal_cost: its failure-free cost.
        stats: search counters.
    """

    best_setting: WeightSetting
    expected_kfail: CostPair
    normal_cost: CostPair
    stats: SearchStats


def probabilistic_robust_optimize(
    evaluator: DtrEvaluator,
    failures: WeightedFailureSet,
    starts: tuple[RecordedSetting, ...],
    constraints: RobustConstraints,
    rng: np.random.Generator,
) -> ProbabilisticRobustResult:
    """Phase-2 local search minimizing the *expected* failure cost.

    Mirrors :func:`repro.core.phase2.run_phase2` with the weighted-sum
    objective (lexicographic pruning does not apply cleanly to weighted
    sums with reordering, so candidates are evaluated in full — the
    restriction to critical scenarios is what keeps this affordable).
    """
    if not starts:
        raise ValueError("need at least one starting setting")
    config = evaluator.config
    wp = config.weights
    sp = config.search
    num_arcs = evaluator.network.num_arcs
    stats = SearchStats()

    def objective(setting: WeightSetting, reuse=None) -> CostPair:
        stats.evaluations += len(failures)
        return expected_failure_cost(evaluator, setting, failures, reuse)

    current = starts[0].setting.copy()
    cur_kfail = objective(current)
    best_setting = current.copy()
    best_kfail = cur_kfail

    controller = DiversificationController(
        interval=sp.phase2_diversification_interval,
        min_rounds=sp.phase2_diversifications,
        cutoff=sp.improvement_cutoff,
        cap_factor=sp.round_iteration_cap_factor,
    )
    round_start = best_kfail
    sweep = max(1, round(sp.arcs_per_iteration_fraction * num_arcs))
    next_start = 1

    while stats.iterations < sp.max_iterations:
        improved = False
        for arc in rng.permutation(num_arcs)[:sweep]:
            move = random_phase2_move(current, int(arc), wp, rng)
            if not move.changes_anything:
                continue
            move.apply(current)
            normal = evaluator.evaluate_normal(current)
            stats.evaluations += 1
            if not constraints.satisfied_by(normal.cost):
                move.revert(current)
                continue
            cand = objective(current, reuse=normal)
            if cand.is_better_than(cur_kfail):
                cur_kfail = cand
                improved = True
                stats.accepted_moves += 1
                if cand.is_better_than(best_kfail):
                    best_kfail = cand
                    best_setting = current.copy()
            else:
                move.revert(current)
        stats.iterations += 1
        if controller.note_iteration(improved):
            from repro.core.lexicographic import relative_improvement

            controller.note_diversification(
                relative_improvement(round_start, best_kfail)
            )
            stats.diversifications += 1
            if controller.should_stop():
                break
            round_start = best_kfail
            base = starts[next_start % len(starts)]
            candidate = scramble_some_arcs(base.setting, wp, rng)
            normal = evaluator.evaluate_normal(candidate)
            stats.evaluations += 1
            if constraints.satisfied_by(normal.cost):
                current = candidate
            else:
                current = base.setting.copy()
            cur_kfail = objective(current)
            next_start += 1

    return ProbabilisticRobustResult(
        best_setting=best_setting,
        expected_kfail=best_kfail,
        normal_cost=evaluator.evaluate_normal(best_setting).cost,
        stats=stats,
    )
