"""Link delay model of Eq. (1).

Below the utilization threshold ``mu`` a link contributes only its
propagation delay (backbone queueing is negligible at low load, per [20]);
above it, an M/M/1 approximation of the average queueing delay is added:

    D_l = kappa / C_l * (x_l / (C_l - x_l) + 1) + p_l

The hyperbolic term is replaced by its tangent line beyond utilization
0.99 (paper footnote 3) so costs stay finite and continuous as
``x_l -> C_l`` and beyond (which transient failure re-routing can cause).
"""

from __future__ import annotations

import numpy as np

from repro.config import DelayModelParams


def mm1_term(utilization: np.ndarray, linearization: float) -> np.ndarray:
    """The ``rho / (1 - rho)`` factor with tangent-line continuation.

    Args:
        utilization: per-arc utilization ``rho`` (may exceed 1).
        linearization: utilization beyond which the tangent applies.

    Returns:
        ``rho / (1 - rho)`` for ``rho < linearization``; the first-order
        Taylor continuation ``g(c) + g'(c) (rho - c)`` beyond it, where
        ``c = linearization``.
    """
    rho = np.asarray(utilization, dtype=np.float64)
    c = linearization
    g_c = c / (1.0 - c)
    slope = 1.0 / (1.0 - c) ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        hyperbolic = rho / (1.0 - rho)
    return np.where(rho < c, hyperbolic, g_c + slope * (rho - c))


def arc_delays(
    total_loads: np.ndarray,
    capacity: np.ndarray,
    prop_delay: np.ndarray,
    params: DelayModelParams = DelayModelParams(),
) -> np.ndarray:
    """Per-arc delay ``D_l`` (seconds) under the given total loads.

    Args:
        total_loads: per-arc load ``x_l`` across both classes (bits/s).
        capacity: per-arc capacity ``C_l`` (bits/s).
        prop_delay: per-arc propagation delay ``p_l`` (seconds).
        params: delay-model constants (packet size, thresholds).

    Returns:
        Per-arc delay array; equals ``prop_delay`` wherever utilization is
        at most ``params.low_load_threshold``.
    """
    loads = np.asarray(total_loads, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    prop_delay = np.asarray(prop_delay, dtype=np.float64)
    if loads.shape != capacity.shape or loads.shape != prop_delay.shape:
        raise ValueError("loads, capacity and prop_delay shapes must match")
    utilization = loads / capacity
    queueing = (params.packet_size_bits / capacity) * (
        mm1_term(utilization, params.linearization_utilization) + 1.0
    )
    return np.where(
        utilization <= params.low_load_threshold,
        prop_delay,
        prop_delay + queueing,
    )


def queueing_delay_at(
    utilization: float,
    capacity: float,
    params: DelayModelParams = DelayModelParams(),
) -> float:
    """Queueing delay (seconds) a single link adds at a given utilization.

    Convenience scalar used in documentation and tests; e.g. at 95 % load
    on a 500 Mbps link with 1500-byte packets this is just under 0.5 ms,
    matching the paper's Section V-A3 sanity check.
    """
    if utilization <= params.low_load_threshold:
        return 0.0
    term = float(
        mm1_term(
            np.asarray([utilization]), params.linearization_utilization
        )[0]
    )
    return (params.packet_size_bits / capacity) * (term + 1.0)
