"""Multi-Topology Routing generalization (k classes; DTR is k = 2).

The paper's Section I positions DTR as "the most basic setting" of MTR;
this subpackage extends the cost model, criticality machinery and
two-phase optimizer to arbitrarily many prioritized traffic classes.
"""

from repro.mtr.classes import (
    CostModel,
    MtrClass,
    MtrInstance,
    dtr_instance,
)
from repro.mtr.cost_vector import CostVector, components_equal
from repro.mtr.criticality import (
    MtrCriticality,
    MtrSampleStore,
    MtrSelection,
    estimate_mtr_criticality,
    select_mtr_critical_links,
)
from repro.mtr.evaluation import (
    MtrEvaluation,
    MtrEvaluator,
    MtrFailureEvaluation,
)
from repro.mtr.optimizer import MtrConstraints, MtrOptimizer, MtrResult
from repro.mtr.weights import MtrWeightSetting

__all__ = [
    "CostModel",
    "CostVector",
    "MtrClass",
    "MtrConstraints",
    "MtrCriticality",
    "MtrEvaluation",
    "MtrEvaluator",
    "MtrFailureEvaluation",
    "MtrInstance",
    "MtrOptimizer",
    "MtrResult",
    "MtrSampleStore",
    "MtrSelection",
    "MtrWeightSetting",
    "components_equal",
    "dtr_instance",
    "estimate_mtr_criticality",
    "select_mtr_critical_links",
]
