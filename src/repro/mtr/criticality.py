"""k-class criticality estimation and critical-link selection.

Generalizes Eqs. (8)-(9) and Algorithm 1: each class contributes one
failure-cost sample stream per arc, one normalized criticality list, and
the selection loop shrinks, at each step, the list whose truncation
would leave the *smallest* residual error — exactly the paper's
two-list rule applied over ``k`` lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SamplingParams
from repro.core.criticality import descending_ranking
from repro.core.sampling import left_tail_mean
from repro.core.selection import tail_error
from repro.mtr.cost_vector import CostVector


class MtrSampleStore:
    """Per-arc, per-class failure-cost samples.

    Args:
        num_classes: number of traffic classes.
        num_arcs: number of arcs tracked.
    """

    def __init__(self, num_classes: int, num_arcs: int) -> None:
        if num_classes < 1 or num_arcs < 1:
            raise ValueError("need at least one class and one arc")
        self._samples: list[list[list[float]]] = [
            [[] for _ in range(num_arcs)] for _ in range(num_classes)
        ]
        self._num_arcs = num_arcs
        self._total = 0

    @property
    def num_classes(self) -> int:
        """Number of classes tracked."""
        return len(self._samples)

    @property
    def num_arcs(self) -> int:
        """Number of arcs tracked."""
        return self._num_arcs

    @property
    def total_samples(self) -> int:
        """Total recorded sample vectors."""
        return self._total

    def add(self, arc: int, cost: CostVector) -> None:
        """Record one cost vector as a sample for ``arc``."""
        if len(cost) != self.num_classes:
            raise ValueError("cost vector arity mismatch")
        for class_index, value in enumerate(cost.values):
            self._samples[class_index][arc].append(float(value))
        self._total += 1

    def samples(self, class_index: int, arc: int) -> np.ndarray:
        """The samples of one (class, arc)."""
        return np.asarray(
            self._samples[class_index][arc], dtype=np.float64
        )

    def counts(self) -> np.ndarray:
        """Per-arc sample counts (identical across classes)."""
        return np.asarray(
            [len(s) for s in self._samples[0]], dtype=np.int64
        )

    def least_sampled_arcs(self, k: int = 1) -> list[int]:
        """The ``k`` arcs with the fewest samples."""
        counts = self.counts()
        order = np.lexsort((np.arange(len(counts)), counts))
        return [int(a) for a in order[:k]]


@dataclass(frozen=True)
class MtrCriticality:
    """Per-class criticality estimates.

    Attributes:
        rho: ``(k, num_arcs)`` raw criticalities (Eq. 8/9 per class).
        tails: ``(k, num_arcs)`` left-tail means.
    """

    rho: np.ndarray
    tails: np.ndarray

    @property
    def num_classes(self) -> int:
        """Number of classes."""
        return self.rho.shape[0]

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return self.rho.shape[1]

    def normalized(self, class_index: int) -> np.ndarray:
        """Normalized criticality of one class (zero-safe)."""
        denominator = float(self.tails[class_index].sum())
        if denominator <= 0.0:
            return np.zeros(self.num_arcs)
        return self.rho[class_index] / denominator


def estimate_mtr_criticality(
    store: MtrSampleStore, params: SamplingParams
) -> MtrCriticality:
    """Eqs. (8)-(9) per class from the collected samples."""
    k, m = store.num_classes, store.num_arcs
    rho = np.zeros((k, m))
    tails = np.zeros((k, m))
    for class_index in range(k):
        for arc in range(m):
            samples = store.samples(class_index, arc)
            if samples.size == 0:
                continue
            tail = left_tail_mean(samples, params.left_tail_fraction)
            tails[class_index, arc] = tail
            rho[class_index, arc] = float(samples.mean()) - tail
    return MtrCriticality(rho=rho, tails=tails)


@dataclass(frozen=True)
class MtrSelection:
    """Outcome of the k-list Algorithm 1.

    Attributes:
        critical_arcs: selected arc ids, ascending.
        kept: per-class head sizes (n_1 .. n_k).
    """

    critical_arcs: tuple[int, ...]
    kept: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.critical_arcs)


def select_mtr_critical_links(
    criticality: MtrCriticality, target_size: int
) -> MtrSelection:
    """Algorithm 1 over ``k`` criticality lists.

    At each step the class list whose one-element shrink leaves the
    smallest residual normalized error loses its last element, until the
    union of list heads fits the target.
    """
    k = criticality.num_classes
    m = criticality.num_arcs
    if not 1 <= target_size <= m:
        raise ValueError("target_size must lie in [1, num_arcs]")

    orders = []
    errors = []
    for class_index in range(k):
        normalized = criticality.normalized(class_index)
        order = descending_ranking(normalized)
        orders.append(order)
        errors.append(tail_error(normalized[order]))
    heads = [m] * k

    def union_size() -> int:
        selected: set[int] = set()
        for class_index in range(k):
            selected.update(
                orders[class_index][: heads[class_index]].tolist()
            )
        return len(selected)

    while union_size() > target_size and any(h > 0 for h in heads):
        best_class = None
        best_error = None
        for class_index in range(k):
            h = heads[class_index]
            if h == 0:
                continue
            shrink_error = errors[class_index][h - 1]
            if best_error is None or shrink_error < best_error:
                best_error = shrink_error
                best_class = class_index
        assert best_class is not None
        heads[best_class] -= 1

    selected: set[int] = set()
    for class_index in range(k):
        selected.update(orders[class_index][: heads[class_index]].tolist())
    return MtrSelection(
        critical_arcs=tuple(sorted(int(a) for a in selected)),
        kept=tuple(heads),
    )
