"""Weight settings for k-topology MTR.

One integer weight per (class, arc): a ``(k, num_arcs)`` array.  The DTR
:class:`repro.core.weights.WeightSetting` is the ``k = 2`` special case.
"""

from __future__ import annotations

import numpy as np

from repro.config import WeightParams


class MtrWeightSetting:
    """Weight arrays of all classes.

    Attributes:
        weights: ``(num_classes, num_arcs)`` int64 array; row order
            matches the instance's priority-ordered classes.
    """

    __slots__ = ("weights",)

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 2:
            raise ValueError("weights must be a (classes, arcs) array")
        if np.any(weights < 1):
            raise ValueError("weights must be >= 1")
        self.weights = weights

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """Number of traffic classes."""
        return self.weights.shape[0]

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return self.weights.shape[1]

    @classmethod
    def random(
        cls,
        num_classes: int,
        num_arcs: int,
        params: WeightParams,
        rng: np.random.Generator,
    ) -> "MtrWeightSetting":
        """Uniform random weights for every class."""
        return cls(
            rng.integers(
                params.w_min,
                params.w_max + 1,
                size=(num_classes, num_arcs),
            )
        )

    @classmethod
    def uniform(
        cls, num_classes: int, num_arcs: int, value: int = 1
    ) -> "MtrWeightSetting":
        """All-equal weights (hop-count routing for every class)."""
        return cls(np.full((num_classes, num_arcs), value, dtype=np.int64))

    def copy(self) -> "MtrWeightSetting":
        """An independent copy."""
        return MtrWeightSetting(self.weights.copy())

    # ------------------------------------------------------------------
    def class_weights(self, class_index: int) -> np.ndarray:
        """The weight row of one class."""
        return self.weights[class_index]

    def arc_column(self, arc: int) -> np.ndarray:
        """All class weights of one arc."""
        return self.weights[:, arc].copy()

    def set_arc(self, arc: int, values: np.ndarray) -> None:
        """Assign all class weights of one arc (in place)."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.num_classes,):
            raise ValueError("one value per class required")
        if np.any(values < 1):
            raise ValueError("weights must be >= 1")
        self.weights[:, arc] = values

    def emulates_failure(self, arc: int, params: WeightParams) -> bool:
        """Whether *every* class weight of the arc is failure-like.

        The DTR sampling rule ("both perturbed link weights in
        ``[q w_max, w_max]``") generalizes to all classes: only then does
        the perturbation divert every class off the arc.
        """
        floor = params.failure_emulation_floor
        column = self.weights[:, arc]
        return bool(
            np.all(column >= floor) and np.all(column <= params.w_max)
        )

    def fail_arc(
        self, arc: int, params: WeightParams, rng: np.random.Generator
    ) -> None:
        """Push all class weights of an arc into the failure band."""
        floor = params.failure_emulation_floor
        self.weights[:, arc] = rng.integers(
            floor, params.w_max + 1, size=self.num_classes
        )

    def key(self) -> bytes:
        """Hashable snapshot for deduplication."""
        return self.weights.tobytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MtrWeightSetting):
            return NotImplemented
        return bool(np.array_equal(self.weights, other.weights))

    def __repr__(self) -> str:
        return (
            f"MtrWeightSetting(classes={self.num_classes}, "
            f"arcs={self.num_arcs})"
        )
