"""Traffic-class abstraction for general Multi-Topology Routing.

The paper studies DTR — two routings, one delay-sensitive (SLA cost) and
one throughput-sensitive (Fortz–Thorup cost) — as "the most basic
setting" of MTR (Section I).  This subpackage generalizes the machinery
to ``k`` classes: each :class:`MtrClass` owns a traffic matrix, a cost
model, and a priority; the global cost is the priority-ordered
lexicographic vector of per-class costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.config import SlaParams
from repro.core.fortz import fortz_cost
from repro.core.sla import sla_outcome
from repro.traffic.matrix import TrafficMatrix


class CostModel(Enum):
    """How a class's cost is computed from the routed network state."""

    SLA = "sla"  # Eq. (2): per-pair delay-bound penalties
    LOAD = "load"  # Fortz-Thorup congestion cost on total loads


@dataclass(frozen=True)
class MtrClass:
    """One MTR traffic class.

    Attributes:
        name: class label (unique within an instance).
        matrix: the class's demand matrix.
        cost_model: SLA (delay-bound) or LOAD (congestion) cost.
        priority: lexicographic rank; lower numbers dominate (the paper's
            DTR gives the delay class priority 0 and throughput 1).
        sla: SLA parameters (required for ``CostModel.SLA``).
    """

    name: str
    matrix: TrafficMatrix
    cost_model: CostModel
    priority: int
    sla: SlaParams | None = None

    def __post_init__(self) -> None:
        if self.cost_model is CostModel.SLA and self.sla is None:
            raise ValueError(f"class {self.name!r}: SLA cost needs SlaParams")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")

    def cost(
        self,
        pair_delays: np.ndarray | None,
        total_loads: np.ndarray,
        capacity: np.ndarray,
        own_loads: np.ndarray,
    ) -> float:
        """The class's scalar cost given the routed state.

        Args:
            pair_delays: ``(N, N)`` end-to-end delays of this class's
                routing (required for SLA classes).
            total_loads: per-arc loads across *all* classes.
            capacity: per-arc capacities.
            own_loads: per-arc loads of this class only.
        """
        if self.cost_model is CostModel.SLA:
            if pair_delays is None:
                raise ValueError("SLA cost requires pair delays")
            assert self.sla is not None
            return sla_outcome(pair_delays, self.matrix.values, self.sla).cost
        return fortz_cost(total_loads, capacity, include=own_loads > 0.0)


@dataclass(frozen=True)
class MtrInstance:
    """A set of MTR classes sharing one network.

    Attributes:
        classes: the traffic classes, stored in priority order.
    """

    classes: tuple[MtrClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("an MTR instance needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError("class names must be unique")
        dims = {c.matrix.num_nodes for c in self.classes}
        if len(dims) != 1:
            raise ValueError("all class matrices must share dimensions")
        ordered = tuple(
            sorted(self.classes, key=lambda c: (c.priority, c.name))
        )
        object.__setattr__(self, "classes", ordered)

    @property
    def num_classes(self) -> int:
        """Number of traffic classes ``k``."""
        return len(self.classes)

    @property
    def num_nodes(self) -> int:
        """Demand-matrix dimension."""
        return self.classes[0].matrix.num_nodes

    def class_named(self, name: str) -> MtrClass:
        """Look up a class by name."""
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no class named {name!r}")


def dtr_instance(
    delay_matrix: TrafficMatrix,
    tput_matrix: TrafficMatrix,
    sla: SlaParams,
) -> MtrInstance:
    """The paper's DTR as a 2-class MTR instance."""
    return MtrInstance(
        classes=(
            MtrClass(
                name="delay",
                matrix=delay_matrix,
                cost_model=CostModel.SLA,
                priority=0,
                sla=sla,
            ),
            MtrClass(
                name="throughput",
                matrix=tput_matrix,
                cost_model=CostModel.LOAD,
                priority=1,
            ),
        )
    )
