"""Two-phase robust optimization for k-class MTR.

The DTR pipeline of :mod:`repro.core` generalized: Phase 1 locally
optimizes the k-component normal cost while harvesting failure-like
samples; Phase 1c selects critical links with the k-list Algorithm 1;
Phase 2 minimizes the compounded failure cost over the critical
scenarios subject to the generalized Eqs. (5)-(6): the top-priority
class's normal cost must stay at its optimum and every lower-priority
class may degrade by at most ``chi``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import OptimizerConfig
from repro.core.local_search import DiversificationController, SearchStats
from repro.mtr.cost_vector import CostVector, components_equal
from repro.mtr.criticality import (
    MtrCriticality,
    MtrSampleStore,
    MtrSelection,
    estimate_mtr_criticality,
    select_mtr_critical_links,
)
from repro.mtr.evaluation import MtrEvaluator
from repro.mtr.weights import MtrWeightSetting
from repro.routing.failures import (
    FailureModel,
    FailureSet,
    single_failures,
)


@dataclass(frozen=True)
class MtrConstraints:
    """Generalized Eqs. (5)-(6) for k classes.

    Attributes:
        star: the Phase-1 optimal normal cost vector.
        chi: allowed relative degradation for every non-top class.
    """

    star: CostVector
    chi: float

    def satisfied_by(self, normal: CostVector) -> bool:
        """Top class pinned to its optimum; the rest within ``1 + chi``."""
        top_star = self.star.values[0]
        if normal.values[0] > top_star and not components_equal(
            normal.values[0], top_star
        ):
            return False
        return all(
            value <= (1.0 + self.chi) * star + 1e-12
            or components_equal(value, (1.0 + self.chi) * star)
            for value, star in zip(normal.values[1:], self.star.values[1:])
        )


@dataclass(frozen=True)
class MtrResult:
    """Outcome of the MTR optimization.

    Attributes:
        regular_setting: the performance-only setting (Phase 1).
        regular_cost: its normal cost vector.
        robust_setting: the robust setting (Phase 2).
        robust_normal_cost: the robust setting's normal cost vector.
        robust_kfail: compounded failure cost over critical scenarios.
        criticality: per-class criticality estimates.
        selection: the chosen critical arcs.
        critical_failures: scenarios Phase 2 optimized over.
        stats: combined search counters.
    """

    regular_setting: MtrWeightSetting
    regular_cost: CostVector
    robust_setting: MtrWeightSetting
    robust_normal_cost: CostVector
    robust_kfail: CostVector
    criticality: MtrCriticality
    selection: MtrSelection
    critical_failures: FailureSet
    stats: SearchStats


class MtrOptimizer:
    """Robust k-topology optimization for one MTR instance.

    Args:
        evaluator: the MTR cost oracle.
        config: search/sampling parameters (DTR defaults apply).
        failure_model: single-failure granularity.
        rng: random generator.
    """

    def __init__(
        self,
        evaluator: MtrEvaluator,
        config: OptimizerConfig,
        failure_model: FailureModel = FailureModel.LINK,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._evaluator = evaluator
        self._config = config
        self._failure_model = failure_model
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    def run(self) -> MtrResult:
        """Run both phases and return the combined result."""
        stats = SearchStats()
        best_setting, best_cost, pool, store = self._phase1(stats)
        criticality = estimate_mtr_criticality(
            store, self._config.sampling
        )
        target = max(
            1,
            round(
                self._config.critical_fraction
                * self._evaluator.network.num_arcs
            ),
        )
        selection = select_mtr_critical_links(criticality, target)
        failures = single_failures(
            self._evaluator.network, self._failure_model
        ).restricted_to_arcs(selection.critical_arcs)
        constraints = MtrConstraints(
            star=best_cost, chi=self._config.sampling.chi
        )
        robust_setting, robust_kfail = self._phase2(
            pool or [(best_setting, best_cost)],
            failures,
            constraints,
            stats,
        )
        return MtrResult(
            regular_setting=best_setting,
            regular_cost=best_cost,
            robust_setting=robust_setting,
            robust_normal_cost=self._evaluator.evaluate_normal(
                robust_setting
            ).cost,
            robust_kfail=robust_kfail,
            criticality=criticality,
            selection=selection,
            critical_failures=failures,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _phase1(
        self, stats: SearchStats
    ) -> tuple[
        MtrWeightSetting,
        CostVector,
        list[tuple[MtrWeightSetting, CostVector]],
        MtrSampleStore,
    ]:
        """Normal-cost local search with failure-like sample collection."""
        config = self._config
        evaluator = self._evaluator
        rng = self._rng
        wp = config.weights
        sp = config.search
        k = evaluator.num_classes
        num_arcs = evaluator.network.num_arcs

        current = MtrWeightSetting.random(k, num_arcs, wp, rng)
        cur_cost = evaluator.evaluate_normal(current).cost
        stats.evaluations += 1
        best_setting = current.copy()
        best_cost = cur_cost
        store = MtrSampleStore(k, num_arcs)
        pool: list[tuple[MtrWeightSetting, CostVector]] = []
        pool_keys: set[bytes] = set()

        controller = DiversificationController(
            interval=sp.phase1_diversification_interval,
            min_rounds=sp.phase1_diversifications,
            cutoff=sp.improvement_cutoff,
            cap_factor=sp.round_iteration_cap_factor,
        )
        round_start = best_cost
        sweep = max(1, round(sp.arcs_per_iteration_fraction * num_arcs))
        constraints_like = MtrConstraints(
            star=best_cost, chi=config.sampling.chi
        )

        while stats.iterations < sp.max_iterations:
            improved = False
            for arc in rng.permutation(num_arcs)[:sweep]:
                arc = int(arc)
                old = current.arc_column(arc)
                new = rng.integers(wp.w_min, wp.w_max + 1, size=k)
                if np.array_equal(old, new):
                    continue
                current.set_arc(arc, new)
                cand = evaluator.evaluate_normal(current).cost
                stats.evaluations += 1
                floor = wp.failure_emulation_floor
                if np.all(new >= floor) and self._sample_acceptable(
                    cur_cost, best_cost
                ):
                    store.add(arc, cand)
                    stats.samples_recorded += 1
                if cand.is_better_than(cur_cost):
                    cur_cost = cand
                    improved = True
                    stats.accepted_moves += 1
                    if cand.is_better_than(best_cost):
                        best_cost = cand
                        best_setting = current.copy()
                        constraints_like = MtrConstraints(
                            star=best_cost, chi=config.sampling.chi
                        )
                        pool = [
                            (s, c)
                            for s, c in pool
                            if constraints_like.satisfied_by(c)
                        ]
                        pool_keys = {s.key() for s, _ in pool}
                    if (
                        constraints_like.satisfied_by(cand)
                        and current.key() not in pool_keys
                    ):
                        pool.append((current.copy(), cand))
                        pool_keys.add(current.key())
                        if len(pool) > config.keep_acceptable_settings:
                            pool.sort(key=lambda e: e[1].values)
                            evicted = pool.pop()
                            pool_keys.discard(evicted[0].key())
                else:
                    current.set_arc(arc, old)
            stats.iterations += 1
            if controller.note_iteration(improved):
                controller.note_diversification(
                    best_cost.relative_improvement_over(round_start)
                )
                stats.diversifications += 1
                if controller.should_stop():
                    break
                round_start = best_cost
                current = MtrWeightSetting.random(k, num_arcs, wp, rng)
                cur_cost = evaluator.evaluate_normal(current).cost
                stats.evaluations += 1

        # top up the sample store so every arc has evidence
        extra_cap = config.sampling.max_extra_samples
        extra = 0
        minimum = config.sampling.min_samples_per_link
        while store.counts().min() < minimum and extra < extra_cap:
            starved = store.least_sampled_arcs(4)
            arc = int(starved[int(rng.integers(0, len(starved)))])
            probe = best_setting.copy()
            probe.fail_arc(arc, wp, rng)
            cost = evaluator.evaluate_normal(probe).cost
            stats.evaluations += 1
            store.add(arc, cost)
            stats.samples_recorded += 1
            extra += 1

        if not any(
            np.array_equal(s.weights, best_setting.weights) for s, _ in pool
        ):
            pool.insert(0, (best_setting.copy(), best_cost))
        return best_setting, best_cost, pool, store

    def _sample_acceptable(
        self, pre_cost: CostVector, best: CostVector
    ) -> bool:
        """Relaxed acceptability of the pre-perturbation cost.

        Generalizes the DTR rule: top class within ``z * B1`` of the
        best, every other class within ``1 + chi``.
        """
        sampling = self._config.sampling
        slack = sampling.z * self._config.sla.b1
        if pre_cost.values[0] > best.values[0] + slack:
            return False
        return all(
            value <= (1.0 + sampling.chi) * star + 1e-12
            for value, star in zip(pre_cost.values[1:], best.values[1:])
        )

    # ------------------------------------------------------------------
    def _phase2(
        self,
        starts: list[tuple[MtrWeightSetting, CostVector]],
        failures: FailureSet,
        constraints: MtrConstraints,
        stats: SearchStats,
    ) -> tuple[MtrWeightSetting, CostVector]:
        """Robust local search over the critical failure scenarios."""
        evaluator = self._evaluator
        config = self._config
        rng = self._rng
        wp = config.weights
        sp = config.search
        k = evaluator.num_classes
        num_arcs = evaluator.network.num_arcs

        if len(failures) == 0:
            # no critical scenario: the regular optimum is already robust
            return starts[0][0].copy(), CostVector.zero(k)

        def kfail(setting: MtrWeightSetting) -> CostVector:
            total = evaluator.evaluate_failures(setting, failures)
            stats.evaluations += len(failures)
            return total.total_cost

        current = starts[0][0].copy()
        cur_kfail = kfail(current)
        best_setting = current.copy()
        best_kfail = cur_kfail

        controller = DiversificationController(
            interval=sp.phase2_diversification_interval,
            min_rounds=sp.phase2_diversifications,
            cutoff=sp.improvement_cutoff,
            cap_factor=sp.round_iteration_cap_factor,
        )
        round_start = best_kfail
        sweep = max(1, round(sp.arcs_per_iteration_fraction * num_arcs))
        next_start = 1

        while stats.iterations < sp.max_iterations:
            improved = False
            for arc in rng.permutation(num_arcs)[:sweep]:
                arc = int(arc)
                old = current.arc_column(arc)
                new = old.copy()
                # mostly single-class moves, as in the DTR Phase 2
                if rng.random() < 0.25:
                    new = rng.integers(wp.w_min, wp.w_max + 1, size=k)
                else:
                    class_index = int(rng.integers(0, k))
                    new[class_index] = int(
                        rng.integers(wp.w_min, wp.w_max + 1)
                    )
                if np.array_equal(old, new):
                    continue
                current.set_arc(arc, new)
                normal = evaluator.evaluate_normal(current).cost
                stats.evaluations += 1
                if not constraints.satisfied_by(normal):
                    current.set_arc(arc, old)
                    continue
                cand_kfail = kfail(current)
                if cand_kfail.is_better_than(cur_kfail):
                    cur_kfail = cand_kfail
                    improved = True
                    stats.accepted_moves += 1
                    if cand_kfail.is_better_than(best_kfail):
                        best_kfail = cand_kfail
                        best_setting = current.copy()
                else:
                    current.set_arc(arc, old)
            stats.iterations += 1
            if controller.note_iteration(improved):
                controller.note_diversification(
                    best_kfail.relative_improvement_over(round_start)
                )
                stats.diversifications += 1
                if controller.should_stop():
                    break
                round_start = best_kfail
                base = starts[next_start % len(starts)][0]
                current = base.copy()
                cur_kfail = kfail(current)
                next_start += 1

        return best_setting, best_kfail
