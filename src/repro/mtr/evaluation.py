"""Cost evaluation for k-class MTR instances.

Same pipeline as the DTR evaluator — per-class SPF/ECMP routing, shared
FIFO load superposition, per-class costs — but producing a
:class:`~repro.mtr.cost_vector.CostVector` of ``k`` components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DelayModelParams
from repro.core.delay import arc_delays
from repro.mtr.classes import CostModel, MtrInstance
from repro.mtr.cost_vector import CostVector
from repro.mtr.weights import MtrWeightSetting
from repro.routing.engine import RoutingEngine
from repro.routing.failures import NORMAL, FailureScenario, FailureSet
from repro.routing.network import Network


@dataclass(frozen=True)
class MtrEvaluation:
    """Outcome of one (setting, scenario) MTR evaluation.

    Attributes:
        scenario: the failure scenario evaluated.
        cost: the k-component lexicographic cost.
        class_loads: ``(k, num_arcs)`` per-class arc loads.
        total_loads: per-arc loads across classes.
        utilization: per-arc total utilization.
    """

    scenario: FailureScenario
    cost: CostVector
    class_loads: np.ndarray
    total_loads: np.ndarray
    utilization: np.ndarray


@dataclass(frozen=True)
class MtrFailureEvaluation:
    """Per-scenario MTR evaluations plus the compounded cost."""

    evaluations: tuple[MtrEvaluation, ...]

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def total_cost(self) -> CostVector:
        """Component-wise sum over scenarios."""
        return CostVector.total([e.cost for e in self.evaluations])


class MtrEvaluator:
    """Cost oracle for one (network, MTR instance) pair.

    Args:
        network: the topology.
        instance: the traffic classes.
        delay_params: Eq. (1) constants.
        delay_mode: ECMP path-delay aggregation for SLA classes.
    """

    def __init__(
        self,
        network: Network,
        instance: MtrInstance,
        delay_params: DelayModelParams = DelayModelParams(),
        delay_mode: str = "worst",
    ) -> None:
        if instance.num_nodes != network.num_nodes:
            raise ValueError("instance and network dimensions differ")
        self._network = network
        self._instance = instance
        self._delay_params = delay_params
        self._delay_mode = delay_mode
        self._engine = RoutingEngine(network)

    @property
    def network(self) -> Network:
        """The evaluated topology."""
        return self._network

    @property
    def instance(self) -> MtrInstance:
        """The evaluated traffic classes."""
        return self._instance

    @property
    def num_classes(self) -> int:
        """Number of classes ``k``."""
        return self._instance.num_classes

    # ------------------------------------------------------------------
    def evaluate(
        self,
        setting: MtrWeightSetting,
        scenario: FailureScenario = NORMAL,
    ) -> MtrEvaluation:
        """Cost vector of one weight setting under one scenario."""
        if setting.num_classes != self._instance.num_classes:
            raise ValueError("setting class count does not match instance")
        if setting.num_arcs != self._network.num_arcs:
            raise ValueError("setting does not match the network")

        routings = [
            self._engine.route_class(
                setting.class_weights(i), cls.matrix.values, scenario
            )
            for i, cls in enumerate(self._instance.classes)
        ]
        class_loads = np.stack([r.loads for r in routings])
        total = class_loads.sum(axis=0)
        delays = arc_delays(
            total,
            self._network.capacity,
            self._network.prop_delay,
            self._delay_params,
        )

        costs = []
        for i, cls in enumerate(self._instance.classes):
            if cls.cost_model is CostModel.SLA:
                pair_delays = self._engine.path_delays(
                    routings[i], delays, mode=self._delay_mode
                )
            else:
                pair_delays = None
            costs.append(
                cls.cost(
                    pair_delays,
                    total,
                    self._network.capacity,
                    class_loads[i],
                )
            )
        return MtrEvaluation(
            scenario=scenario,
            cost=CostVector(tuple(costs)),
            class_loads=class_loads,
            total_loads=total,
            utilization=total / self._network.capacity,
        )

    def evaluate_normal(self, setting: MtrWeightSetting) -> MtrEvaluation:
        """Cost under the failure-free scenario."""
        return self.evaluate(setting, NORMAL)

    def evaluate_failures(
        self, setting: MtrWeightSetting, failures: FailureSet
    ) -> MtrFailureEvaluation:
        """Costs across a failure set."""
        return MtrFailureEvaluation(
            tuple(self.evaluate(setting, s) for s in failures)
        )
