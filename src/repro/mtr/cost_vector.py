"""Lexicographic cost vectors for k-class MTR.

Generalizes :class:`repro.core.lexicographic.CostPair` from two to ``k``
components: the vector is compared component-by-component in priority
order, each with the same tolerances as the DTR pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Absolute tolerance for components (matches the DTR Lambda tolerance).
COMPONENT_ABS_TOLERANCE = 1e-6

#: Relative tolerance for components (matches the DTR Phi tolerance).
COMPONENT_REL_TOLERANCE = 1e-9


def components_equal(a: float, b: float) -> bool:
    """Tolerant equality for one cost component."""
    if abs(a - b) <= COMPONENT_ABS_TOLERANCE:
        return True
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= COMPONENT_REL_TOLERANCE * scale


@dataclass(frozen=True)
class CostVector:
    """A priority-ordered tuple of per-class costs.

    Attributes:
        values: per-class costs, highest priority first.
    """

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("cost vector needs at least one component")
        if any(math.isnan(v) for v in self.values):
            raise ValueError("cost components must not be NaN")

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    def __lt__(self, other: "CostVector") -> bool:
        self._check(other)
        for a, b in zip(self.values, other.values):
            if not components_equal(a, b):
                return a < b
        return False

    def __le__(self, other: "CostVector") -> bool:
        return not other < self

    def __gt__(self, other: "CostVector") -> bool:
        return other < self

    def __ge__(self, other: "CostVector") -> bool:
        return not self < other

    def is_better_than(self, other: "CostVector") -> bool:
        """Strictly lower in the lexicographic order."""
        return self < other

    def equals(self, other: "CostVector") -> bool:
        """All components equal within tolerance."""
        self._check(other)
        return all(
            components_equal(a, b)
            for a, b in zip(self.values, other.values)
        )

    def _check(self, other: "CostVector") -> None:
        if len(self) != len(other):
            raise ValueError("cost vectors have different lengths")

    # ------------------------------------------------------------------
    def __add__(self, other: "CostVector") -> "CostVector":
        self._check(other)
        return CostVector(
            tuple(a + b for a, b in zip(self.values, other.values))
        )

    @classmethod
    def zero(cls, k: int) -> "CostVector":
        """The additive identity with ``k`` components."""
        return cls((0.0,) * k)

    @classmethod
    def total(cls, vectors: list["CostVector"]) -> "CostVector":
        """Component-wise sum (empty list is invalid: unknown arity)."""
        if not vectors:
            raise ValueError("cannot total an empty list of cost vectors")
        result = vectors[0]
        for vector in vectors[1:]:
            result = result + vector
        return result

    def relative_improvement_over(self, previous: "CostVector") -> float:
        """Relative reduction on the dominant changed component.

        Mirrors :func:`repro.core.lexicographic.relative_improvement`.
        """
        if not self.is_better_than(previous):
            return 0.0
        for before, after in zip(previous.values, self.values):
            if not components_equal(before, after):
                base = max(abs(before), COMPONENT_ABS_TOLERANCE)
                return (before - after) / base
        return 0.0

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:.6g}" for v in self.values)
        return f"CostVector({inner})"
