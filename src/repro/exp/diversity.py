"""Path-diversity profile of the four topology families.

Quantifies the mechanism the paper invokes throughout Section V: robust
optimization helps in proportion to the alternate paths a topology
offers.  RandTopo/PLTopo should show materially higher disjoint-path and
stretch-path counts than NearTopo.
"""

from __future__ import annotations

from repro.analysis.diversity import diversity_summary
from repro.exp.common import ExperimentResult, make_topology
from repro.exp.presets import Preset, get_preset
from repro.exp.table1 import TABLE1_TOPOLOGIES


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Compute diversity statistics for all four topology families."""
    preset = get_preset(preset)
    result = ExperimentResult(
        experiment_id="diversity",
        title="Path diversity across topology families (Sec. V mechanism)",
        preset=preset.name,
        context={"stretch factor": 1.5},
    )
    for kind, paper_nodes, degree in TABLE1_TOPOLOGIES:
        nodes = (
            paper_nodes if kind == "isp" else preset.scaled_nodes(paper_nodes)
        )
        network = make_topology(kind, nodes, degree, seed=seed)
        summary = diversity_summary(network)
        result.rows.append(
            {
                "topology": f"{network.name}[{network.num_nodes},"
                f"{network.num_arcs}]",
                "mean ECMP paths": summary.mean_ecmp_paths,
                "mean disjoint paths": summary.mean_disjoint_paths,
                "min disjoint paths": summary.min_disjoint_paths,
                "mean 1.5x-stretch next hops": summary.mean_stretch_paths,
            }
        )
    return result
