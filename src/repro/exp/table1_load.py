"""Section IV-E1's load sweep: critical-search accuracy at high load.

The paper repeats the Table I accuracy comparison on a RandTopo loaded to
0.9 maximum utilization and finds that slightly larger critical sets
(~20-25 % instead of 10-15 %) are needed to keep ``beta_crt`` close to
``beta_full`` — queueing-delay sensitivity at high load amplifies the
cost of omitting links.
"""

from __future__ import annotations

from repro.analysis.metrics import beta_metric, phi_gap_percent
from repro.core.baselines import (
    full_search_optimize,
    optimize_with_critical_arcs,
)
from repro.core.phase1 import run_phase1
from repro.core.selection import select_critical_links
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel, single_failures

#: The critical-set fractions swept at high load.
HIGH_LOAD_FRACTIONS: tuple[float, ...] = (0.10, 0.20, 0.25)


def run(
    preset: "str | Preset" = "quick",
    seed: int = 0,
    max_utilization: float = 0.9,
) -> ExperimentResult:
    """Regenerate the Section IV-E1 high-load accuracy sweep."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    result = ExperimentResult(
        experiment_id="table1_load",
        title="Critical-search accuracy under high network load",
        preset=preset.name,
        context={
            "topology": "RandTopo",
            "max utilization target": max_utilization,
            "repeats": preset.repeats,
        },
    )
    beta_full: list[float] = []
    beta_crt: dict[float, list[float]] = {f: [] for f in HIGH_LOAD_FRACTIONS}
    beta_phi: dict[float, list[float]] = {f: [] for f in HIGH_LOAD_FRACTIONS}
    label = ""
    for repeat in range(preset.repeats):
        instance = make_instance(
            "rand",
            nodes,
            6.0,
            seed=seed + repeat,
            target_utilization=max_utilization,
            utilization_statistic="max",
        )
        label = instance.label
        evaluator = evaluator_for(instance, preset.config)
        rng = instance_rng(instance.seed, 31)
        phase1 = run_phase1(evaluator, rng)
        all_failures = single_failures(instance.network, FailureModel.LINK)
        full = full_search_optimize(evaluator, phase1, rng)
        full_eval = evaluator.evaluate_failures(
            full.best_setting, all_failures
        )
        beta_full.append(beta_metric(full_eval))
        for fraction in HIGH_LOAD_FRACTIONS:
            target = max(1, round(fraction * instance.network.num_arcs))
            selection = select_critical_links(phase1.estimate, target)
            crt = optimize_with_critical_arcs(
                evaluator, phase1, selection.critical_arcs, rng
            )
            crt_eval = evaluator.evaluate_failures(
                crt.best_setting, all_failures
            )
            beta_crt[fraction].append(beta_metric(crt_eval))
            beta_phi[fraction].append(phi_gap_percent(crt_eval, full_eval))
    for fraction in HIGH_LOAD_FRACTIONS:
        result.rows.append(
            {
                "topology": label,
                "|Ec|/|E|": f"{fraction:.0%}",
                "beta_full": tuple(beta_full),
                "beta_crt": tuple(beta_crt[fraction]),
                "beta_phi_pct": tuple(beta_phi[fraction]),
            }
        )
    return result
