"""Table III: SLA violations in RandTopo for different network sizes.

The paper grows RandTopo from 30 to 100 nodes at fixed mean degree 5 and
finds that the benefits of robust optimization persist or increase with
size (more nodes, more path diversity — and more chances for regular
optimization to take locally bad re-routing decisions).
"""

from __future__ import annotations

from repro.analysis.metrics import SlaViolationStats
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset

#: Paper node counts for the size sweep.
TABLE3_SIZES: tuple[int, ...] = (30, 50, 100)

#: Mean node degree held fixed across sizes.
TABLE3_DEGREE = 5.0


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Table III."""
    preset = get_preset(preset)
    result = ExperimentResult(
        experiment_id="table3",
        title="SLA violations in RandTopo (different network sizes)",
        preset=preset.name,
        context={
            "mean degree": TABLE3_DEGREE,
            "repeats": preset.repeats,
            "target mean utilization": 0.43,
        },
    )
    for paper_nodes in TABLE3_SIZES:
        nodes = preset.scaled_nodes(paper_nodes)
        robust_mean: list[float] = []
        regular_mean: list[float] = []
        robust_top: list[float] = []
        regular_top: list[float] = []
        label = ""
        for repeat in range(preset.repeats):
            instance = make_instance(
                "rand", nodes, TABLE3_DEGREE, seed=seed + repeat
            )
            label = instance.label
            outcome = run_arms(instance, preset.config, seed=seed + repeat)
            evaluator = evaluator_for(instance, preset.config)
            rob = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.robust_setting, outcome.all_failures
                )
            )
            reg = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.regular_setting, outcome.all_failures
                )
            )
            robust_mean.append(rob.mean)
            regular_mean.append(reg.mean)
            robust_top.append(rob.top10_mean)
            regular_top.append(reg.top10_mean)
        result.rows.append(
            {
                "size": label,
                "avg (R)": tuple(robust_mean),
                "avg (NR)": tuple(regular_mean),
                "top-10% (R)": tuple(robust_top),
                "top-10% (NR)": tuple(regular_top),
            }
        )
    return result
