"""Section IV-E2: computational savings of the critical search.

The paper reports Phase 1 / Phase 2 wall-clock times for the critical
search versus the full search on a 30-node, 240-arc RandTopo with
``|Ec|/|E| = 0.1``: the critical search slightly lengthens Phase 1
(sample generation) and massively shortens Phase 2 (fewer failure
scenarios per candidate), with savings proportional to
``1 - |Ec|/|E|``.
"""

from __future__ import annotations

import time

from repro.core.baselines import (
    full_search_optimize,
    optimize_with_critical_arcs,
)
from repro.core.phase1 import run_phase1
from repro.core.selection import select_critical_links
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset


def run(
    preset: "str | Preset" = "quick",
    seed: int = 0,
    critical_fraction: float = 0.1,
) -> ExperimentResult:
    """Regenerate the Phase-1/Phase-2 timing comparison."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    # The paper uses a 30-node, 240-arc RandTopo (degree 8); the quick
    # preset thins the graph so the full-search arm stays benchable.
    degree = 5.0 if preset.name == "quick" else 8.0
    instance = make_instance("rand", nodes, degree, seed=seed)
    evaluator = evaluator_for(instance, preset.config)
    rng = instance_rng(instance.seed, 32)

    t0 = time.perf_counter()
    phase1 = run_phase1(evaluator, rng)
    t1 = time.perf_counter()
    phase1_seconds = t1 - t0

    target = max(1, round(critical_fraction * instance.network.num_arcs))
    selection = select_critical_links(phase1.estimate, target)

    t0 = time.perf_counter()
    critical = optimize_with_critical_arcs(
        evaluator, phase1, selection.critical_arcs, rng
    )
    t_crt = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = full_search_optimize(evaluator, phase1, rng)
    t_full = time.perf_counter() - t0

    result = ExperimentResult(
        experiment_id="timing",
        title="Phase-2 computational savings of the critical search",
        preset=preset.name,
        context={
            "topology": instance.label,
            "|Ec|/|E|": critical_fraction,
            "|Ec|": len(selection.critical_arcs),
        },
    )
    result.rows.append(
        {
            "phase": "phase 1 (shared)",
            "critical_s": phase1_seconds,
            "full_s": phase1_seconds,
            "speedup": 1.0,
        }
    )
    result.rows.append(
        {
            "phase": "phase 2",
            "critical_s": t_crt,
            "full_s": t_full,
            "speedup": (t_full / t_crt) if t_crt > 0 else float("inf"),
        }
    )
    result.context["critical evals"] = critical.stats.evaluations
    result.context["full evals"] = full.stats.evaluations
    return result
