"""Fig. 3: per-failure performance with and without robust optimization.

Panel (a): number of SLA violations for each single link failure; panel
(b): throughput-sensitive traffic cost per failure (normalized by the
series peak, as the paper's plot is).  Robust optimization should crush
the violation spikes and also shave the worst throughput-cost failures.
"""

from __future__ import annotations

from repro.analysis.series import FigureData, Series
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 3 (both panels)."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance("rand", nodes, 6.0, seed=seed)
    outcome = run_arms(instance, preset.config, seed=seed)
    evaluator = evaluator_for(instance, preset.config)

    rob = evaluator.evaluate_failures(
        outcome.robust_setting, outcome.all_failures
    )
    reg = evaluator.evaluate_failures(
        outcome.regular_setting, outcome.all_failures
    )

    result = ExperimentResult(
        experiment_id="fig3",
        title="Network performance with and without robust optimization",
        preset=preset.name,
        context={
            "topology": instance.label,
            "failure scenarios": len(outcome.all_failures),
        },
    )
    result.figures.append(
        FigureData(
            figure_id="fig3a",
            xlabel="failure link id",
            ylabel="SLA violations",
            series=(
                Series("Robust", rob.violations.astype(float)),
                Series("No Robust", reg.violations.astype(float)),
            ),
        )
    )
    # Normalize both Phi series by the common peak so the two curves are
    # comparable, mirroring the paper's [0.2, 1] plot range.
    peak = max(rob.phi_values.max(), reg.phi_values.max(), 1e-12)
    result.figures.append(
        FigureData(
            figure_id="fig3b",
            xlabel="failure link id",
            ylabel="throughput-sensitive traffic cost (normalized)",
            series=(
                Series("Robust", rob.phi_values / peak),
                Series("No Robust", reg.phi_values / peak),
            ),
        )
    )
    result.rows.append(
        {
            "series": "Robust",
            "mean violations": float(rob.violations.mean()),
            "worst violations": int(rob.violations.max()),
            "mean phi (norm)": float((rob.phi_values / peak).mean()),
        }
    )
    result.rows.append(
        {
            "series": "No Robust",
            "mean violations": float(reg.violations.mean()),
            "worst violations": int(reg.violations.max()),
            "mean phi (norm)": float((reg.phi_values / peak).mean()),
        }
    )
    return result
