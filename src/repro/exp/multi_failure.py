"""Footnote 16: robustness to simultaneous two-link failures.

The paper notes that link-failure-robust routings also outperform
regular routings under "other types of failure patterns, e.g., multiple
link failures" — robustness to single failures is not bought with
fragility elsewhere.  This experiment evaluates (no re-optimization) the
robust and regular routings across a sample of dual-link failures.

The dual-link sample is the ``k = 2`` case of the scenario subsystem's
:func:`repro.scenarios.k_link_failures` generator, which reproduces the
old ``dual_link_failures`` enumeration (combination order and sampling
draws included) bit-identically; ``repro-exp scenarios --scenarios
multi3`` extends the same sweep to higher simultaneity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import FigureData, Series
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset
from repro.scenarios import k_link_failures


def run(
    preset: "str | Preset" = "quick",
    seed: int = 0,
    max_scenarios: int = 60,
) -> ExperimentResult:
    """Evaluate single-failure-robust routing under dual-link failures."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance("rand", nodes, 6.0, seed=seed)
    outcome = run_arms(instance, preset.config, seed=seed)
    evaluator = evaluator_for(instance, preset.config)

    failures = k_link_failures(
        instance.network,
        k=2,
        max_scenarios=max_scenarios,
        rng=instance_rng(instance.seed, 60),
    )
    rob = evaluator.evaluate_scenarios(outcome.robust_setting, failures)
    reg = evaluator.evaluate_scenarios(outcome.regular_setting, failures)

    result = ExperimentResult(
        experiment_id="multi_failure",
        title="Dual-link failures: single-failure robustness transfers",
        preset=preset.name,
        context={
            "topology": instance.label,
            "dual-link scenarios": len(failures),
        },
    )
    result.figures.append(
        FigureData(
            figure_id="multi_failure",
            xlabel="sorted dual-failure id",
            ylabel="SLA violations",
            series=(
                Series(
                    "Robust (single-link)",
                    np.sort(rob.violations.astype(float))[::-1],
                ),
                Series(
                    "No Robust",
                    np.sort(reg.violations.astype(float))[::-1],
                ),
            ),
        )
    )
    result.rows.append(
        {
            "routing": "Robust (single-link)",
            "avg violations": rob.mean_violations(),
            "top-10%": rob.top_fraction_mean_violations(),
        }
    )
    result.rows.append(
        {
            "routing": "No Robust",
            "avg violations": reg.mean_violations(),
            "top-10%": reg.top_fraction_mean_violations(),
        }
    )
    return result
