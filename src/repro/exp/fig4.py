"""Fig. 4: link-load redistribution after failures, RandTopo vs NearTopo.

Under the robust routing, panel (a) counts how many surviving links see
a load increase after each failure and panel (b) the average magnitude of
those increases (both sorted descending over failures).  RandTopo spreads
re-routed traffic over many links in small increments; NearTopo's thin
core concentrates it on few links in large increments — the paper's
path-diversity explanation in one picture.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import utilization_increase_after_failure
from repro.analysis.series import FigureData, Series
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset


def _series_for(
    preset, kind: str, nodes: int, degree: float, seed: int
) -> tuple[str, np.ndarray, np.ndarray]:
    """(label, sorted counts, sorted mean increases) for one topology."""
    instance = make_instance(kind, nodes, degree, seed=seed)
    outcome = run_arms(instance, preset.config, seed=seed)
    evaluator = evaluator_for(instance, preset.config)
    normal = evaluator.evaluate_normal(outcome.robust_setting)
    counts = []
    increases = []
    for scenario in outcome.all_failures:
        failed = evaluator.evaluate(outcome.robust_setting, scenario)
        count, mean_increase = utilization_increase_after_failure(
            normal, failed
        )
        counts.append(count)
        increases.append(mean_increase)
    return (
        instance.label,
        np.sort(np.asarray(counts, dtype=float))[::-1],
        np.sort(np.asarray(increases, dtype=float))[::-1],
    )


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 4 (both panels)."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    rand_label, rand_counts, rand_incr = _series_for(
        preset, "rand", nodes, 6.0, seed
    )
    near_label, near_counts, near_incr = _series_for(
        preset, "near", nodes, 6.0, seed
    )
    result = ExperimentResult(
        experiment_id="fig4",
        title="Link loads after failure under robust optimization",
        preset=preset.name,
        context={"rand": rand_label, "near": near_label},
    )
    result.figures.append(
        FigureData(
            figure_id="fig4a",
            xlabel="sorted failure link id",
            ylabel="number of links with load increase",
            series=(
                Series("RandTopo", rand_counts),
                Series("NearTopo", near_counts),
            ),
        )
    )
    result.figures.append(
        FigureData(
            figure_id="fig4b",
            xlabel="sorted failure link id",
            ylabel="average increase of link utilization",
            series=(
                Series("RandTopo", rand_incr),
                Series("NearTopo", near_incr),
            ),
        )
    )
    result.rows.append(
        {
            "topology": rand_label,
            "mean #links increased": float(rand_counts.mean()),
            "mean increase": float(rand_incr.mean()),
        }
    )
    result.rows.append(
        {
            "topology": near_label,
            "mean #links increased": float(near_counts.mean()),
            "mean increase": float(near_incr.mean()),
        }
    )
    return result
