"""Table IV: SLA violations in 30-node RandTopo for different mean degrees.

The symmetric sweep to Table III: node count fixed, mean degree in
{4, 6, 8}.  Higher degree means more path diversity, which robust
optimization converts into fewer violations.
"""

from __future__ import annotations

from repro.analysis.metrics import SlaViolationStats
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset

#: Mean node degrees of the sweep.
TABLE4_DEGREES: tuple[float, ...] = (4.0, 6.0, 8.0)

#: Paper node count.
TABLE4_NODES = 30


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Table IV."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(TABLE4_NODES)
    result = ExperimentResult(
        experiment_id="table4",
        title="SLA violations in RandTopo (different mean degrees)",
        preset=preset.name,
        context={
            "nodes": nodes,
            "repeats": preset.repeats,
            "target mean utilization": 0.43,
        },
    )
    for degree in TABLE4_DEGREES:
        robust_mean: list[float] = []
        regular_mean: list[float] = []
        robust_top: list[float] = []
        regular_top: list[float] = []
        label = ""
        for repeat in range(preset.repeats):
            instance = make_instance(
                "rand", nodes, degree, seed=seed + repeat
            )
            label = instance.label
            outcome = run_arms(instance, preset.config, seed=seed + repeat)
            evaluator = evaluator_for(instance, preset.config)
            rob = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.robust_setting, outcome.all_failures
                )
            )
            reg = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.regular_setting, outcome.all_failures
                )
            )
            robust_mean.append(rob.mean)
            regular_mean.append(reg.mean)
            robust_top.append(rob.top10_mean)
            regular_top.append(reg.top10_mean)
        result.rows.append(
            {
                "mean degree": degree,
                "topology": label,
                "avg (R)": tuple(robust_mean),
                "avg (NR)": tuple(regular_mean),
                "top-10% (R)": tuple(robust_top),
                "top-10% (NR)": tuple(regular_top),
            }
        )
    return result
