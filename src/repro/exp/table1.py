"""Table I: critical search vs full search across topologies.

For each topology family the full search (``Ec = E``) provides the
accuracy reference ``beta_full`` (mean SLA violations over all single
link failures); the critical search is then run with ``|Ec|/|E|`` in
{5 %, 10 %, 15 %} and reports ``beta_crt`` plus the relative throughput
cost gap ``beta_Phi``.
"""

from __future__ import annotations

from repro.analysis.metrics import beta_metric, phi_gap_percent
from repro.core.baselines import (
    full_search_optimize,
    optimize_with_critical_arcs,
)
from repro.core.phase1 import run_phase1
from repro.core.selection import select_critical_links
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel, single_failures

#: (kind, paper nodes, mean degree) for Table I's four topology columns.
TABLE1_TOPOLOGIES: tuple[tuple[str, int, float], ...] = (
    ("rand", 30, 6.0),
    ("near", 30, 6.0),
    ("pl", 30, 5.4),
    ("isp", 16, 4.375),
)

#: The critical-set fractions of Table I.
TABLE1_FRACTIONS: tuple[float, ...] = (0.05, 0.10, 0.15)


def run(
    preset: "str | Preset" = "quick",
    seed: int = 0,
    fractions: tuple[float, ...] = TABLE1_FRACTIONS,
) -> ExperimentResult:
    """Regenerate Table I.

    Args:
        preset: execution scale.
        seed: base seed; repeat ``r`` uses ``seed + r``.
        fractions: ``|Ec| / |E|`` values to sweep.

    Returns:
        Rows keyed by topology and fraction with ``beta_full``,
        ``beta_crt`` and ``beta_phi_pct`` cells (mean/std over repeats).
    """
    preset = get_preset(preset)
    result = ExperimentResult(
        experiment_id="table1",
        title="Critical vs. full search for different topologies",
        preset=preset.name,
        context={
            "repeats": preset.repeats,
            "target mean utilization": 0.43,
            "fractions": ", ".join(f"{f:.0%}" for f in fractions),
        },
    )
    for kind, paper_nodes, degree in TABLE1_TOPOLOGIES:
        nodes = (
            paper_nodes if kind == "isp" else preset.scaled_nodes(paper_nodes)
        )
        beta_full: list[float] = []
        beta_crt: dict[float, list[float]] = {f: [] for f in fractions}
        beta_phi: dict[float, list[float]] = {f: [] for f in fractions}
        label = ""
        mean_utils: list[float] = []
        for repeat in range(preset.repeats):
            instance = make_instance(
                kind, nodes, degree, seed=seed + repeat
            )
            label = instance.label
            evaluator = evaluator_for(instance, preset.config)
            rng = instance_rng(instance.seed, 30)
            phase1 = run_phase1(evaluator, rng)
            mean_utils.append(
                float(phase1.best_evaluation.utilization.mean())
            )
            all_failures = single_failures(
                instance.network, FailureModel.LINK
            )
            full = full_search_optimize(evaluator, phase1, rng)
            full_eval = evaluator.evaluate_failures(
                full.best_setting, all_failures
            )
            beta_full.append(beta_metric(full_eval))
            for fraction in fractions:
                target = max(
                    1, round(fraction * instance.network.num_arcs)
                )
                selection = select_critical_links(phase1.estimate, target)
                crt = optimize_with_critical_arcs(
                    evaluator, phase1, selection.critical_arcs, rng
                )
                crt_eval = evaluator.evaluate_failures(
                    crt.best_setting, all_failures
                )
                beta_crt[fraction].append(beta_metric(crt_eval))
                beta_phi[fraction].append(
                    phi_gap_percent(crt_eval, full_eval)
                )
        base = {
            "topology": label,
            "avg util": tuple(mean_utils),
            "beta_full": tuple(beta_full),
        }
        for fraction in fractions:
            row = dict(base)
            row["|Ec|/|E|"] = f"{fraction:.0%}"
            row["beta_crt"] = tuple(beta_crt[fraction])
            row["beta_phi_pct"] = tuple(beta_phi[fraction])
            result.rows.append(row)
    return result
