"""Execution presets for the experiment harness.

The paper's searches run for hours per instance (Section IV-E2); the
algorithms here are identical but *anytime*, so presets scale the
instance sizes and search budgets:

* ``quick``   — minutes for the whole suite; small topologies, short
  schedules; used by the pytest benchmarks.
* ``default`` — paper-sized topologies with reduced schedules; tens of
  minutes per experiment.
* ``paper``   — the published parameters (P1=20, P2=10, intervals
  100/30, c=0.1 %, 5 repeats); hours per experiment, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (
    OptimizerConfig,
    SamplingParams,
    SearchParams,
)


@dataclass(frozen=True)
class Preset:
    """One execution scale for experiments.

    Attributes:
        name: preset id.
        repeats: experiment repetitions (the paper uses 5).
        node_scale: multiplier applied to the paper's synthetic-topology
            node counts (the ISP topology is never scaled).
        min_nodes: lower bound after scaling.
        config: optimizer configuration (search + sampling budgets).
        uncertainty_instances: random traffic instances for Fig. 6.
    """

    name: str
    repeats: int
    node_scale: float
    min_nodes: int
    config: OptimizerConfig
    uncertainty_instances: int

    def scaled_nodes(self, paper_nodes: int) -> int:
        """Scale a paper node count to this preset."""
        return max(self.min_nodes, round(paper_nodes * self.node_scale))


QUICK = Preset(
    name="quick",
    repeats=1,
    node_scale=0.4,
    min_nodes=10,
    config=OptimizerConfig(
        search=SearchParams(
            phase1_diversification_interval=6,
            phase1_diversifications=2,
            phase2_diversification_interval=4,
            phase2_diversifications=1,
            improvement_cutoff=0.001,
            arcs_per_iteration_fraction=0.4,
            round_iteration_cap_factor=4,
            max_iterations=300,
        ),
        sampling=SamplingParams(
            tau=2, min_samples_per_link=3, max_extra_samples=1000
        ),
        critical_fraction=0.15,
        keep_acceptable_settings=6,
    ),
    uncertainty_instances=10,
)

DEFAULT = Preset(
    name="default",
    repeats=2,
    node_scale=1.0,
    min_nodes=10,
    config=OptimizerConfig(
        search=SearchParams(
            phase1_diversification_interval=20,
            phase1_diversifications=5,
            phase2_diversification_interval=10,
            phase2_diversifications=4,
            improvement_cutoff=0.001,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=8,
            max_iterations=4000,
        ),
        sampling=SamplingParams(
            tau=6, min_samples_per_link=6, max_extra_samples=8000
        ),
        critical_fraction=0.15,
        keep_acceptable_settings=10,
    ),
    uncertainty_instances=30,
)

PAPER = Preset(
    name="paper",
    repeats=5,
    node_scale=1.0,
    min_nodes=10,
    config=OptimizerConfig(
        search=SearchParams(
            phase1_diversification_interval=100,
            phase1_diversifications=20,
            phase2_diversification_interval=30,
            phase2_diversifications=10,
            improvement_cutoff=0.001,
            arcs_per_iteration_fraction=1.0,
            round_iteration_cap_factor=10,
            max_iterations=1_000_000,
        ),
        sampling=SamplingParams(
            tau=30, min_samples_per_link=10, max_extra_samples=50_000
        ),
        critical_fraction=0.15,
        keep_acceptable_settings=10,
    ),
    uncertainty_instances=100,
)

_PRESETS = {p.name: p for p in (QUICK, DEFAULT, PAPER)}


def get_preset(name_or_preset: "str | Preset") -> Preset:
    """Resolve a preset by name (or pass one through)."""
    if isinstance(name_or_preset, Preset):
        return name_or_preset
    try:
        return _PRESETS[name_or_preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {name_or_preset!r}; "
            f"choose from {sorted(_PRESETS)}"
        ) from None
