"""Section V-B's NearTopo resizing question.

"An obvious question is whether robust optimization would fare better,
if links in the core of the network were resized ... by increasing the
capacity of those congested links so as to bring down their utilization
below 90 % under normal conditions.  After performing such link
resizing, the average number of SLA violations after failures decreases
as expected ... However, the marginal path diversity that is still the
rule in NearTopo implies that even then the benefits of robust
optimization remain limited."
"""

from __future__ import annotations

from repro.analysis.metrics import SlaViolationStats
from repro.core.optimizer import RobustDtrOptimizer
from repro.exp.common import (
    ExperimentResult,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel
from repro.topology.resizing import resize_congested_links


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate the NearTopo resizing comparison."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance("near", nodes, 6.0, seed=seed)
    result = ExperimentResult(
        experiment_id="resize",
        title="NearTopo before/after congested-core resizing (Sec. V-B)",
        preset=preset.name,
        context={"topology": instance.label},
    )

    variants = {"original": instance.network}
    # resize against the loads of a regular-optimized routing
    first = RobustDtrOptimizer(
        instance.network,
        instance.traffic,
        preset.config,
        failure_model=FailureModel.LINK,
        rng=instance_rng(instance.seed, 50),
    ).run()
    evaluator = first.phase1.best_evaluation
    resized_network, report = resize_congested_links(
        instance.network, evaluator.total_loads, utilization_target=0.9
    )
    variants["resized"] = resized_network
    result.context["links resized"] = report.num_resized
    result.context["max util before"] = report.max_utilization_before
    result.context["max util after"] = report.max_utilization_after

    for name, network in variants.items():
        if name == "original":
            outcome = first
        else:
            outcome = RobustDtrOptimizer(
                network,
                instance.traffic,
                preset.config,
                failure_model=FailureModel.LINK,
                rng=instance_rng(instance.seed, 51),
            ).run()
        from repro.core.evaluation import DtrEvaluator

        oracle = DtrEvaluator(network, instance.traffic, preset.config)
        rob = SlaViolationStats.from_failures(
            oracle.evaluate_failures(
                outcome.robust_setting, outcome.all_failures
            )
        )
        reg = SlaViolationStats.from_failures(
            oracle.evaluate_failures(
                outcome.regular_setting, outcome.all_failures
            )
        )
        result.rows.append(
            {
                "network": name,
                "avg viol (R)": rob.mean,
                "avg viol (NR)": reg.mean,
                "top-10% (R)": rob.top10_mean,
                "top-10% (NR)": reg.top10_mean,
            }
        )
    return result
