"""Fig. 6: sensitivity to traffic uncertainty (Section V-F).

Routings are computed on *base* traffic matrices and evaluated on
*perturbed* ones:

* panels (a)/(b) — Gaussian random fluctuation (ε = 0.2) on an instance
  loaded to 0.90 maximum utilization;
* panels (c)/(d) — the download hot-spot incident model (10 % servers,
  50 % clients, surge factors U[2, 6]) at 0.74 maximum utilization.

For the top-10 % worst failures the mean SLA violations and
throughput-cost are reported for "Robust (perturbed)", "No Robust
(perturbed)" and the "Robust (base)" reference.  The paper's conclusion:
robustness to failures survives traffic uncertainty.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import FigureData, Series
from repro.core.weights import WeightSetting
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset
from repro.scenarios import ScenarioSet
from repro.traffic.uncertainty import (
    HotspotMode,
    HotspotSpec,
    fluctuate_traffic,
    hotspot,
)

#: Gaussian fluctuation magnitude (paper: 0.2).
EPSILON = 0.2


def _top_failures(
    evaluator, setting: WeightSetting, failures: ScenarioSet, fraction=0.1
) -> list:
    """The worst ``fraction`` of failure scenarios for a setting."""
    evaluation = evaluator.evaluate_failures(setting, failures)
    order = np.argsort(-evaluation.violations, kind="stable")
    k = max(1, round(fraction * len(failures)))
    return [failures[int(i)] for i in order[:k]]


def _mean_series_over_instances(
    evaluators, setting: WeightSetting, scenarios
) -> tuple[np.ndarray, np.ndarray]:
    """Mean violations and Phi per scenario across perturbed instances."""
    viols = np.zeros((len(evaluators), len(scenarios)))
    phis = np.zeros_like(viols)
    for i, evaluator in enumerate(evaluators):
        for j, scenario in enumerate(scenarios):
            outcome = evaluator.evaluate(setting, scenario)
            viols[i, j] = outcome.sla.violations
            phis[i, j] = outcome.cost.phi
    return viols.mean(axis=0), phis.mean(axis=0)


def _panel_pair(
    result: ExperimentResult,
    preset,
    seed: int,
    model: str,
    max_util: float,
    fig_ids: tuple[str, str],
) -> None:
    """Build one uncertainty model's (violations, Phi) panel pair."""
    nodes = preset.scaled_nodes(30)
    instance = make_instance(
        "rand",
        nodes,
        6.0,
        seed=seed,
        target_utilization=max_util,
        utilization_statistic="max",
    )
    outcome = run_arms(instance, preset.config, seed=seed)
    evaluator = evaluator_for(instance, preset.config)

    rng = instance_rng(instance.seed, 40 if model == "fluctuation" else 41)
    perturbed = []
    for _ in range(preset.uncertainty_instances):
        if model == "fluctuation":
            traffic = fluctuate_traffic(instance.traffic, EPSILON, rng)
        else:
            traffic = hotspot(
                instance.traffic,
                rng,
                HotspotSpec(mode=HotspotMode.DOWNLOAD),
            )
        perturbed.append(evaluator.with_traffic(traffic))

    scenarios = _top_failures(
        evaluator, outcome.regular_setting, outcome.all_failures
    )
    rob_v, rob_p = _mean_series_over_instances(
        perturbed, outcome.robust_setting, scenarios
    )
    reg_v, reg_p = _mean_series_over_instances(
        perturbed, outcome.regular_setting, scenarios
    )
    base_v = np.asarray(
        [
            evaluator.evaluate(outcome.robust_setting, s).sla.violations
            for s in scenarios
        ],
        dtype=float,
    )
    base_p = np.asarray(
        [
            evaluator.evaluate(outcome.robust_setting, s).cost.phi
            for s in scenarios
        ]
    )

    phi_peak = max(rob_p.max(), reg_p.max(), base_p.max(), 1e-12)
    result.figures.append(
        FigureData(
            figure_id=fig_ids[0],
            xlabel="sorted top-10% failure link id",
            ylabel="SLA violations",
            series=(
                Series("Robust (Perturbed TM)", rob_v),
                Series("No Robust (Perturbed TM)", reg_v),
                Series("Robust (Base TM)", base_v),
            ),
        )
    )
    result.figures.append(
        FigureData(
            figure_id=fig_ids[1],
            xlabel="sorted top-10% failure link id",
            ylabel="throughput-sensitive traffic cost (normalized)",
            series=(
                Series("Robust (Perturbed TM)", rob_p / phi_peak),
                Series("No Robust (Perturbed TM)", reg_p / phi_peak),
                Series("Robust (Base TM)", base_p / phi_peak),
            ),
        )
    )
    result.rows.append(
        {
            "model": model,
            "max util": max_util,
            "mean viol R(pert)": float(rob_v.mean()),
            "mean viol NR(pert)": float(reg_v.mean()),
            "mean viol R(base)": float(base_v.mean()),
        }
    )


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 6 (all four panels)."""
    preset = get_preset(preset)
    result = ExperimentResult(
        experiment_id="fig6",
        title="Sensitivity of robust routing to traffic uncertainty",
        preset=preset.name,
        context={
            "epsilon": EPSILON,
            "testing instances": preset.uncertainty_instances,
        },
    )
    _panel_pair(
        result, preset, seed, "fluctuation", 0.90, ("fig6a", "fig6b")
    )
    _panel_pair(
        result, preset, seed, "hotspot", 0.74, ("fig6c", "fig6d")
    )
    return result
