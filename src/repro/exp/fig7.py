"""Fig. 7: robustness against node failures (Section V-F).

Three routings are compared: regular ("No Robust"), link-failure-robust
(this paper's Phase 2) and node-failure-robust (Phase 2 targeting all
single node failures, the "exhaustive" comparator).

Panels (a)/(b): per-node-failure SLA violations and throughput cost —
the node-optimized routing wins, but the link-robust routing still vastly
outperforms the oblivious one.  Panels (c)/(d): the reverse check on the
top-10 % link failures — node-optimized routing can perform poorly there,
so node-robustness is no substitute for link-robustness.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import FigureData, Series
from repro.core.baselines import node_failure_optimize
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import single_node_failures


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 7 (all four panels)."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance(
        "rand",
        nodes,
        6.0,
        seed=seed,
        target_utilization=0.80,
        utilization_statistic="max",
    )
    outcome = run_arms(instance, preset.config, seed=seed)
    evaluator = evaluator_for(instance, preset.config)
    rng = instance_rng(instance.seed, 42)
    node_robust = node_failure_optimize(evaluator, outcome.phase1, rng)

    node_failures = single_node_failures(instance.network)
    settings = {
        "Robust (node failure)": node_robust.best_setting,
        "Robust (link failure)": outcome.robust_setting,
        "No Robust": outcome.regular_setting,
    }

    result = ExperimentResult(
        experiment_id="fig7",
        title="Performance under node failures vs link failures",
        preset=preset.name,
        context={
            "topology": instance.label,
            "node scenarios": len(node_failures),
            "link scenarios": len(outcome.all_failures),
        },
    )

    # Panels (a) and (b): node-failure scenarios, sorted by violations.
    node_series_v = []
    node_series_p = []
    phi_peak = 1e-12
    evaluations = {}
    for name, setting in settings.items():
        evaluation = evaluator.evaluate_failures(setting, node_failures)
        evaluations[name] = evaluation
        phi_peak = max(phi_peak, evaluation.phi_values.max())
    for name, evaluation in evaluations.items():
        order = np.argsort(-evaluation.violations, kind="stable")
        node_series_v.append(
            Series(name, evaluation.violations[order].astype(float))
        )
        node_series_p.append(
            Series(name, evaluation.phi_values[order] / phi_peak)
        )
        result.rows.append(
            {
                "routing": name,
                "scenario set": "node failures",
                "mean violations": float(evaluation.violations.mean()),
                "top-10%": evaluation.top_fraction_mean_violations(),
            }
        )
    result.figures.append(
        FigureData(
            figure_id="fig7a",
            xlabel="sorted failure node id",
            ylabel="SLA violations",
            series=tuple(node_series_v),
        )
    )
    result.figures.append(
        FigureData(
            figure_id="fig7b",
            xlabel="sorted failure node id",
            ylabel="throughput-sensitive traffic cost (normalized)",
            series=tuple(node_series_p),
        )
    )

    # Panels (c) and (d): top-10% link failures, node-robust vs link-robust.
    link_eval_link = evaluator.evaluate_failures(
        outcome.robust_setting, outcome.all_failures
    )
    link_eval_node = evaluator.evaluate_failures(
        node_robust.best_setting, outcome.all_failures
    )
    k = max(1, round(0.1 * len(outcome.all_failures)))
    order = np.argsort(-link_eval_node.violations, kind="stable")[:k]
    phi_peak_link = max(
        link_eval_link.phi_values.max(),
        link_eval_node.phi_values.max(),
        1e-12,
    )
    result.figures.append(
        FigureData(
            figure_id="fig7c",
            xlabel="sorted top-10% failure link id",
            ylabel="SLA violations",
            series=(
                Series(
                    "Robust (node failure)",
                    link_eval_node.violations[order].astype(float),
                ),
                Series(
                    "Robust (link failure)",
                    link_eval_link.violations[order].astype(float),
                ),
            ),
        )
    )
    result.figures.append(
        FigureData(
            figure_id="fig7d",
            xlabel="sorted top-10% failure link id",
            ylabel="throughput-sensitive traffic cost (normalized)",
            series=(
                Series(
                    "Robust (node failure)",
                    link_eval_node.phi_values[order] / phi_peak_link,
                ),
                Series(
                    "Robust (link failure)",
                    link_eval_link.phi_values[order] / phi_peak_link,
                ),
            ),
        )
    )
    for name, evaluation in (
        ("Robust (node failure)", link_eval_node),
        ("Robust (link failure)", link_eval_link),
    ):
        result.rows.append(
            {
                "routing": name,
                "scenario set": "link failures",
                "mean violations": float(evaluation.violations.mean()),
                "top-10%": evaluation.top_fraction_mean_violations(),
            }
        )
    return result
