"""Command-line experiment runner.

Usage::

    repro-exp --list
    repro-exp table2 --preset quick --seed 0
    repro-exp all --preset default

Each experiment prints the table rows and figure series the corresponding
paper artifact reports.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Callable

from repro.exp.common import ExperimentResult

#: Registered experiment ids: paper artifacts in paper order, then the
#: supporting/extension experiments (Sections IV-C, V-B, V-F footnote 16,
#: and DESIGN.md's ablations).
EXPERIMENTS: tuple[str, ...] = (
    "table1",
    "table1_load",
    "timing",
    "table2",
    "fig3",
    "fig4",
    "table3",
    "table4",
    "fig5a",
    "fig5bc",
    "fig5d",
    "table5",
    "fig6",
    "fig7",
    "selectors",
    "resize",
    "diversity",
    "multi_failure",
    "ablation",
)


def load_experiment(
    experiment_id: str,
) -> Callable[..., ExperimentResult]:
    """Import an experiment module and return its ``run`` callable."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.exp.{experiment_id}")
    return module.run


def run_experiment(
    experiment_id: str, preset: str = "quick", seed: int = 0
) -> ExperimentResult:
    """Run one experiment and return its result."""
    return load_experiment(experiment_id)(preset=preset, seed=seed)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description=(
            "Regenerate the tables and figures of 'Balancing "
            "Performance, Robustness and Flexibility in Routing Systems'."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (or 'all')",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("quick", "default", "paper"),
        help="execution scale (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0

    targets = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for experiment_id in targets:
        start = time.perf_counter()
        result = run_experiment(
            experiment_id, preset=args.preset, seed=args.seed
        )
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
