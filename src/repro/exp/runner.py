"""Command-line experiment runner.

Usage::

    repro-exp --list
    repro-exp table2 --preset quick --seed 0
    repro-exp table2 --preset quick --jobs 4
    repro-exp scenarios --scenarios srlg,multi2,linkxsurge
    repro-exp all --preset default

Each experiment prints the table rows and figure series the corresponding
paper artifact reports.  ``--jobs`` fans scenario sweeps out across
worker processes (0 = one per CPU); results are bit-identical to serial
runs.  ``--scenarios`` selects the composed scenario families of the
``scenarios`` experiment (see :mod:`repro.scenarios.generators`).
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import sys
import time
from typing import Callable

from repro.exp.common import ExperimentResult
from repro.exp.presets import get_preset

#: Registered experiment ids: paper artifacts in paper order, then the
#: supporting/extension experiments (Sections IV-C, V-B, V-F footnote 16,
#: and DESIGN.md's ablations).
EXPERIMENTS: tuple[str, ...] = (
    "table1",
    "table1_load",
    "timing",
    "table2",
    "fig3",
    "fig4",
    "table3",
    "table4",
    "fig5a",
    "fig5bc",
    "fig5d",
    "table5",
    "fig6",
    "fig7",
    "selectors",
    "resize",
    "diversity",
    "multi_failure",
    "scenarios",
    "ablation",
)


def load_experiment(
    experiment_id: str,
) -> Callable[..., ExperimentResult]:
    """Import an experiment module and return its ``run`` callable."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.exp.{experiment_id}")
    return module.run


def run_experiment(
    experiment_id: str,
    preset: str = "quick",
    seed: int = 0,
    jobs: int | None = None,
    backend: str | None = None,
    sweep_batch: str | None = None,
    scenarios: str | None = None,
) -> ExperimentResult:
    """Run one experiment and return its result.

    Args:
        experiment_id: registered experiment id.
        preset: execution-scale preset name (or a Preset object).
        seed: base seed.
        jobs: evaluation workers; None keeps the preset's setting, 0
            means one worker per CPU.
        backend: routing kernel backend (``auto``/``python``/``vector``);
            None keeps the preset's setting.  Execution-only: results
            are identical whichever backend runs.
        sweep_batch: scenario-axis sweep batching mode
            (``auto``/``on``/``off``); None keeps the preset's setting.
            Execution-only: sweeps are bit-identical either way.
        scenarios: scenario-family spec for the ``scenarios``
            experiment (e.g. ``"srlg,multi2,linkxsurge"``); None keeps
            its default.  Rejected for other experiments.
    """
    resolved = get_preset(preset)
    overrides: dict[str, object] = {}
    if jobs is not None:
        overrides["n_jobs"] = jobs
    if backend is not None:
        overrides["routing_backend"] = backend
    if sweep_batch is not None:
        overrides["sweep_batching"] = sweep_batch
    if overrides:
        config = resolved.config.replace(
            execution=dataclasses.replace(
                resolved.config.execution, **overrides
            )
        )
        resolved = dataclasses.replace(resolved, config=config)
    kwargs: dict[str, object] = {}
    if scenarios is not None:
        if experiment_id != "scenarios":
            raise ValueError(
                "--scenarios only applies to the 'scenarios' experiment"
            )
        kwargs["scenarios"] = scenarios
    return load_experiment(experiment_id)(
        preset=resolved, seed=seed, **kwargs
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description=(
            "Regenerate the tables and figures of 'Balancing "
            "Performance, Robustness and Flexibility in Routing Systems'."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (or 'all')",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("quick", "default", "paper"),
        help="execution scale (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="evaluation workers (0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("auto", "python", "vector"),
        help=(
            "routing kernel backend (default: the preset's, normally "
            "auto = size-adaptive; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--sweep-batch",
        default=None,
        choices=("auto", "on", "off"),
        help=(
            "scenario-axis sweep batching (default: the preset's, "
            "normally auto = batch multi-scenario sweeps; results are "
            "bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        metavar="SPEC",
        help=(
            "scenario families for the 'scenarios' experiment: a "
            "comma-separated list of "
            "link|arc|node|srlg|multi<k>|regional|surge|hotspot|rescale, "
            "with AxB for failure-x-traffic cross products "
            "(e.g. srlg,multi2,linkxsurge; default: srlg,surge)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids"
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one worker per CPU)")
    if args.scenarios is not None and args.experiment != "scenarios":
        parser.error("--scenarios only applies to the 'scenarios' experiment")

    if args.list or not args.experiment:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0

    targets = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for experiment_id in targets:
        start = time.perf_counter()
        result = run_experiment(
            experiment_id,
            preset=args.preset,
            seed=args.seed,
            jobs=args.jobs,
            backend=args.backend,
            sweep_batch=args.sweep_batch,
            scenarios=args.scenarios,
        )
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
