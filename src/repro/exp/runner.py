"""Command-line experiment runner.

Usage::

    repro-exp --list
    repro-exp table2 --preset quick --seed 0
    repro-exp table2 --preset quick --jobs 4
    repro-exp scenarios --scenarios srlg,multi2,linkxsurge
    repro-exp table2 --hosts local:4
    repro-exp serve-host --bind 0.0.0.0 --port 7777
    repro-exp all --preset default

Each experiment prints the table rows and figure series the corresponding
paper artifact reports.  ``--jobs`` fans scenario sweeps out across
worker processes (0 = one per CPU); results are bit-identical to serial
runs.  ``--scenarios`` selects the composed scenario families of the
``scenarios`` experiment (see :mod:`repro.scenarios.generators`).
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import sys
import time
from pathlib import Path
from typing import Callable

from repro.core.checkpoint import OptimizerInterrupted
from repro.core.resilience import global_stats, reset_global_stats
from repro.exp.common import (
    ArmControl,
    ExperimentResult,
    ShardSpec,
    set_arm_control,
)
from repro.exp.presets import get_preset
from repro.routing.backend import numba_available

#: Exit code of a run stopped by SIGINT/SIGTERM after writing its
#: checkpoint (EX_TEMPFAIL: rerun with ``--resume`` to continue).
EXIT_INTERRUPTED = 75

#: Exit code of a run that *completed with valid (bit-identical)
#: results* but only by degrading work to the serial path — tasks were
#: quarantined after exhausting retries, or a sweep deadline expired.
#: Plain retries that succeeded exit 0; hard failures raise (exit 1).
#: See docs/RESILIENCE.md for the full taxonomy.
EXIT_DEGRADED = 76

#: Registered experiment ids: paper artifacts in paper order, then the
#: supporting/extension experiments (Sections IV-C, V-B, V-F footnote 16,
#: and DESIGN.md's ablations).
EXPERIMENTS: tuple[str, ...] = (
    "table1",
    "table1_load",
    "timing",
    "table2",
    "fig3",
    "fig4",
    "table3",
    "table4",
    "fig5a",
    "fig5bc",
    "fig5d",
    "table5",
    "fig6",
    "fig7",
    "selectors",
    "resize",
    "diversity",
    "multi_failure",
    "scenarios",
    "ablation",
)


def load_experiment(
    experiment_id: str,
) -> Callable[..., ExperimentResult]:
    """Import an experiment module and return its ``run`` callable."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.exp.{experiment_id}")
    return module.run


def run_experiment(
    experiment_id: str,
    preset: str = "quick",
    seed: int = 0,
    jobs: int | None = None,
    backend: str | None = None,
    sweep_batch: str | None = None,
    scenarios: str | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    sweep_deadline: float | None = None,
    hosts: str | None = None,
) -> ExperimentResult:
    """Run one experiment and return its result.

    Args:
        experiment_id: registered experiment id.
        preset: execution-scale preset name (or a Preset object).
        seed: base seed.
        jobs: evaluation workers; None keeps the preset's setting, 0
            means one worker per CPU.
        backend: routing kernel backend (``auto``/``python``/
            ``vector``/``numba``); None keeps the preset's setting.
            ``numba`` needs the optional JIT dependency (the ``[jit]``
            extra).  Execution-only: results are identical whichever
            backend runs.
        sweep_batch: scenario-axis sweep batching mode
            (``auto``/``on``/``off``); None keeps the preset's setting.
            Execution-only: sweeps are bit-identical either way.
        scenarios: scenario-family spec for the ``scenarios``
            experiment (e.g. ``"srlg,multi2,linkxsurge"``); None keeps
            its default.  Rejected for other experiments.
        max_retries: dispatch retries per parallel sweep task before
            quarantine; None keeps the preset's setting.  Execution-
            only, like every resilience knob: recovered and degraded
            runs stay bit-identical.
        task_timeout: per-task deadline in seconds; None keeps the
            preset's setting.
        sweep_deadline: whole-sweep deadline in seconds; None keeps
            the preset's setting.
        hosts: distributed sweep host pool (``"local:N"`` or
            ``"host:port,host:port"``); selects ``executor="hosts"``.
            Execution-only: results are bit-identical to serial runs
            (see docs/PERFORMANCE.md, "Distributed sweeps").
    """
    resolved = get_preset(preset)
    overrides: dict[str, object] = {}
    if jobs is not None:
        overrides["n_jobs"] = jobs
    if backend is not None:
        overrides["routing_backend"] = backend
    if sweep_batch is not None:
        overrides["sweep_batching"] = sweep_batch
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    if task_timeout is not None:
        overrides["task_timeout"] = task_timeout
    if sweep_deadline is not None:
        overrides["sweep_deadline"] = sweep_deadline
    if hosts is not None:
        overrides["executor"] = "hosts"
        overrides["hosts"] = hosts
    if overrides:
        config = resolved.config.replace(
            execution=dataclasses.replace(
                resolved.config.execution, **overrides
            )
        )
        resolved = dataclasses.replace(resolved, config=config)
    kwargs: dict[str, object] = {}
    if scenarios is not None:
        if experiment_id != "scenarios":
            raise ValueError(
                "--scenarios only applies to the 'scenarios' experiment"
            )
        kwargs["scenarios"] = scenarios
    return load_experiment(experiment_id)(
        preset=resolved, seed=seed, **kwargs
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description=(
            "Regenerate the tables and figures of 'Balancing "
            "Performance, Robustness and Flexibility in Routing Systems'."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (or 'all'), or 'serve-host' to run a sweep host",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("quick", "default", "paper"),
        help="execution scale (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="evaluation workers (0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("auto", "python", "vector", "numba"),
        help=(
            "routing kernel backend (default: the preset's, normally "
            "auto = size-adaptive; numba requires the optional [jit] "
            "extra; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--sweep-batch",
        default=None,
        choices=("auto", "on", "off"),
        help=(
            "scenario-axis sweep batching (default: the preset's, "
            "normally auto = batch multi-scenario sweeps; results are "
            "bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help=(
            "dispatch retries per parallel sweep task before it is "
            "quarantined to the serial path (default: the preset's, "
            "normally 2; results are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-task deadline for parallel sweep tasks; a task "
            "exceeding it is retried on a recycled pool (default: none)"
        ),
    )
    parser.add_argument(
        "--sweep-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "whole-sweep deadline; once exhausted the rest of a sweep "
            f"degrades to the serial path and the run exits "
            f"{EXIT_DEGRADED} (default: none)"
        ),
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="SPEC",
        help=(
            "distribute scenario sweeps across sweep hosts: "
            "'local:N' forks N localhost hosts, 'host:port,host:port' "
            "connects to running 'repro-exp serve-host' servers; "
            "results are bit-identical to serial runs"
        ),
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1",
        metavar="ADDR",
        help=(
            "serve-host only: interface to listen on (default "
            "127.0.0.1; use 0.0.0.0 to serve other machines)"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="serve-host only: TCP port (default 0 = ephemeral, printed)",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        metavar="SPEC",
        help=(
            "scenario families for the 'scenarios' experiment: a "
            "comma-separated list of "
            "link|arc|node|srlg|multi<k>|regional|surge|hotspot|rescale, "
            "with AxB for failure-x-traffic cross products "
            "(e.g. srlg,multi2,linkxsurge; default: srlg,surge)"
        ),
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="i/N",
        help=(
            "compute only every Nth optimization arm (1-based shard i "
            "of N); other arms return deferred placeholders.  Combine "
            "with --arm-store and a merge run to reassemble the full "
            "result bit-identically"
        ),
    )
    parser.add_argument(
        "--arm-store",
        default=None,
        metavar="DIR",
        help=(
            "directory of per-arm result artifacts: computed arms are "
            "saved there, present artifacts are loaded instead of "
            "recomputed (the merge mechanism for sharded runs)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "write per-arm optimizer checkpoints here (periodic and on "
            "SIGINT/SIGTERM); an interrupted run exits with code "
            f"{EXIT_INTERRUPTED}"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume each arm from its checkpoint in --checkpoint-dir "
            "when present (bit-identical to an uninterrupted run)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        metavar="K",
        help="iterations between periodic checkpoint writes (default 25)",
    )
    parser.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help=argparse.SUPPRESS,  # CI/testing hook: SIGTERM at tick N
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids"
    )
    args = parser.parse_args(argv)

    if args.experiment == "serve-host":
        if not 0 <= args.port < 65536:
            parser.error("--port must be in [0, 65535]")
        from repro.core.distributed import HostWorker

        worker = HostWorker(args.bind, args.port)
        print(
            f"[serve-host listening on {args.bind}:{worker.port}]",
            flush=True,
        )
        try:
            worker.serve_forever()
        except KeyboardInterrupt:
            pass
        return 0

    if args.hosts is not None:
        from repro.routing.backend import parse_hosts

        try:
            parse_hosts(args.hosts)
        except ValueError as exc:
            parser.error(f"--hosts: {exc}")
        if args.jobs is not None:
            parser.error(
                "--jobs and --hosts are mutually exclusive "
                "(hosts own the sweep fan-out)"
            )

    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one worker per CPU)")
    if args.backend == "numba" and not numba_available():
        parser.error(
            "--backend numba requires the optional numba dependency; "
            "install it with 'pip install numba' (or the [jit] extra) "
            "or use --backend auto/vector"
        )
    if args.max_retries is not None and args.max_retries < 0:
        parser.error("--max-retries must be >= 0 (0 disables retries)")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    if args.sweep_deadline is not None and args.sweep_deadline <= 0:
        parser.error("--sweep-deadline must be positive")
    if args.scenarios is not None and args.experiment != "scenarios":
        parser.error("--scenarios only applies to the 'scenarios' experiment")
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.interrupt_after is not None and args.checkpoint_dir is None:
        parser.error("--interrupt-after requires --checkpoint-dir")
    if args.checkpoint_every < 1:
        parser.error("--checkpoint-every must be >= 1")
    shard = None
    if args.shard is not None:
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as exc:
            parser.error(str(exc))

    if args.list or not args.experiment:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0

    control = None
    if (
        shard is not None
        or args.arm_store is not None
        or args.checkpoint_dir is not None
    ):
        control = ArmControl(
            shard=shard,
            store=Path(args.arm_store) if args.arm_store else None,
            checkpoint_dir=(
                Path(args.checkpoint_dir) if args.checkpoint_dir else None
            ),
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            interrupt_after=args.interrupt_after,
        )

    targets = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    previous = set_arm_control(control)
    reset_global_stats()
    try:
        for experiment_id in targets:
            if control is not None:
                control.reset(experiment_id)
            start = time.perf_counter()
            try:
                result = run_experiment(
                    experiment_id,
                    preset=args.preset,
                    seed=args.seed,
                    jobs=args.jobs,
                    backend=args.backend,
                    sweep_batch=args.sweep_batch,
                    scenarios=args.scenarios,
                    max_retries=args.max_retries,
                    task_timeout=args.task_timeout,
                    sweep_deadline=args.sweep_deadline,
                    hosts=args.hosts,
                )
            except OptimizerInterrupted as interrupted:
                print(
                    f"[{experiment_id} interrupted; checkpoint saved to "
                    f"{interrupted.path}; rerun with --resume to continue]"
                )
                return EXIT_INTERRUPTED
            elapsed = time.perf_counter() - start
            print(result.render())
            if control is not None:
                print(
                    f"[arms: computed={len(control.computed)} "
                    f"loaded={len(control.loaded)} "
                    f"deferred={len(control.deferred)} "
                    f"degraded={len(control.degraded)}]"
                )
            print(f"\n[{experiment_id} finished in {elapsed:.1f}s]\n")
    finally:
        set_arm_control(previous)
    stats = global_stats()
    if stats.total_failures or stats.degraded:
        print(
            "[resilience: "
            + " ".join(
                f"{name}={value}"
                for name, value in stats.as_dict().items()
                if value
            )
            + "]"
        )
    if stats.degraded:
        # Results are valid and bit-identical, but part of the work ran
        # in failure-recovery mode — surface it without failing the run.
        return EXIT_DEGRADED
    return 0


if __name__ == "__main__":
    sys.exit(main())
