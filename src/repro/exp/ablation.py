"""Ablations of the criticality methodology's design choices.

DESIGN.md calls out three knobs the paper fixes by judgment:

* the left-tail fraction (footnote 9: smallest 10 % of costs);
* the failure-emulation band ``q`` (0.7, trading emulation fidelity
  against sample volume);
* the weight universe ``w_max`` (search-space size vs granularity).

Each ablation re-runs Phase 1 + Algorithm 1 + Phase 2 with one knob
moved and reports realized robustness, holding everything else fixed.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.metrics import beta_metric
from repro.core.baselines import optimize_with_critical_arcs
from repro.core.phase1 import run_phase1
from repro.core.selection import select_critical_links
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel, single_failures

#: (knob, values) ablated one at a time.
ABLATIONS: tuple[tuple[str, tuple[float, ...]], ...] = (
    ("left_tail_fraction", (0.05, 0.10, 0.25)),
    ("q", (0.5, 0.7, 0.9)),
    ("w_max", (10, 20, 40)),
)


def _config_with(preset, knob: str, value):
    config = preset.config
    if knob == "left_tail_fraction":
        return config.replace(
            sampling=dataclasses.replace(
                config.sampling, left_tail_fraction=float(value)
            )
        )
    if knob == "q":
        return config.replace(
            weights=dataclasses.replace(config.weights, q=float(value))
        )
    if knob == "w_max":
        return config.replace(
            weights=dataclasses.replace(config.weights, w_max=int(value))
        )
    raise ValueError(f"unknown knob {knob!r}")


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Run all three ablations on one RandTopo instance."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance("rand", nodes, 6.0, seed=seed)
    result = ExperimentResult(
        experiment_id="ablation",
        title="Methodology ablations: left tail, q, w_max",
        preset=preset.name,
        context={"topology": instance.label},
    )
    all_failures = single_failures(instance.network, FailureModel.LINK)
    for knob, values in ABLATIONS:
        for value in values:
            config = _config_with(preset, knob, value)
            evaluator = evaluator_for(instance, config)
            rng = instance_rng(instance.seed, 70)
            phase1 = run_phase1(evaluator, rng)
            target = max(
                1,
                round(
                    config.critical_fraction * instance.network.num_arcs
                ),
            )
            selection = select_critical_links(phase1.estimate, target)
            phase2 = optimize_with_critical_arcs(
                evaluator,
                phase1,
                selection.critical_arcs,
                instance_rng(instance.seed, 71),
            )
            evaluation = evaluator.evaluate_failures(
                phase2.best_setting, all_failures
            )
            result.rows.append(
                {
                    "knob": knob,
                    "value": value,
                    "|Ec|": len(selection),
                    "samples": phase1.store.total_samples,
                    "beta (avg viol)": beta_metric(evaluation),
                }
            )
    return result
