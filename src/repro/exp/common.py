"""Shared experiment harness: instances, arms, and result rendering.

Every experiment module builds problem *instances* (topology + traffic)
via :func:`make_instance`, runs optimization *arms* (robust / regular /
baseline variants), and packages rows + figure series into an
:class:`ExperimentResult` that the benchmarks print and EXPERIMENTS.md
records.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.series import FigureData, render_series
from repro.analysis.tables import render_kv, render_table
from repro.config import OptimizerConfig
from repro.core.checkpoint import config_fingerprint
from repro.core.criticality import CriticalityEstimate
from repro.core.evaluation import (
    DtrEvaluator,
    ScenarioCosts,
    ScenarioEvaluation,
)
from repro.core.lexicographic import CostPair
from repro.core.local_search import RecordedSetting, SearchStats
from repro.core.optimizer import RobustDtrOptimizer, RobustRoutingResult
from repro.core.parallel import make_evaluator
from repro.core.resilience import global_stats
from repro.core.phase1 import Phase1Result
from repro.core.phase2 import Phase2Result, RobustConstraints
from repro.core.sampling import CostSampleStore
from repro.core.selection import CriticalSelection
from repro.core.sla import SlaOutcome
from repro.core.weights import WeightSetting
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import NORMAL, FailureModel
from repro.routing.network import Network
from repro.scenarios.scenario import ScenarioSet
from repro.topology import (
    isp_topology,
    near_topology,
    powerlaw_topology,
    rand_topology,
    scale_to_diameter,
)
from repro.traffic import DtrTraffic, dtr_traffic, scale_to_utilization

#: Default SLA bound used by the paper (seconds).
DEFAULT_THETA = 0.025

#: Seed namespace separating topology/traffic/search randomness.
_TOPOLOGY_STREAM = 1
_TRAFFIC_STREAM = 2
_SEARCH_STREAM = 3


@dataclass(frozen=True)
class Instance:
    """One problem instance: a topology carrying scaled two-class traffic.

    Attributes:
        network: the topology (delays already scaled to the SLA bound).
        traffic: the two-class traffic, scaled to the target utilization.
        label: e.g. ``"RandTopo[30,180]"``.
        seed: the instance seed (controls topology and traffic draws).
    """

    network: Network
    traffic: DtrTraffic
    label: str
    seed: int


def instance_rng(seed: int, stream: int) -> np.random.Generator:
    """Independent generator for one randomness stream of an instance."""
    return np.random.default_rng(np.random.SeedSequence((seed, stream)))


def make_topology(
    kind: str,
    num_nodes: int,
    mean_degree: float,
    seed: int,
    theta: float = DEFAULT_THETA,
    diameter_fraction: float = 1.0,
) -> Network:
    """Build one of the paper's topology families, delay-scaled.

    Args:
        kind: ``"rand"``, ``"near"``, ``"pl"`` or ``"isp"``.
        num_nodes: node count (ignored for ``"isp"``).
        mean_degree: target mean degree (for ``"pl"`` the BA attachment
            count is ``round(mean_degree / 2)``; ignored for ``"isp"``).
        seed: topology randomness seed.
        theta: SLA bound the propagation diameter is scaled to.
        diameter_fraction: scale diameter to ``fraction * theta``.
    """
    rng = instance_rng(seed, _TOPOLOGY_STREAM)
    if kind == "rand":
        net = rand_topology(num_nodes, mean_degree, rng)
    elif kind == "near":
        net = near_topology(num_nodes, mean_degree, rng)
    elif kind == "pl":
        attachments = max(1, round(mean_degree / 2))
        net = powerlaw_topology(num_nodes, attachments, rng)
    elif kind == "isp":
        net = isp_topology()
    else:
        raise ValueError(f"unknown topology kind {kind!r}")
    return scale_to_diameter(net, theta * diameter_fraction)


def make_instance(
    kind: str,
    num_nodes: int,
    mean_degree: float,
    seed: int,
    target_utilization: float = 0.43,
    utilization_statistic: str = "mean",
    theta: float = DEFAULT_THETA,
    delay_fraction: float = 0.3,
    diameter_fraction: float = 1.0,
) -> Instance:
    """Build a full problem instance (topology + scaled traffic)."""
    network = make_topology(
        kind, num_nodes, mean_degree, seed, theta, diameter_fraction
    )
    rng = instance_rng(seed, _TRAFFIC_STREAM)
    traffic = dtr_traffic(
        network.num_nodes, rng, 1.0, delay_fraction=delay_fraction
    )
    traffic = scale_to_utilization(
        network, traffic, target_utilization, utilization_statistic
    )
    label = f"{network.name}[{network.num_nodes},{network.num_arcs}]"
    return Instance(
        network=network, traffic=traffic, label=label, seed=seed
    )


# ----------------------------------------------------------------------
# arm sharding and artifact stores
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard of a deterministic arm partition.

    Arms are numbered by a per-experiment sequence counter; shard
    ``i/N`` (1-based on the command line) owns every arm whose sequence
    number satisfies ``seq % N == i - 1``.  The partition depends on
    nothing but call order, which every shard replays identically, so
    the split is deterministic and exhaustive.

    Attributes:
        index: 0-based shard index.
        count: total number of shards.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= self.index < self.count:
            raise ValueError("shard index out of range")

    @classmethod
    def parse(cls, spec: str) -> "ShardSpec":
        """Parse the CLI form ``"i/N"`` (1-based index)."""
        try:
            index_text, count_text = spec.split("/", 1)
            index, count = int(index_text), int(count_text)
        except ValueError:
            raise ValueError(
                f"invalid shard spec {spec!r}; expected i/N, e.g. 1/2"
            ) from None
        if not 1 <= index <= count:
            raise ValueError(
                f"shard index must lie in [1, {count}], got {index}"
            )
        return cls(index=index - 1, count=count)

    def owns(self, seq: int) -> bool:
        """Whether this shard computes arm ``seq``."""
        return seq % self.count == self.index


@dataclass
class ArmControl:
    """Per-run arm orchestration: sharding, artifacts, checkpoints.

    Installed (via :func:`set_arm_control`) around an experiment run by
    the CLI; :func:`run_arms` consults it to decide, per arm, whether to
    load a stored artifact, compute (with optional checkpointing), or
    defer to another shard.

    Attributes:
        shard: the partition this process computes (None = all arms).
        store: directory of per-arm result artifacts; present artifacts
            are loaded instead of recomputed, computed arms are saved
            (atomically), so a merge run over a populated store rebuilds
            the full table without optimizing anything.
        checkpoint_dir: directory for per-arm optimizer checkpoints.
        resume: resume each arm from its checkpoint when present.
        checkpoint_every: boundaries between periodic checkpoint writes.
        interrupt_after: testing hook forwarded to the optimizer.
        namespace: key prefix, normally the experiment id.
    """

    shard: ShardSpec | None = None
    store: Path | None = None
    checkpoint_dir: Path | None = None
    resume: bool = False
    checkpoint_every: int = 25
    interrupt_after: int | None = None
    namespace: str = "exp"
    #: Arm keys by outcome, for reporting (and CI assertions).
    computed: list[str] = field(default_factory=list)
    loaded: list[str] = field(default_factory=list)
    deferred: list[str] = field(default_factory=list)
    #: Arm keys whose sweeps degraded to the serial path (quarantine or
    #: deadline) — results are still bit-identical, but the operator
    #: should know which arms ran in failure-recovery mode.
    degraded: list[str] = field(default_factory=list)
    _seq: int = 0

    def next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def reset(self, namespace: str) -> None:
        """Start a new experiment's arm sequence."""
        self.namespace = namespace
        self._seq = 0


#: The active arm control, or None for plain in-process computation.
_ARM_CONTROL: ArmControl | None = None


def set_arm_control(control: ArmControl | None) -> ArmControl | None:
    """Install (or clear) the active arm control; returns the previous."""
    global _ARM_CONTROL
    previous = _ARM_CONTROL
    _ARM_CONTROL = control
    return previous


def get_arm_control() -> ArmControl | None:
    """The active arm control (None outside sharded/stored runs)."""
    return _ARM_CONTROL


def _arm_key(
    control: ArmControl,
    seq: int,
    instance: Instance,
    config: OptimizerConfig,
    seed: int,
    critical_fraction: float | None,
    full_search: bool,
    scenarios: "ScenarioSet | None",
) -> str:
    """Stable identity of one arm: sequence plus a content hash.

    The hash covers everything that changes the computed result —
    instance identity, seeds, search configuration (via
    :func:`~repro.core.checkpoint.config_fingerprint`, which excludes
    the execution block so ``--jobs`` does not split stores) and the
    scenario set — so artifacts from a run with different parameters
    can never be silently merged.
    """
    content = hashlib.sha1()
    content.update(
        repr(
            (
                instance.label,
                instance.seed,
                seed,
                critical_fraction,
                full_search,
                scenarios.digest if scenarios is not None else None,
            )
        ).encode()
    )
    content.update(
        config_fingerprint(
            config,
            critical_fraction=critical_fraction,
            full_search=full_search,
        ).encode()
    )
    return f"{control.namespace}-{seq:03d}-{content.hexdigest()[:12]}"


def _deferred_stub(instance: Instance) -> RobustRoutingResult:
    """A placeholder result for an arm another shard owns.

    Carries uniform weights and zeroed costs so downstream rendering
    code runs without optimizing anything; ``deferred=True`` marks it.
    Merge runs never see stubs — they load the owning shard's artifact.
    """
    num_arcs = instance.network.num_arcs
    num_nodes = instance.network.num_nodes
    setting = WeightSetting.uniform(num_arcs)
    zeros = np.zeros(num_arcs)
    evaluation = ScenarioEvaluation(
        scenario=NORMAL,
        cost=CostPair(0.0, 0.0),
        sla=SlaOutcome(0.0, 0, 0, 0),
        loads_delay=zeros,
        loads_tput=zeros,
        arc_delay=zeros,
        pair_delays=np.zeros((num_nodes, num_nodes)),
        utilization=zeros,
    )
    phase1 = Phase1Result(
        best_setting=setting,
        best_cost=CostPair(0.0, 0.0),
        best_evaluation=evaluation,
        pool=(RecordedSetting(setting.copy(), CostPair(0.0, 0.0)),),
        store=CostSampleStore(num_arcs),
        estimate=CriticalityEstimate(
            rho_lam=zeros,
            rho_phi=zeros,
            tail_lam=zeros,
            tail_phi=zeros,
            sample_counts=np.zeros(num_arcs, dtype=int),
        ),
        selection=CriticalSelection((), 0, 0, 0.0, 0.0),
        stats=SearchStats(),
        extra_samples=0,
        rank_converged=True,
    )
    phase2 = Phase2Result(
        best_setting=setting.copy(),
        best_kfail=CostPair(0.0, 0.0),
        normal_cost=CostPair(0.0, 0.0),
        failure_evaluation=ScenarioCosts(()),
        constraints=RobustConstraints(0.0, 0.0, 0.0),
        stats=SearchStats(),
    )
    empty = ScenarioSet(())
    return RobustRoutingResult(
        phase1=phase1,
        phase2=phase2,
        critical_failures=empty,
        all_failures=empty,
        phase1_seconds=0.0,
        phase2_seconds=0.0,
        deferred=True,
    )


def _save_artifact(path: Path, result: RobustRoutingResult) -> None:
    """Write one arm artifact atomically (temp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def run_arms(
    instance: Instance,
    config: OptimizerConfig,
    seed: int,
    critical_fraction: float | None = None,
    full_search: bool = False,
    scenarios: "ScenarioSet | None" = None,
) -> RobustRoutingResult:
    """Run the two-phase optimizer on an instance (robust + regular arms).

    The optimizer's worker pool (if ``config.execution`` requests one) is
    torn down before returning so repeated arms don't accumulate pools.

    With an :class:`ArmControl` installed the call additionally takes
    part in the sharded/stored execution protocol: a stored artifact is
    loaded instead of recomputed, arms owned by other shards return a
    deferred stub, and computed arms checkpoint/resume through the
    optimizer and save their result artifact.  Results are bit-identical
    to the plain path — the control only decides *where* an arm runs.

    Args:
        instance: the problem instance.
        config: optimizer configuration.
        seed: search seed.
        critical_fraction: override the configured ``|Ec| / |E|``.
        full_search: optimize over all single failures (no restriction).
        scenarios: optimize robustness against this explicit
            :class:`~repro.scenarios.ScenarioSet` instead of the paper's
            single-link enumeration.
    """
    control = _ARM_CONTROL
    key = None
    if control is not None:
        seq = control.next_seq()
        key = _arm_key(
            control,
            seq,
            instance,
            config,
            seed,
            critical_fraction,
            full_search,
            scenarios,
        )
        if control.store is not None:
            artifact = control.store / f"{key}.pkl"
            if artifact.exists():
                with open(artifact, "rb") as handle:
                    result = pickle.load(handle)
                control.loaded.append(key)
                return result
        if control.shard is not None and not control.shard.owns(seq):
            control.deferred.append(key)
            return _deferred_stub(instance)

    rng = instance_rng(seed, _SEARCH_STREAM)
    optimizer = RobustDtrOptimizer(
        instance.network,
        instance.traffic,
        config,
        failure_model=FailureModel.LINK,
        rng=rng,
        scenarios=scenarios,
    )
    run_kwargs: dict[str, object] = {}
    if control is not None and control.checkpoint_dir is not None:
        checkpoint = control.checkpoint_dir / f"{key}.ckpt"
        checkpoint.parent.mkdir(parents=True, exist_ok=True)
        run_kwargs["checkpoint"] = checkpoint
        run_kwargs["checkpoint_every"] = control.checkpoint_every
        if control.resume:
            run_kwargs["resume_from"] = checkpoint
        if control.interrupt_after is not None:
            run_kwargs["interrupt_after"] = control.interrupt_after
    stats_before = global_stats()
    try:
        result = optimizer.run(
            critical_fraction=critical_fraction,
            full_search=full_search,
            **run_kwargs,
        )
    finally:
        optimizer.close()
    if control is not None:
        if control.store is not None:
            _save_artifact(control.store / f"{key}.pkl", result)
        control.computed.append(key)
        stats_after = global_stats()
        if (
            stats_after.quarantined_tasks > stats_before.quarantined_tasks
            or stats_after.deadline_degraded_tasks
            > stats_before.deadline_degraded_tasks
        ):
            control.degraded.append(key)
    return result


def evaluator_for(
    instance: Instance, config: OptimizerConfig
) -> DtrEvaluator:
    """A fresh cost oracle for an instance.

    Honors ``config.execution``: a parallel or caching evaluator is
    returned when configured (bit-identical results either way).
    """
    return make_evaluator(instance.network, instance.traffic, config)


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    Attributes:
        experiment_id: e.g. ``"table2"``.
        title: one-line description.
        preset: the preset name used.
        rows: table rows (dicts), ready for ``render_table``.
        figures: figure panels (sorted numeric series).
        context: run parameters worth recording.
    """

    experiment_id: str
    title: str
    preset: str
    rows: list[dict[str, object]] = field(default_factory=list)
    figures: list[FigureData] = field(default_factory=list)
    context: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Render the full experiment output as text."""
        parts = [f"== {self.experiment_id}: {self.title} "
                 f"(preset={self.preset}) =="]
        if self.context:
            parts.append(render_kv(self.context, "parameters:"))
        if self.rows:
            parts.append(render_table(self.rows))
        for figure in self.figures:
            parts.append(render_series(figure))
        return "\n\n".join(parts)


def resolve(preset: "str | Preset") -> Preset:
    """Shorthand re-export of :func:`repro.exp.presets.get_preset`."""
    return get_preset(preset)
