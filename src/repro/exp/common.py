"""Shared experiment harness: instances, arms, and result rendering.

Every experiment module builds problem *instances* (topology + traffic)
via :func:`make_instance`, runs optimization *arms* (robust / regular /
baseline variants), and packages rows + figure series into an
:class:`ExperimentResult` that the benchmarks print and EXPERIMENTS.md
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import FigureData, render_series
from repro.analysis.tables import render_kv, render_table
from repro.config import OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.optimizer import RobustDtrOptimizer, RobustRoutingResult
from repro.core.parallel import make_evaluator
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel
from repro.routing.network import Network
from repro.scenarios.scenario import ScenarioSet
from repro.topology import (
    isp_topology,
    near_topology,
    powerlaw_topology,
    rand_topology,
    scale_to_diameter,
)
from repro.traffic import DtrTraffic, dtr_traffic, scale_to_utilization

#: Default SLA bound used by the paper (seconds).
DEFAULT_THETA = 0.025

#: Seed namespace separating topology/traffic/search randomness.
_TOPOLOGY_STREAM = 1
_TRAFFIC_STREAM = 2
_SEARCH_STREAM = 3


@dataclass(frozen=True)
class Instance:
    """One problem instance: a topology carrying scaled two-class traffic.

    Attributes:
        network: the topology (delays already scaled to the SLA bound).
        traffic: the two-class traffic, scaled to the target utilization.
        label: e.g. ``"RandTopo[30,180]"``.
        seed: the instance seed (controls topology and traffic draws).
    """

    network: Network
    traffic: DtrTraffic
    label: str
    seed: int


def instance_rng(seed: int, stream: int) -> np.random.Generator:
    """Independent generator for one randomness stream of an instance."""
    return np.random.default_rng(np.random.SeedSequence((seed, stream)))


def make_topology(
    kind: str,
    num_nodes: int,
    mean_degree: float,
    seed: int,
    theta: float = DEFAULT_THETA,
    diameter_fraction: float = 1.0,
) -> Network:
    """Build one of the paper's topology families, delay-scaled.

    Args:
        kind: ``"rand"``, ``"near"``, ``"pl"`` or ``"isp"``.
        num_nodes: node count (ignored for ``"isp"``).
        mean_degree: target mean degree (for ``"pl"`` the BA attachment
            count is ``round(mean_degree / 2)``; ignored for ``"isp"``).
        seed: topology randomness seed.
        theta: SLA bound the propagation diameter is scaled to.
        diameter_fraction: scale diameter to ``fraction * theta``.
    """
    rng = instance_rng(seed, _TOPOLOGY_STREAM)
    if kind == "rand":
        net = rand_topology(num_nodes, mean_degree, rng)
    elif kind == "near":
        net = near_topology(num_nodes, mean_degree, rng)
    elif kind == "pl":
        attachments = max(1, round(mean_degree / 2))
        net = powerlaw_topology(num_nodes, attachments, rng)
    elif kind == "isp":
        net = isp_topology()
    else:
        raise ValueError(f"unknown topology kind {kind!r}")
    return scale_to_diameter(net, theta * diameter_fraction)


def make_instance(
    kind: str,
    num_nodes: int,
    mean_degree: float,
    seed: int,
    target_utilization: float = 0.43,
    utilization_statistic: str = "mean",
    theta: float = DEFAULT_THETA,
    delay_fraction: float = 0.3,
    diameter_fraction: float = 1.0,
) -> Instance:
    """Build a full problem instance (topology + scaled traffic)."""
    network = make_topology(
        kind, num_nodes, mean_degree, seed, theta, diameter_fraction
    )
    rng = instance_rng(seed, _TRAFFIC_STREAM)
    traffic = dtr_traffic(
        network.num_nodes, rng, 1.0, delay_fraction=delay_fraction
    )
    traffic = scale_to_utilization(
        network, traffic, target_utilization, utilization_statistic
    )
    label = f"{network.name}[{network.num_nodes},{network.num_arcs}]"
    return Instance(
        network=network, traffic=traffic, label=label, seed=seed
    )


def run_arms(
    instance: Instance,
    config: OptimizerConfig,
    seed: int,
    critical_fraction: float | None = None,
    full_search: bool = False,
    scenarios: "ScenarioSet | None" = None,
) -> RobustRoutingResult:
    """Run the two-phase optimizer on an instance (robust + regular arms).

    The optimizer's worker pool (if ``config.execution`` requests one) is
    torn down before returning so repeated arms don't accumulate pools.

    Args:
        instance: the problem instance.
        config: optimizer configuration.
        seed: search seed.
        critical_fraction: override the configured ``|Ec| / |E|``.
        full_search: optimize over all single failures (no restriction).
        scenarios: optimize robustness against this explicit
            :class:`~repro.scenarios.ScenarioSet` instead of the paper's
            single-link enumeration.
    """
    rng = instance_rng(seed, _SEARCH_STREAM)
    optimizer = RobustDtrOptimizer(
        instance.network,
        instance.traffic,
        config,
        failure_model=FailureModel.LINK,
        rng=rng,
        scenarios=scenarios,
    )
    try:
        return optimizer.run(
            critical_fraction=critical_fraction, full_search=full_search
        )
    finally:
        optimizer.close()


def evaluator_for(
    instance: Instance, config: OptimizerConfig
) -> DtrEvaluator:
    """A fresh cost oracle for an instance.

    Honors ``config.execution``: a parallel or caching evaluator is
    returned when configured (bit-identical results either way).
    """
    return make_evaluator(instance.network, instance.traffic, config)


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    Attributes:
        experiment_id: e.g. ``"table2"``.
        title: one-line description.
        preset: the preset name used.
        rows: table rows (dicts), ready for ``render_table``.
        figures: figure panels (sorted numeric series).
        context: run parameters worth recording.
    """

    experiment_id: str
    title: str
    preset: str
    rows: list[dict[str, object]] = field(default_factory=list)
    figures: list[FigureData] = field(default_factory=list)
    context: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Render the full experiment output as text."""
        parts = [f"== {self.experiment_id}: {self.title} "
                 f"(preset={self.preset}) =="]
        if self.context:
            parts.append(render_kv(self.context, "parameters:"))
        if self.rows:
            parts.append(render_table(self.rows))
        for figure in self.figures:
            parts.append(render_series(figure))
        return "\n\n".join(parts)


def resolve(preset: "str | Preset") -> Preset:
    """Shorthand re-export of :func:`repro.exp.presets.get_preset`."""
    return get_preset(preset)
