"""Table II: SLA violations across topologies, robust vs regular.

The headline robustness comparison: average and worst-top-10 % SLA
violations across all single link failures for the robust routing ("R")
and the regular, failure-oblivious routing ("NR"), plus the price paid —
the normal-condition throughput-cost degradation (bounded by chi = 20 %).
"""

from __future__ import annotations

from repro.analysis.metrics import (
    SlaViolationStats,
    phi_degradation_percent,
)
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset
from repro.exp.table1 import TABLE1_TOPOLOGIES


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Table II."""
    preset = get_preset(preset)
    result = ExperimentResult(
        experiment_id="table2",
        title="Number of SLA violations across topologies (R vs NR)",
        preset=preset.name,
        context={
            "repeats": preset.repeats,
            "target mean utilization": 0.43,
            "chi": preset.config.sampling.chi,
            "|Ec|/|E|": preset.config.critical_fraction,
        },
    )
    for kind, paper_nodes, degree in TABLE1_TOPOLOGIES:
        nodes = (
            paper_nodes if kind == "isp" else preset.scaled_nodes(paper_nodes)
        )
        robust_mean: list[float] = []
        regular_mean: list[float] = []
        robust_top: list[float] = []
        regular_top: list[float] = []
        degradation: list[float] = []
        label = ""
        for repeat in range(preset.repeats):
            instance = make_instance(kind, nodes, degree, seed=seed + repeat)
            label = instance.label
            outcome = run_arms(instance, preset.config, seed=seed + repeat)
            evaluator = evaluator_for(instance, preset.config)
            rob = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.robust_setting, outcome.all_failures
                )
            )
            reg = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.regular_setting, outcome.all_failures
                )
            )
            robust_mean.append(rob.mean)
            regular_mean.append(reg.mean)
            robust_top.append(rob.top10_mean)
            regular_top.append(reg.top10_mean)
            degradation.append(
                phi_degradation_percent(
                    evaluator.evaluate_normal(outcome.robust_setting),
                    evaluator.evaluate_normal(outcome.regular_setting),
                )
            )
        result.rows.append(
            {
                "topology": label,
                "avg SLA viol (R)": tuple(robust_mean),
                "avg SLA viol (NR)": tuple(regular_mean),
                "top-10% (R)": tuple(robust_top),
                "top-10% (NR)": tuple(regular_top),
                "phi degradation %": tuple(degradation),
            }
        )
    return result
