"""Fig. 5b/5c: end-to-end delay distributions as the SLA bound relaxes.

Under *regular* optimization and no failures, the sorted per-SD-pair
delays are plotted for SLA bounds 25, 45 and 100 ms.  In RandTopo (5b)
delays drift upward with the bound — regular optimization spends the
slack on throughput-friendlier long paths, keeping many flows near the
bound (no failure-tolerance margin).  In NearTopo (5c) limited path
diversity mutes the effect.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.metrics import sorted_pair_delays_ms
from repro.analysis.series import FigureData, Series
from repro.core.phase1 import run_phase1
from repro.exp.common import (
    DEFAULT_THETA,
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset

#: SLA bounds plotted (seconds).
FIG5BC_BOUNDS: tuple[float, ...] = (0.025, 0.045, 0.100)


def _panel(
    preset, kind: str, nodes: int, seed: int, figure_id: str
) -> tuple[FigureData, list[dict[str, object]]]:
    """One panel: sorted delays per SLA bound under regular optimization."""
    series = []
    rows: list[dict[str, object]] = []
    for theta in FIG5BC_BOUNDS:
        instance = make_instance(
            kind, nodes, 6.0, seed=seed, theta=DEFAULT_THETA
        )
        config = preset.config.replace(
            sla=dataclasses.replace(preset.config.sla, theta=theta)
        )
        evaluator = evaluator_for(instance, config)
        phase1 = run_phase1(evaluator, instance_rng(instance.seed, 33))
        delays = sorted_pair_delays_ms(phase1.best_evaluation)
        label = f"SLA bound={theta * 1e3:.0f}ms"
        series.append(Series(label, delays))
        rows.append(
            {
                "panel": figure_id,
                "bound (ms)": theta * 1e3,
                "mean delay (ms)": float(delays.mean()),
                "p90 delay (ms)": float(delays[int(0.9 * len(delays))]),
                "max delay (ms)": float(delays.max()),
            }
        )
    figure = FigureData(
        figure_id=figure_id,
        xlabel="sorted SD pair",
        ylabel="end-to-end delay (ms)",
        series=tuple(series),
    )
    return figure, rows


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 5b (RandTopo) and Fig. 5c (NearTopo)."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    result = ExperimentResult(
        experiment_id="fig5bc",
        title="End-to-end delays vs SLA bound under regular optimization",
        preset=preset.name,
        context={"nodes": nodes},
    )
    fig_b, rows_b = _panel(preset, "rand", nodes, seed, "fig5b")
    fig_c, rows_c = _panel(preset, "near", nodes, seed, "fig5c")
    result.figures.extend([fig_b, fig_c])
    result.rows.extend(rows_b + rows_c)
    return result
