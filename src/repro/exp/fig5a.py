"""Fig. 5a: SLA violations at medium and high network load.

Robust vs regular routing on a RandTopo loaded to maximum link
utilization 0.74 (medium) and 0.90 (high).  At high load the paper
enlarges the critical set to ``|Ec|/|E| = 0.25`` for accuracy; violations
rise for everyone (delay margins shrink), but robust optimization keeps
its lead.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import FigureData, Series
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset

#: (label, max-utilization target, |Ec|/|E|) per load level.
LOAD_LEVELS: tuple[tuple[str, float, float | None], ...] = (
    ("Max util=0.74", 0.74, None),
    ("Max util=0.90", 0.90, 0.25),
)


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 5a."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    result = ExperimentResult(
        experiment_id="fig5a",
        title="SLA violations in medium- and highly-loaded networks",
        preset=preset.name,
        context={"nodes": nodes},
    )
    series: list[Series] = []
    for label, max_util, fraction in LOAD_LEVELS:
        instance = make_instance(
            "rand",
            nodes,
            6.0,
            seed=seed,
            target_utilization=max_util,
            utilization_statistic="max",
        )
        outcome = run_arms(
            instance, preset.config, seed=seed, critical_fraction=fraction
        )
        evaluator = evaluator_for(instance, preset.config)
        rob = evaluator.evaluate_failures(
            outcome.robust_setting, outcome.all_failures
        )
        reg = evaluator.evaluate_failures(
            outcome.regular_setting, outcome.all_failures
        )
        rob_sorted = np.sort(rob.violations.astype(float))[::-1]
        reg_sorted = np.sort(reg.violations.astype(float))[::-1]
        series.append(Series(f"Robust ({label})", rob_sorted))
        series.append(Series(f"No Robust ({label})", reg_sorted))
        result.rows.append(
            {
                "load": label,
                "avg viol (R)": float(rob.violations.mean()),
                "avg viol (NR)": float(reg.violations.mean()),
                "top-10% (R)": rob.top_fraction_mean_violations(),
                "top-10% (NR)": reg.top_fraction_mean_violations(),
            }
        )
    result.figures.append(
        FigureData(
            figure_id="fig5a",
            xlabel="sorted failure link id",
            ylabel="SLA violations",
            series=tuple(series),
        )
    )
    return result
