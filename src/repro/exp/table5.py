"""Table V: SLA violations as a function of the SLA bound.

The counter-intuitive result of Section V-E: relaxing the SLA bound does
*not* substitute for robust optimization — under regular optimization a
looser bound often yields *more* violations (flows drift up to the new
bound and link utilization rises; Fig. 5b/5d), while robust optimization
keeps violations near zero throughout.  The propagation diameter is held
fixed at 25 ms (footnote 14) while theta sweeps {25, 30, 45, 60, 100} ms.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.metrics import SlaViolationStats
from repro.analysis.utilization import (
    average_link_utilization,
    average_pair_max_utilization,
)
from repro.exp.common import (
    DEFAULT_THETA,
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset

#: The SLA bounds swept (seconds).
TABLE5_BOUNDS: tuple[float, ...] = (0.025, 0.030, 0.045, 0.060, 0.100)


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Table V."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    result = ExperimentResult(
        experiment_id="table5",
        title="SLA violations in RandTopo as a function of the SLA bound",
        preset=preset.name,
        context={
            "nodes": nodes,
            "repeats": preset.repeats,
            "diameter fixed at": f"{DEFAULT_THETA * 1e3:.0f} ms",
        },
    )
    for theta in TABLE5_BOUNDS:
        reg_viol: list[float] = []
        rob_viol: list[float] = []
        reg_util: list[float] = []
        rob_util: list[float] = []
        reg_max_util: list[float] = []
        rob_max_util: list[float] = []
        for repeat in range(preset.repeats):
            instance = make_instance(
                "rand",
                nodes,
                6.0,
                seed=seed + repeat,
                theta=DEFAULT_THETA,  # diameter stays matched to 25 ms
            )
            config = preset.config.replace(
                sla=dataclasses.replace(preset.config.sla, theta=theta)
            )
            outcome = run_arms(instance, config, seed=seed + repeat)
            evaluator = evaluator_for(instance, config)
            reg_fail = evaluator.evaluate_failures(
                outcome.regular_setting, outcome.all_failures
            )
            rob_fail = evaluator.evaluate_failures(
                outcome.robust_setting, outcome.all_failures
            )
            reg_viol.append(SlaViolationStats.from_failures(reg_fail).mean)
            rob_viol.append(SlaViolationStats.from_failures(rob_fail).mean)
            reg_normal = evaluator.evaluate_normal(outcome.regular_setting)
            rob_normal = evaluator.evaluate_normal(outcome.robust_setting)
            reg_util.append(average_link_utilization(reg_normal))
            rob_util.append(average_link_utilization(rob_normal))
            reg_max_util.append(
                average_pair_max_utilization(
                    evaluator, outcome.regular_setting
                )
            )
            rob_max_util.append(
                average_pair_max_utilization(
                    evaluator, outcome.robust_setting
                )
            )
        result.rows.append(
            {
                "SLA bound (ms)": theta * 1e3,
                "avg viol (NR)": tuple(reg_viol),
                "avg viol (R)": tuple(rob_viol),
                "avg util (NR)": tuple(reg_util),
                "avg util (R)": tuple(rob_util),
                "avg max util (NR)": tuple(reg_max_util),
                "avg max util (R)": tuple(rob_max_util),
            }
        )
    return result
