"""Section IV-C: the paper's selector vs the three prior-art selectors.

The paper motivates its criticality methodology by the failure of the
earlier schemes — random (Yuan [24]), load-based (Fortz [10]) and
threshold/fluctuation-based (Sridharan [23]) — in the DTR setting.  This
experiment gives all four the same Phase-1 information and Phase-2
budget and compares the realized robustness across *all* failures.
"""

from __future__ import annotations

from repro.analysis.metrics import beta_metric
from repro.core.baselines import (
    fluctuation_critical_arcs,
    load_based_critical_arcs,
    optimize_with_critical_arcs,
    random_critical_arcs,
)
from repro.core.phase1 import run_phase1
from repro.core.selection import select_critical_links
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel, single_failures


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Compare critical-link selectors at equal budget."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    result = ExperimentResult(
        experiment_id="selectors",
        title="Critical-link selectors: paper vs prior art (Sec. IV-C)",
        preset=preset.name,
        context={
            "|Ec|/|E|": preset.config.critical_fraction,
            "repeats": preset.repeats,
        },
    )
    metrics: dict[str, list[float]] = {}
    label = ""
    for repeat in range(preset.repeats):
        instance = make_instance("rand", nodes, 6.0, seed=seed + repeat)
        label = instance.label
        evaluator = evaluator_for(instance, preset.config)
        rng = instance_rng(instance.seed, 61)
        phase1 = run_phase1(evaluator, rng)
        target = max(
            1,
            round(
                preset.config.critical_fraction
                * instance.network.num_arcs
            ),
        )
        all_failures = single_failures(instance.network, FailureModel.LINK)
        selectors = {
            "paper (Algorithm 1)": select_critical_links(
                phase1.estimate, target
            ).critical_arcs,
            "random [24]": random_critical_arcs(
                instance.network, target, instance_rng(instance.seed, 62)
            ),
            "load-based [10]": load_based_critical_arcs(
                evaluator, phase1.best_setting, target
            ),
            "fluctuation [23]": fluctuation_critical_arcs(
                phase1.store, target
            ),
        }
        for name, arcs in selectors.items():
            phase2 = optimize_with_critical_arcs(
                evaluator, phase1, arcs, instance_rng(instance.seed, 63)
            )
            evaluation = evaluator.evaluate_failures(
                phase2.best_setting, all_failures
            )
            metrics.setdefault(name, []).append(beta_metric(evaluation))
    for name, values in metrics.items():
        result.rows.append(
            {
                "selector": name,
                "topology": label,
                "beta (avg SLA viol, all failures)": tuple(values),
            }
        )
    return result
