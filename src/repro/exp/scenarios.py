"""Composed scenario sweeps: robustness beyond single link failures.

The paper optimizes against single link failures and spot-checks node
failures, dual-link failures and traffic uncertainty separately.  This
experiment unifies all of them: routings optimized the paper's way
(robust vs regular arms) are evaluated — with no re-optimization —
across any :class:`~repro.scenarios.ScenarioSet` built from the
``--scenarios`` families (SRLGs, k-link, regional, node, surges, cross
products), reporting a per-family breakdown of SLA violations.

The run doubles as the scenario subsystem's CI parity gate: the robust
arm's single-link sweep is recomputed through the legacy-equivalent
ScenarioSet and must match the plain ``FailureSet`` sweep bit for bit
(``RuntimeError`` otherwise), so any drift in the compatibility path
fails the smoke job loudly.
"""

from __future__ import annotations

from repro.analysis.tables import scenario_kind_columns
from repro.core.evaluation import DtrEvaluator, ScenarioCosts
from repro.exp.common import (
    ExperimentResult,
    evaluator_for,
    make_instance,
    run_arms,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import single_link_failures
from repro.scenarios import ScenarioSet, build_scenarios

#: Families swept when the CLI does not specify ``--scenarios``.
DEFAULT_SPEC = "srlg,surge"


def _assert_legacy_parity(instance, config, setting) -> None:
    """Bit-exact gate: legacy FailureSet sweep == wrapped ScenarioSet sweep.

    Runs on a fresh, *uncached* serial evaluator so the wrapped sweep
    genuinely re-executes the Scenario-unwrapping routing path instead
    of replaying routing-cache entries written by the direct sweep.
    """
    evaluator = DtrEvaluator(instance.network, instance.traffic, config)
    legacy = single_link_failures(instance.network)
    wrapped = ScenarioSet.from_failures(legacy)
    direct = evaluator.evaluate_failures(setting, legacy)
    via_set = evaluator.evaluate_scenarios(setting, wrapped)
    for old, new in zip(direct.evaluations, via_set.evaluations):
        if (
            old.cost.lam != new.cost.lam
            or old.cost.phi != new.cost.phi
            or old.sla.violations != new.sla.violations
        ):
            raise RuntimeError(
                "legacy parity violated: ScenarioSet sweep diverged from "
                f"FailureSet sweep at {old.scenario.label!r}"
            )


def _arm_row(name: str, costs: ScenarioCosts) -> dict[str, object]:
    row: dict[str, object] = {
        "routing": name,
        "avg violations": costs.mean_violations(),
        "top-10%": costs.top_fraction_mean_violations(),
    }
    row.update(scenario_kind_columns(costs))
    return row


def run(
    preset: "str | Preset" = "quick",
    seed: int = 0,
    scenarios: str = DEFAULT_SPEC,
) -> ExperimentResult:
    """Sweep robust vs regular routings across composed scenario families.

    Args:
        preset: execution-scale preset.
        seed: instance + scenario-sampling seed.
        scenarios: ``--scenarios`` spec (comma-separated families,
            ``x`` for failure×traffic cross products).
    """
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance("rand", nodes, 6.0, seed=seed)
    outcome = run_arms(instance, preset.config, seed=seed)
    evaluator = evaluator_for(instance, preset.config)

    scenario_set = build_scenarios(
        scenarios, instance.network, seed=instance.seed
    )
    rob = evaluator.evaluate_scenarios(
        outcome.robust_setting, scenario_set
    )
    reg = evaluator.evaluate_scenarios(
        outcome.regular_setting, scenario_set
    )
    _assert_legacy_parity(instance, preset.config, outcome.robust_setting)

    result = ExperimentResult(
        experiment_id="scenarios",
        title="Composed scenario sweep: robustness beyond single links",
        preset=preset.name,
        context={
            "topology": instance.label,
            "families": scenarios,
            "scenarios": len(scenario_set),
            "kinds": ", ".join(scenario_set.kinds()),
            "set digest": scenario_set.digest,
            "legacy parity": "exact",
        },
    )
    result.rows.append(_arm_row("Robust (single-link)", rob))
    result.rows.append(_arm_row("No Robust", reg))
    return result
