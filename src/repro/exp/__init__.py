"""Experiment harness: one module per paper table/figure plus presets.

See :data:`repro.exp.runner.EXPERIMENTS` for the full index and
DESIGN.md for the experiment-to-module mapping.
"""

from repro.exp.common import (
    ExperimentResult,
    Instance,
    evaluator_for,
    make_instance,
    make_topology,
    run_arms,
)
from repro.exp.presets import DEFAULT, PAPER, QUICK, Preset, get_preset
from repro.exp.runner import EXPERIMENTS, run_experiment

__all__ = [
    "DEFAULT",
    "EXPERIMENTS",
    "ExperimentResult",
    "Instance",
    "PAPER",
    "Preset",
    "QUICK",
    "evaluator_for",
    "get_preset",
    "make_instance",
    "make_topology",
    "run_arms",
    "run_experiment",
]
