"""Fig. 5d: max utilization of delay-carrying links vs the SLA bound.

Under regular optimization in RandTopo, for each single link failure the
maximum utilization among links carrying delay-sensitive traffic is
plotted for SLA bounds 30 ms and 100 ms.  The looser bound admits longer
delay paths, raising link loads — the mechanism behind Table V's "more
violations with a looser bound" result.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.series import FigureData, Series
from repro.analysis.utilization import max_delay_carrying_utilization
from repro.core.phase1 import run_phase1
from repro.exp.common import (
    DEFAULT_THETA,
    ExperimentResult,
    evaluator_for,
    instance_rng,
    make_instance,
)
from repro.exp.presets import Preset, get_preset
from repro.routing.failures import FailureModel, single_failures

#: SLA bounds compared (seconds).
FIG5D_BOUNDS: tuple[float, ...] = (0.030, 0.100)


def run(
    preset: "str | Preset" = "quick", seed: int = 0
) -> ExperimentResult:
    """Regenerate Fig. 5d."""
    preset = get_preset(preset)
    nodes = preset.scaled_nodes(30)
    instance = make_instance(
        "rand", nodes, 6.0, seed=seed, theta=DEFAULT_THETA
    )
    failures = single_failures(instance.network, FailureModel.LINK)
    result = ExperimentResult(
        experiment_id="fig5d",
        title="Max utilization of links carrying delay traffic (regular opt.)",
        preset=preset.name,
        context={"topology": instance.label},
    )
    series = []
    for theta in FIG5D_BOUNDS:
        config = preset.config.replace(
            sla=dataclasses.replace(preset.config.sla, theta=theta)
        )
        evaluator = evaluator_for(instance, config)
        phase1 = run_phase1(evaluator, instance_rng(instance.seed, 34))
        values = np.asarray(
            [
                max_delay_carrying_utilization(
                    evaluator, phase1.best_setting, scenario
                )
                for scenario in failures
            ]
        )
        label = f"SLA bound={theta * 1e3:.0f}ms"
        series.append(Series(label, values))
        result.rows.append(
            {
                "bound (ms)": theta * 1e3,
                "mean max util": float(values.mean()),
                "peak max util": float(values.max()),
            }
        )
    result.figures.append(
        FigureData(
            figure_id="fig5d",
            xlabel="failure link id",
            ylabel="max util of links carrying delay traffic",
            series=tuple(series),
        )
    )
    return result
