"""Parameter objects for the DTR robust-routing reproduction.

Every numeric constant from the paper lives here, in frozen dataclasses,
so experiments can state exactly which knobs they turn.  Defaults are the
values used in Sections IV-E and V of the paper:

* delay model (Eq. 1): packet size ``kappa`` = 1500 bytes, low-load
  threshold ``mu`` = 0.95, linearization point 0.99;
* SLA cost (Eq. 2): ``B1`` = 100, ``B2`` = 1, target bound ``theta`` = 25 ms;
* robust-optimization slack (Eq. 6): ``chi`` = 0.2;
* sampling (Section IV-D1): ``q`` = 0.7, ``z`` = 0.5, ``tau`` = 30,
  convergence threshold ``e`` = 2, left tail = smallest 10 % of samples;
* search schedule: Phase 1 diversification interval 100, ``P1`` = 20;
  Phase 2 interval 30, ``P2`` = 10; improvement cutoff ``c`` = 0.1 %.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.routing.backend import (
    VALID_EXECUTORS,
    validate_backend,
    validate_hosts,
    validate_resilience,
    validate_sweep_batching,
)


@dataclass(frozen=True)
class DelayModelParams:
    """Parameters of the link-delay model of Eq. (1).

    Attributes:
        packet_size_bits: average packet size ``kappa`` expressed in bits
            (paper: 1500 bytes = 12000 bits).
        low_load_threshold: utilization ``mu`` below which queueing delay
            is treated as zero (paper: 0.95 for backbone links).
        linearization_utilization: utilization beyond which the M/M/1 term
            ``x/(C-x)`` is replaced by its tangent line to avoid the
            singularity at ``x -> C`` (paper footnote 3: 0.99).
    """

    packet_size_bits: float = 1500 * 8
    low_load_threshold: float = 0.95
    linearization_utilization: float = 0.99

    def __post_init__(self) -> None:
        if self.packet_size_bits <= 0:
            raise ValueError("packet_size_bits must be positive")
        if not 0 < self.low_load_threshold <= self.linearization_utilization:
            raise ValueError(
                "need 0 < low_load_threshold <= linearization_utilization"
            )
        if self.linearization_utilization >= 1.0:
            raise ValueError("linearization_utilization must be < 1")


@dataclass(frozen=True)
class SlaParams:
    """Parameters of the SLA penalty of Eq. (2).

    Attributes:
        theta: end-to-end delay bound in seconds (paper: 25 ms, the
            approximate U.S. coast-to-coast propagation delay).
        b1: fixed penalty per violated SD pair (paper: 100).
        b2: penalty per second of delay in excess of ``theta`` (paper: 1,
            with delays measured in ms; we keep the paper's ms scale by
            expressing the excess in milliseconds).
        disconnect_excess_factor: a failure that disconnects an SD pair is
            charged as a violation whose excess is capped at
            ``disconnect_excess_factor * theta`` (policy choice documented
            in DESIGN.md; the paper does not specify).
    """

    theta: float = 0.025
    b1: float = 100.0
    b2: float = 1.0
    disconnect_excess_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise ValueError("theta must be positive")
        if self.b1 < 0 or self.b2 < 0:
            raise ValueError("penalties must be non-negative")
        if self.disconnect_excess_factor <= 0:
            raise ValueError("disconnect_excess_factor must be positive")


@dataclass(frozen=True)
class WeightParams:
    """Link-weight universe for the local search.

    Attributes:
        w_min: smallest allowed weight (paper-style OSPF weights: 1).
        w_max: largest allowed weight; perturbations that push both class
            weights of an arc into ``[q * w_max, w_max]`` emulate a failure
            of that arc (Section IV-D1).  The default of 20 follows the
            Fortz–Thorup search convention — small weight universes make
            the local search far more effective than RFC-scale 65535.
        q: failure-emulation fraction (paper: 0.7).
    """

    w_min: int = 1
    w_max: int = 20
    q: float = 0.7

    def __post_init__(self) -> None:
        if self.w_min < 1 or self.w_max <= self.w_min:
            raise ValueError("need 1 <= w_min < w_max")
        if not 0 < self.q < 1:
            raise ValueError("q must lie in (0, 1)")

    @property
    def failure_emulation_floor(self) -> int:
        """Smallest weight counting as failure-like, ``ceil(q * w_max)``."""
        import math

        return math.ceil(self.q * self.w_max)


@dataclass(frozen=True)
class SamplingParams:
    """Cost-sample collection and convergence (Section IV-D1).

    Attributes:
        z: acceptance slack for the delay class; a sample is recorded when
            the pre-perturbation delay cost is within ``z * B1`` of the
            best cost found so far (paper: 0.5).
        chi: acceptance slack for the throughput class, shared with Eq. (6)
            (paper: 0.2).
        tau: average number of new samples per link between two rank
            re-evaluations (paper: 30).
        rank_convergence_threshold: ``e``; criticality ranks are converged
            when the gamma-weighted rank-change index of *both* classes is
            at most this value (paper: 2).
        left_tail_fraction: fraction of smallest costs forming the left
            tail of the failure-cost distribution (paper footnote 9: 0.1).
        min_samples_per_link: below this many samples a link's criticality
            estimate is considered unreliable and Phase 1b keeps sampling.
        max_extra_samples: hard cap on Phase 1b sample generation, so the
            reproduction terminates even on pathological instances.
    """

    z: float = 0.5
    chi: float = 0.2
    tau: int = 30
    rank_convergence_threshold: float = 2.0
    left_tail_fraction: float = 0.1
    min_samples_per_link: int = 8
    max_extra_samples: int = 20000

    def __post_init__(self) -> None:
        if not 0 <= self.z <= 1:
            raise ValueError("z must lie in [0, 1]")
        if self.chi < 0:
            raise ValueError("chi must be non-negative")
        if self.tau < 1:
            raise ValueError("tau must be >= 1")
        if not 0 < self.left_tail_fraction <= 0.5:
            raise ValueError("left_tail_fraction must lie in (0, 0.5]")
        if self.min_samples_per_link < 2:
            raise ValueError("min_samples_per_link must be >= 2")


@dataclass(frozen=True)
class SearchParams:
    """Local-search schedule for Phases 1 and 2 (Sections IV-A, V-A3).

    Attributes:
        phase1_diversification_interval: iterations without improvement
            before Phase 1 restarts from a fresh random weight setting
            (paper: 100).
        phase1_diversifications: ``P1``, minimum number of diversifications
            whose improvements must all fall below ``improvement_cutoff``
            before Phase 1 stops (paper: 20).
        phase2_diversification_interval: Phase 2 counterpart (paper: 30).
        phase2_diversifications: ``P2`` (paper: 10).
        improvement_cutoff: the relative cost-improvement threshold ``c``
            (paper: 0.1 % = 0.001).
        arcs_per_iteration_fraction: fraction of arcs whose weights are
            perturbed during one local-search iteration; the paper sweeps
            all links each iteration (1.0).
        round_iteration_cap_factor: a diversification round is forcibly
            ended after ``interval * factor`` iterations even while small
            improvements keep trickling in (keeps the stop rule
            well-defined when the Phi landscape has long gentle slopes).
        max_iterations: global safety cap per phase so presets can bound
            wall-clock time.
    """

    phase1_diversification_interval: int = 100
    phase1_diversifications: int = 20
    phase2_diversification_interval: int = 30
    phase2_diversifications: int = 10
    improvement_cutoff: float = 0.001
    arcs_per_iteration_fraction: float = 1.0
    round_iteration_cap_factor: int = 10
    max_iterations: int = 1_000_000

    def __post_init__(self) -> None:
        for name in (
            "phase1_diversification_interval",
            "phase1_diversifications",
            "phase2_diversification_interval",
            "phase2_diversifications",
            "round_iteration_cap_factor",
            "max_iterations",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.improvement_cutoff < 0:
            raise ValueError("improvement_cutoff must be non-negative")
        if not 0 < self.arcs_per_iteration_fraction <= 1:
            raise ValueError("arcs_per_iteration_fraction must lie in (0, 1]")


@dataclass(frozen=True)
class ExecutionParams:
    """How the cost oracle executes: parallelism and routing-cache knobs.

    These parameters never change *what* is computed — evaluations are
    bit-identical for every setting — only how fast it happens (see
    docs/PERFORMANCE.md).

    Attributes:
        n_jobs: worker count for failure-sweep fan-out; 1 runs fully
            serial, 0 resolves to one worker per available CPU.
        executor: ``"process"`` (default; sidesteps the GIL, needed for
            real speedup on the pure-Python propagation kernels),
            ``"thread"`` (cheaper startup, useful for tests and platforms
            without fork) or ``"hosts"`` (multi-host scenario-shard
            sweeps over a TCP host pool — see
            :mod:`repro.core.distributed` and the ``hosts`` knob).
        chunk_size: scenarios per parallel task; None picks a chunk count
            of roughly four tasks per worker for load balancing.
        routing_cache: enable the incremental routing cache that reuses
            class routings across weight settings and scenarios.
        cache_size: maximum number of cached class routings.
        incremental_routing: answer single-arc weight moves and failure
            scenarios with the delta-rerouting core
            (:class:`repro.routing.incremental.IncrementalRouter`):
            only destinations the delta can affect are re-routed.
            Bit-identical to from-scratch routing; off switches every
            evaluation back to full recomputation (for A/B checks).
        routing_backend: kernel backend for routing propagations —
            ``"python"`` (per-destination pure-Python loops, fastest at
            backbone scale), ``"vector"`` (array-native destination
            batches, fastest on Rocketfuel-class instances),
            ``"numba"`` (JIT-compiled batch kernels; requires the
            optional ``numba`` dependency — the ``[jit]`` extra — and
            raises here at validation time when it is not importable)
            or ``"auto"`` (default: per-call choice from node/arc/
            destination counts; selects ``"numba"`` only above its
            crossover and only when importable, so environments
            without numba resolve exactly as before; see
            ``repro.routing.backend``).  Backends are bit-identical on
            integer-weight instances.
        sweep_batching: run scenario sweeps through the batch sweep
            engine (:mod:`repro.routing.sweep`): scenarios are grouped
            by structural footprint and their outstanding kernel work
            runs once per group instead of once per scenario, and the
            parallel evaluator publishes sweep state through shared
            memory instead of pickling it per task.  ``"auto"``
            (default) batches every sweep of at least two scenarios,
            ``"on"`` forces batching, ``"off"`` restores the legacy
            per-scenario path.  Requires ``incremental_routing``;
            bit-identical to the per-scenario path on integer-weight
            instances either way.
        max_retries: extra dispatch attempts per parallel sweep task
            after a worker failure (crash, raise, timeout) before the
            task is quarantined to the serial in-process path; 0
            quarantines on first failure.  Like every execution knob
            this is cost-neutral: degraded tasks produce bit-identical
            results (see docs/RESILIENCE.md).
        retry_backoff: base seconds of exponential backoff between
            dispatch attempts (deterministic jitter; 0 retries
            immediately).
        task_timeout: per-task deadline in seconds; a task exceeding
            it counts as failed (and the pool, possibly holding a
            wedged worker, is recycled).  None disables.
        sweep_deadline: whole-sweep deadline in seconds; once
            exhausted the rest of the sweep degrades to the serial
            path so it still completes.  None disables.
        fault_plan: deterministic fault-injection plan
            (:class:`repro.core.faults.FaultPlan`) installed in the
            pool workers — chaos testing only; None (always, outside
            tests) injects nothing.
        hosts: host pool spec for ``executor="hosts"`` — ``"local:N"``
            spawns N localhost host processes (testable on one box),
            ``"host:port,host:port"`` connects to running
            ``repro-exp serve-host`` servers.  Required with the hosts
            executor, rejected with any other.  Like every execution
            knob the host set never changes a computed bit, and it is
            excluded from checkpoint fingerprints so a run may resume
            under a different host set.
    """

    n_jobs: int = 1
    executor: str = "process"
    chunk_size: int | None = None
    routing_cache: bool = True
    cache_size: int = 512
    incremental_routing: bool = True
    routing_backend: str = "auto"
    sweep_batching: str = "auto"
    max_retries: int = 2
    retry_backoff: float = 0.05
    task_timeout: float | None = None
    sweep_deadline: float | None = None
    fault_plan: "object | None" = None
    hosts: str | None = None

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be >= 0 (0 = one per CPU)")
        if self.executor not in VALID_EXECUTORS:
            raise ValueError(
                f"executor must be one of {', '.join(VALID_EXECUTORS)}"
            )
        validate_hosts(self.hosts, self.executor)
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        validate_backend(self.routing_backend)
        validate_sweep_batching(self.sweep_batching)
        if self.sweep_batching == "on" and not self.incremental_routing:
            # The batch engine rides the incremental routers; a forced
            # "on" without them would silently run the legacy path.
            raise ValueError(
                "sweep_batching='on' requires incremental_routing "
                "(use 'auto' to batch only when it applies)"
            )
        if self.sweep_batching == "on" and self.routing_backend == "python":
            # The engine's cross-scenario kernels are the vector stack;
            # a forced python backend must keep its A/B isolation.
            raise ValueError(
                "sweep_batching='on' conflicts with "
                "routing_backend='python' (the batch engine runs the "
                "vector kernels; use 'auto' for either knob)"
            )
        validate_resilience(
            self.max_retries,
            self.retry_backoff,
            self.task_timeout,
            self.sweep_deadline,
        )
        if self.fault_plan is not None:
            # Deferred import: repro.core pulls this module in during
            # its own initialization, and the default (None) plan —
            # every non-chaos construction — must not re-enter it.
            from repro.core.faults import FaultPlan

            if not isinstance(self.fault_plan, FaultPlan):
                raise ValueError(
                    "fault_plan must be a repro.core.faults.FaultPlan"
                )

    @property
    def resolved_jobs(self) -> int:
        """The effective worker count (``n_jobs=0`` means all CPUs)."""
        if self.n_jobs == 0:
            return os.cpu_count() or 1
        return self.n_jobs


@dataclass(frozen=True)
class OptimizerConfig:
    """Full configuration of the robust DTR optimizer.

    Bundles the four parameter groups plus the critical-set size target.

    Attributes:
        critical_fraction: ``|Ec| / |E|`` target for Phase 1c
            (paper default in Section V: 0.15).
        keep_acceptable_settings: how many acceptable weight settings from
            Phase 1 are retained as Phase 2 starting points.
        execution: parallelism and caching knobs (cost-neutral: they never
            change computed values).
    """

    delay: DelayModelParams = DelayModelParams()
    sla: SlaParams = SlaParams()
    weights: WeightParams = WeightParams()
    sampling: SamplingParams = SamplingParams()
    search: SearchParams = SearchParams()
    execution: ExecutionParams = ExecutionParams()
    critical_fraction: float = 0.15
    keep_acceptable_settings: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.critical_fraction <= 1:
            raise ValueError("critical_fraction must lie in (0, 1]")
        if self.keep_acceptable_settings < 1:
            raise ValueError("keep_acceptable_settings must be >= 1")

    def replace(self, **changes: object) -> "OptimizerConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)


PAPER_CONFIG = OptimizerConfig()
"""The configuration used throughout the paper's Section V."""
