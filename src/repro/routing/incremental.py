"""Incremental delta-rerouting: dynamic SPF + per-destination load deltas.

The local searches of Phases 1 and 2 evaluate candidates that differ from
the incumbent by exactly **one arc's weight**, and scenario sweeps
evaluate failures that kill anything from a single link to a whole SRLG
or region — :meth:`IncrementalRouter.route_scenario` answers *multi-arc*
scenarios exactly (the affected-destination test and the dynamic-SPF cone
repair are per-scenario, not per-arc), so the composed scenario families
of :mod:`repro.scenarios` ride the same fast path as single-link sweeps.
Traffic variants never share a router: a router is bound to one demand
matrix (checked via :meth:`IncrementalRouter.routes_demands`), which
keeps the propagation-memo keys traffic-variant-aware by construction.

Routing a candidate or scenario from scratch recomputes every
destination's distance column, DAG mask and load propagation even though
a small delta can only touch the destinations whose shortest paths the
changed arcs participate in (or could start participating in).
:class:`IncrementalRouter` exploits that:

* it holds the routing of one traffic class **decomposed per
  destination** — distance columns, DAG-mask rows, per-destination load
  contributions and undelivered volumes;
* on a delta it first runs the *affected-destination test* on the cached
  distance columns: a weight **increase** on arc ``(u, v)`` can only
  affect destinations whose DAG contains the arc (an off-DAG arc getting
  heavier changes nothing — the limit of that argument, weight to
  infinity, is the classic unused-arc failure shortcut); a weight
  **decrease** to ``w`` can only affect destinations ``t`` with
  ``dist(u, t) >= w + dist(v, t)`` (otherwise the arc is strictly worse
  than what ``u`` already has, for every source);
* only the affected destinations get a fresh single-destination Dijkstra
  (on the reversed graph), mask-row rebuild and load re-propagation.

Results are **bit-identical** to :meth:`repro.routing.engine.
RoutingEngine.route_class`.  Two properties make that possible: arc
weights are integer-valued, so every path length is exact in float64 and
"mathematically unchanged" implies "bitwise unchanged"; and the shared
``loads`` / ``undelivered`` totals are *re-folded* from the
per-destination contributions in ascending destination order — the same
float summation order ``route_class`` uses — rather than patched with a
subtract-and-add (float addition is not associative, so in-place
patching would drift by ulps).  ``tests/routing/test_incremental.py``
pins the parity property-style.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.routing.backend import (
    maybe_warm_numba,
    resolve_backend,
    routing_kernels,
    validate_backend,
)
from repro.routing.engine import ClassRouting
from repro.routing.failures import (
    NORMAL,
    FailureScenario,
    disabled_arc_mask,
)
from repro.routing.fastpath import (
    PropagationPlan,
    destination_mask_rows,
    fast_propagate_loads,
)
from repro.routing.network import Network
from repro.routing.spf import (
    _PY_DIJKSTRA_MAX_COLS,
    SPF_TOLERANCE,
    _dijkstra_to,
    _reverse_adjacency,
    distance_columns,
)
from repro.routing.vectorized import BatchPlan, build_schedule

#: Weight-delta count above which :meth:`IncrementalRouter.sync` rebuilds
#: from scratch instead of replaying per-arc deltas.  Local-search sync
#: patterns are 1 arc (accepted move), 2 arcs (rejected move + next
#: candidate) or 4 (Phase-1b base hops); beyond that a rebuild's single
#: batched Dijkstra wins.
SYNC_DELTA_LIMIT = 4

#: Capacity of the per-destination propagation memo (entries).
PROPAGATION_MEMO_SIZE = 16384


class _PropagationMemo:
    """Exact memo of per-destination load propagations.

    A destination's load contribution and undelivered volume are a pure
    function of ``(destination, mask row, distance column)`` for a fixed
    demand matrix, so results are keyed by those bytes *exactly* — a hit
    replays the identical floats, no approximation involved.  The sweep
    access pattern makes this pay: one candidate's scenario states
    reappear for the next candidate whenever the move arc does not touch
    them, and rejected moves revert straight back to memoized states.
    """

    __slots__ = ("_entries", "_max_entries", "hits", "misses")

    def __init__(self, max_entries: int = PROPAGATION_MEMO_SIZE) -> None:
        self._entries: OrderedDict[
            tuple[int, bytes, bytes], tuple[np.ndarray, float]
        ] = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(
        self, t: int, mask_row: np.ndarray, dist_col: np.ndarray
    ) -> tuple[np.ndarray, float] | None:
        key = (t, mask_row.tobytes(), dist_col.tobytes())
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self,
        t: int,
        mask_row: np.ndarray,
        dist_col: np.ndarray,
        contrib: np.ndarray,
        undelivered: float,
    ) -> None:
        key = (t, mask_row.tobytes(), dist_col.tobytes())
        self._entries[key] = (contrib, undelivered)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)


@dataclass
class RouterStats:
    """Counters describing how much work the router actually did.

    Attributes:
        rebuilds: full from-scratch builds (constructor + oversized syncs).
        deltas: single-arc weight deltas applied.
        destinations_recomputed: destination columns recomputed across all
            deltas and scenario routes (Dijkstra + mask + propagation).
        destinations_reused: destination columns served from cache by
            scenario routes.
        scenario_routes: :meth:`IncrementalRouter.route_scenario` calls.
    """

    rebuilds: int = 0
    deltas: int = 0
    destinations_recomputed: int = 0
    destinations_reused: int = 0
    scenario_routes: int = 0


@dataclass
class _ScenarioStructure:
    """The structural half of one scenario delta, before load propagation.

    Everything :meth:`IncrementalRouter.route_scenario` derives from the
    base state *except* the per-destination load propagations: the
    scenario's destination set, (possibly demand-zeroed) demand matrix,
    repaired distance matrix and mask rows, plus which positions were hit
    and therefore still need their contribution recomputed.  The sweep
    engine (:mod:`repro.routing.sweep`) builds one structure per scenario
    and batches the outstanding propagations of a whole scenario group
    through a single kernel invocation.

    Attributes:
        scenario: the failure scenario this structure answers.
        dest_s: demand-carrying destinations under the scenario.
        demands: the demand matrix actually routed.
        dist: full ``(N, N)`` distance matrix (repaired columns patched).
        masks: per-destination DAG mask rows under the scenario.
        arc_hit: per-position "a failed arc sat on this DAG" flags.
        hit_list: ``arc_hit`` as a plain list (fold-loop form).
        dem_list: per-position "a removed node fed this destination"
            flags (None when no nodes were removed).
        need: positions whose contribution must be recomputed.
        base_contribs: base-state contribution rows, position-aligned.
        base_und: base-state undelivered volumes, position-aligned.
    """

    scenario: FailureScenario
    dest_s: np.ndarray
    demands: np.ndarray
    dist: np.ndarray
    masks: np.ndarray
    arc_hit: np.ndarray
    hit_list: list
    dem_list: "list | None"
    need: list
    base_contribs: np.ndarray
    base_und: np.ndarray


@dataclass(frozen=True)
class ScenarioRouting:
    """A scenario routing plus what the delta test managed to reuse.

    Attributes:
        routing: the :class:`ClassRouting` under the scenario,
            bit-identical to a from-scratch ``route_class`` call.
        reusable: destinations whose distance column and mask row are
            identical to the base (normal) routing's — the evaluator can
            reuse their path-delay columns too when arc delays allow.
    """

    routing: ClassRouting
    reusable: frozenset[int] = field(default_factory=frozenset)


class IncrementalRouter:
    """Maintains one traffic class's routing under evolving weights.

    The router always represents the **failure-free** routing of its
    demand matrix under the current weights; failure scenarios are
    answered as one-shot deltas (:meth:`route_scenario`) that never
    mutate the base state.

    Args:
        network: the topology.
        demands: ``(N, N)`` demand matrix of this class (validated once
            here, never again).
        weights: initial per-arc weights, integer-valued >= 1.
        plan: optional prebuilt propagation plan (shared with the engine).
        backend: propagation-kernel backend for *batch* recomputations
            (full rebuilds and many-destination scenario deltas); see
            :mod:`repro.routing.backend`.  Single-destination deltas
            always use the python kernels — the batch machinery cannot
            pay for itself there — which is safe because the kernels
            are bit-identical.
    """

    def __init__(
        self,
        network: Network,
        demands: np.ndarray,
        weights: np.ndarray,
        plan: PropagationPlan | None = None,
        backend: str = "auto",
    ) -> None:
        self._net = network
        self._plan = plan or PropagationPlan.for_network(network)
        self._backend = validate_backend(backend)
        self._batch_plan = BatchPlan.for_network(network)
        # JIT warm-up before the first (possibly timed) propagation;
        # no-op without numba, idempotent with it.  Workers of a
        # parallel evaluator construct routers after unpickling and
        # recompile (or cache-load) here — compiled state is
        # module-global, never pickled.
        maybe_warm_numba(backend, network.num_nodes, network.num_arcs)
        demands = np.asarray(demands, dtype=np.float64)
        if demands.shape != (network.num_nodes, network.num_nodes):
            raise ValueError("demand matrix shape must be (N, N)")
        self._demands = demands
        self._dest = np.flatnonzero(demands.sum(axis=0) > 0.0)
        self._weights = np.empty(0)
        self._dist_cols = np.empty((0, 0))
        self._masks = np.empty((0, 0), dtype=bool)
        self._contribs = np.empty((0, 0))
        self._und = np.empty(0)
        self._routing: ClassRouting | None = None
        self._memo = _PropagationMemo()
        #: Weight-independent per-scenario structures (failed arcs,
        #: disabled mask + list form, survivor out-arcs per failed arc)
        #: — failure sets are swept thousands of times, scenarios are
        #: hashable.
        self._scenario_info: dict[FailureScenario, tuple] = {}
        #: Current weights as a plain list (for the in-process Dijkstra);
        #: rebuilt lazily after weight changes.
        self._weights_list: list[float] | None = None
        self._weights_integral = False
        self._arc_src_list = [int(u) for u in network.arc_src]
        self._rev_adjacency = _reverse_adjacency(network)
        self.stats = RouterStats()
        self._rebuild(weights)

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The routed topology."""
        return self._net

    @property
    def weights(self) -> np.ndarray:
        """The current per-arc weights (read-only view)."""
        view = self._weights.view()
        view.flags.writeable = False
        return view

    @property
    def destinations(self) -> np.ndarray:
        """Demand-carrying destinations, ascending (fixed per demands)."""
        return self._dest

    def weight_of(self, arc: int) -> float:
        """Current weight of one arc."""
        return float(self._weights[arc])

    def routes_demands(self, demands: np.ndarray) -> bool:
        """Whether this router is bound to exactly these demands.

        A router's distance columns, contributions and propagation-memo
        entries are all relative to the demand matrix it was built with;
        traffic variants must therefore use a *separate* router (the
        evaluator keys sibling oracles by variant digest).  This check
        lets callers detect a mismatched router instead of silently
        reusing stale loads — identity first, value equality as the
        fallback.
        """
        return demands is self._demands or bool(
            np.array_equal(demands, self._demands)
        )

    # ------------------------------------------------------------------
    # building and updating the base (normal-scenario) state
    # ------------------------------------------------------------------
    def _rebuild(self, weights: np.ndarray) -> None:
        weights = np.array(weights, dtype=np.float64, copy=True)
        if weights.shape != (self._net.num_arcs,):
            raise ValueError("weights must have one entry per arc")
        if np.any(weights < 1):
            raise ValueError("arc weights must be >= 1")
        self._weights = weights
        self._weights_list = None
        self._weights_integral = bool(np.all(weights == np.floor(weights)))
        self._dist_cols = distance_columns(
            self._net, weights, self._dest, backend=self._backend
        )
        self._masks = destination_mask_rows(
            self._net, weights, self._dist_cols
        )
        num_arcs = self._net.num_arcs
        self._contribs = np.zeros((self._dest.size, num_arcs))
        self._und = np.zeros(self._dest.size)
        self._propagate_rows(np.arange(self._dest.size))
        self._routing = None
        self.stats.rebuilds += 1
        self.stats.destinations_recomputed += int(self._dest.size)

    def _repaired_column(
        self,
        base_col: np.ndarray,
        mask_row: np.ndarray,
        failed: list[int],
        failed_set: set[int],
        dead_list: "list[bool] | None",
    ) -> np.ndarray | None:
        """Dynamic-SPF *increase* repair of one cached distance column.

        Removing (or up-weighting) arcs can only lengthen paths, and only
        for the nodes whose **every** shortest path crosses a changed arc
        — the classic dynamic-SPF affected cone.  The cone ``A`` is found
        by a worklist over the DAG (a node joins when all its DAG
        out-arcs are failed or lead into ``A``); everything outside keeps
        its distance verbatim.  The cone is then re-settled by a tiny
        Dijkstra seeded from its boundary (best alive arc into a
        non-cone node).  Distances outside the cone are provably
        unchanged, so the result is bit-identical to a full recompute
        (integer weights, exact sums).

        Returns None — caller falls back to a full column — when the
        cone grows past the point where repair stops being cheaper, or
        when weights are not integral (ulp parity with scipy is only
        guaranteed for exact arithmetic).
        """
        if not self._weights_integral:
            return None
        if self._weights_list is None:
            self._weights_list = self._weights.tolist()
        out_arcs = self._plan.out_arcs
        arc_dst = self._plan.arc_dst
        in_arcs = self._rev_adjacency
        arc_src = self._arc_src_list
        weights = self._weights_list
        mask = mask_row
        limit = max(6, self._net.num_nodes // 3)

        cone: set[int] = set()
        pending = [arc_src[a] for a in failed if mask[a]]
        while pending:
            x = pending.pop()
            if x in cone:
                continue
            compromised = True
            for a in out_arcs[x]:
                if not mask[a] or a in failed_set:
                    continue
                if arc_dst[a] not in cone:
                    compromised = False
                    break
            if not compromised:
                continue
            cone.add(x)
            if len(cone) > limit:
                return None
            for a in in_arcs[x]:
                if mask[a]:
                    pending.append(arc_src[a])

        col = base_col.copy()
        inf = float("inf")
        best: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for x in cone:
            seed = inf
            for a in out_arcs[x]:
                if dead_list is not None and dead_list[a]:
                    continue
                y = arc_dst[a]
                if y in cone:
                    continue
                candidate = weights[a] + col[y]
                if candidate < seed:
                    seed = candidate
            if seed < inf:
                best[x] = seed
                heapq.heappush(heap, (seed, x))
        while heap:
            d, x = heapq.heappop(heap)
            if d > best.get(x, inf):
                continue
            for a in in_arcs[x]:
                if dead_list is not None and dead_list[a]:
                    continue
                z = arc_src[a]
                if z not in cone:
                    continue
                candidate = weights[a] + d
                if candidate < best.get(z, inf):
                    best[z] = candidate
                    heapq.heappush(heap, (candidate, z))
        for x in cone:
            col[x] = best.get(x, inf)
        return col

    def _set_weight_entry(self, arc: int, new_weight: float) -> None:
        self._weights[arc] = new_weight
        if self._weights_list is not None:
            self._weights_list[arc] = new_weight
        if self._weights_integral and not float(new_weight).is_integer():
            self._weights_integral = False

    def _propagate_for(
        self,
        t: int,
        mask_row: np.ndarray,
        dist_col: np.ndarray,
        demand_col: np.ndarray,
        use_memo: bool,
    ) -> tuple[np.ndarray, float]:
        """Load contribution + undelivered volume of one destination.

        Memoized on ``(t, mask bytes, dist bytes)`` when the demand
        column is the base one (``use_memo``) — the result is a pure
        function of those inputs, so a hit replays identical floats.
        """
        if use_memo:
            entry = self._memo.get(t, mask_row, dist_col)
            if entry is not None:
                return entry
        contrib_list = [0.0] * self._net.num_arcs
        undelivered = fast_propagate_loads(
            self._plan, mask_row, dist_col, demand_col, t, contrib_list
        )
        contrib = np.asarray(contrib_list)
        if use_memo:
            self._memo.put(t, mask_row, dist_col, contrib, undelivered)
        return contrib, undelivered

    def _propagate_row(self, row: int, t: int) -> None:
        contrib, undelivered = self._propagate_for(
            t,
            self._masks[row],
            self._dist_cols[:, row],
            self._demands[:, t],
            True,
        )
        self._contribs[row] = contrib
        self._und[row] = undelivered

    def _propagate_rows(self, rows: np.ndarray) -> None:
        """Base-state load propagation for many rows, batched when it pays.

        Memo semantics match the per-row path exactly: hits replay their
        stored floats, misses are computed (through the vector or numba
        batch kernel when the backend resolves that way — bit-identical
        to the python kernel) and stored.
        """
        rows = np.asarray(rows, dtype=np.intp)
        net = self._net
        resolved = resolve_backend(
            self._backend,
            net.num_nodes,
            net.num_arcs,
            rows.size,
            kind="propagate",
        )
        if resolved == "python":
            for row in rows:
                self._propagate_row(int(row), int(self._dest[row]))
            return
        missing: list[int] = []
        for row in rows:
            row = int(row)
            t = int(self._dest[row])
            entry = self._memo.get(
                t, self._masks[row], self._dist_cols[:, row]
            )
            if entry is not None:
                self._contribs[row], self._und[row] = entry
            else:
                missing.append(row)
        if not missing:
            return
        miss = np.asarray(missing, dtype=np.intp)
        dests = self._dest[miss]
        contribs, und = routing_kernels(resolved).batch_propagate_loads(
            self._batch_plan,
            self._masks[miss],
            self._dist_cols[:, miss],
            self._demands[:, dests],
            dests,
        )
        for i, row in enumerate(missing):
            t = int(self._dest[row])
            contrib = contribs[i].copy()
            undelivered = float(und[i])
            self._memo.put(
                t, self._masks[row], self._dist_cols[:, row],
                contrib, undelivered,
            )
            self._contribs[row] = contrib
            self._und[row] = undelivered

    def sync(self, weights: np.ndarray) -> int:
        """Bring the router to ``weights`` by the cheapest route.

        Diffs against the current weights; up to :data:`SYNC_DELTA_LIMIT`
        changed arcs are replayed as single-arc deltas (each touching
        only its affected destinations), more trigger a full rebuild.

        Returns:
            The number of changed arcs observed.
        """
        weights = np.asarray(weights, dtype=np.float64)
        changed = np.flatnonzero(weights != self._weights)
        if changed.size == 0:
            return 0
        if changed.size > SYNC_DELTA_LIMIT:
            self._rebuild(weights)
            return int(changed.size)
        for arc in changed:
            self.set_arc_weight(int(arc), float(weights[arc]))
        return int(changed.size)

    def set_arc_weight(self, arc: int, new_weight: float) -> int:
        """Apply one arc-weight delta, updating only affected destinations.

        The affected-destination test on the cached distance columns:

        * **increase** — only destinations whose DAG contains the arc can
          change (for the rest the arc was strictly longer than the best
          path through its tail and just got longer still); among those,
          destinations where the arc's source keeps another DAG out-arc
          keep all their distances too, so only the mask bit flips and
          the loads re-propagate — no Dijkstra.
        * **decrease** to ``w`` — only destinations ``t`` with
          ``dist(u, t) >= w + dist(v, t)`` can change; exact equality
          means the arc *joins* the DAG without moving any distance
          (mask bit + re-propagation only), strict improvement means
          distances genuinely drop (fresh Dijkstra column).

        Returns:
            The number of destinations touched (0 when the delta provably
            cannot change the routing — e.g. a weight increase on an arc
            lying on no destination's DAG, the classic unused-arc case).
        """
        new_weight = float(new_weight)
        if new_weight < 1:
            raise ValueError("arc weights must be >= 1")
        old_weight = float(self._weights[arc])
        if new_weight == old_weight:
            return 0
        net = self._net
        u = int(net.arc_src[arc])
        if new_weight > old_weight:
            rows = np.flatnonzero(self._masks[:, arc])
            self._set_weight_entry(arc, new_weight)
            if rows.size:
                out_u = net.out_arcs[u]
                others = out_u[out_u != arc]
                if others.size:
                    dist_keeps = self._masks[np.ix_(rows, others)].any(
                        axis=1
                    )
                else:
                    dist_keeps = np.zeros(rows.size, dtype=bool)
                mask_only = rows[dist_keeps]
                spf_rows = rows[~dist_keeps]
                if mask_only.size:
                    self._masks[mask_only, arc] = False
                    for row in mask_only:
                        self._propagate_row(int(row), int(self._dest[row]))
                if spf_rows.size:
                    self._recompute_rows(spf_rows, repair_failed=[arc])
        else:
            du = self._dist_cols[u]
            dv = self._dist_cols[net.arc_dst[arc]]
            with np.errstate(invalid="ignore"):
                target = new_weight + dv
                joins = np.abs(du - target) <= SPF_TOLERANCE
                improves = du > target + SPF_TOLERANCE
            finite = np.isfinite(dv)
            joins &= finite & np.isfinite(du)
            improves &= finite
            rows = np.flatnonzero(joins | improves)
            self._set_weight_entry(arc, new_weight)
            mask_only = np.flatnonzero(joins)
            spf_rows = np.flatnonzero(improves)
            if mask_only.size:
                self._masks[mask_only, arc] = True
                for row in mask_only:
                    self._propagate_row(int(row), int(self._dest[row]))
            if spf_rows.size:
                self._recompute_rows(spf_rows)
        self.stats.deltas += 1
        if rows.size:
            self._routing = None
            self.stats.destinations_recomputed += int(rows.size)
        return int(rows.size)

    def _columns_for(
        self,
        dests: np.ndarray,
        disabled: np.ndarray | None = None,
        dead_list: "list[bool] | None" = None,
    ) -> np.ndarray:
        """Distance columns via the cheapest applicable Dijkstra.

        Small batches run the in-process heap Dijkstra over adjacency
        lists the router caches across calls (no per-call conversions at
        all); larger batches fall back to scipy.  Both produce the same
        bits — weights are integer-valued, path sums exact.
        """
        if len(dests) <= _PY_DIJKSTRA_MAX_COLS and self._weights_integral:
            if self._weights_list is None:
                self._weights_list = self._weights.tolist()
            n = self._net.num_nodes
            out = np.empty((n, len(dests)), dtype=np.float64)
            for i, t in enumerate(dests):
                out[:, i] = _dijkstra_to(
                    n,
                    self._rev_adjacency,
                    self._arc_src_list,
                    self._weights_list,
                    dead_list,
                    int(t),
                )
            return out
        # Repair batches are small; outside the pure-python stack the
        # seed's size dispatch stays the cheapest choice — except for
        # non-integral weights, where the base columns came from scipy
        # and a heap column differing by an ulp at the tolerance
        # boundary could flip a DAG bit: keep the provenance uniform.
        if self._backend == "python":
            backend = "python"
        elif self._weights_integral:
            backend = "auto"
        else:
            backend = "vector"
        return distance_columns(
            self._net, self._weights, dests, disabled, backend=backend
        )

    def _recompute_rows(
        self, rows: np.ndarray, repair_failed: "list[int] | None" = None
    ) -> None:
        """Fresh distance columns, mask rows and propagations for ``rows``.

        With ``repair_failed`` (an effective weight-increase delta on
        those arcs) each column first tries the dynamic-SPF cone repair;
        only columns whose cone grows too large run a full Dijkstra.
        """
        dests = self._dest[rows]
        n = self._net.num_nodes
        cols = np.empty((n, rows.size), dtype=np.float64)
        missing = []
        if repair_failed is not None:
            repair_failed_set = set(repair_failed)
            for i, row in enumerate(rows):
                repaired = self._repaired_column(
                    self._dist_cols[:, row],
                    self._masks[row],
                    repair_failed,
                    repair_failed_set,
                    None,
                )
                if repaired is None:
                    missing.append(i)
                else:
                    cols[:, i] = repaired
        else:
            missing = list(range(rows.size))
        if missing:
            cols[:, missing] = self._columns_for(dests[missing])
        self._dist_cols[:, rows] = cols
        self._masks[rows] = destination_mask_rows(
            self._net, self._weights, cols
        )
        self._propagate_rows(rows)

    # ------------------------------------------------------------------
    # assembling routings
    # ------------------------------------------------------------------
    @property
    def routing(self) -> ClassRouting:
        """The failure-free :class:`ClassRouting` under current weights.

        Bit-identical to ``route_class(weights, demands)``: the shared
        ``loads`` array and the ``undelivered`` total are folded from the
        per-destination contributions in ascending destination order —
        exactly the summation order of the from-scratch loop.  The
        assembled routing is cached until the next effective delta.
        """
        if self._routing is None:
            n = self._net.num_nodes
            dist = np.full((n, n), np.inf)
            dist[:, self._dest] = self._dist_cols
            loads = np.zeros(self._net.num_arcs)
            undelivered = 0.0
            for row in range(self._dest.size):
                loads += self._contribs[row]
                undelivered += float(self._und[row])
            self._routing = ClassRouting(
                network=self._net,
                scenario=NORMAL,
                dist=dist,
                destinations=self._dest.copy(),
                masks=self._masks.copy(),
                loads=loads,
                demands=self._demands,
                undelivered=undelivered,
            )
        return self._routing

    def matching_destinations(
        self, base: ClassRouting | None
    ) -> frozenset[int] | None:
        """Destinations whose state in ``base`` equals the current state.

        Answers "relative to the normal routing ``base`` evaluated
        earlier, which destinations still have bit-identical distance
        columns and mask rows?" — the precondition for reusing the base
        evaluation's path-delay columns.  Verified by direct array
        comparison (a few thousand element compares — negligible next to
        one propagation), so a stale, reverted-back-to, or
        cross-process base is handled exactly, not heuristically.
        """
        if base is None or not np.array_equal(base.destinations, self._dest):
            return None
        cols_equal = (
            base.dist[:, self._dest] == self._dist_cols
        ).all(axis=0)
        rows_equal = (base.masks == self._masks).all(axis=1)
        ok = cols_equal & rows_equal
        return frozenset(int(t) for t in self._dest[ok])

    def route_scenario(
        self, scenario: FailureScenario, want_reusable: bool = False
    ) -> ScenarioRouting:
        """Route this class under a failure, reusing unaffected columns.

        A one-shot delta against the base state (never mutates it): arc
        failures are pure weight increases (to infinity), so a
        destination needs recomputation only when a failed arc sits on
        its DAG; node removals additionally zero demand rows, so
        destinations that lost a source get a re-propagation over their
        unchanged column.  Among the DAG-hit destinations, those where
        every failed arc's source keeps a surviving DAG out-arc retain
        all their distances, so their new mask row is just the old one
        minus the failed arcs — no Dijkstra.  Everything else —
        distances, masks, and the per-destination load contributions —
        is served from cache or the propagation memo, and the totals are
        re-folded in ascending destination order for bit-identity with
        ``route_class``.

        Args:
            scenario: the failure scenario.
            want_reusable: also report the reusable destination set
                (skipped by default; building it costs a little and only
                the delay class consumes it).
        """
        if scenario.is_normal:
            reusable = (
                frozenset(int(t) for t in self._dest)
                if want_reusable
                else frozenset()
            )
            return ScenarioRouting(routing=self.routing, reusable=reusable)
        struct = self._scenario_structure(scenario)
        computed, batch_info = self._propagate_structure(struct)
        return self._assemble_scenario(
            struct, computed, batch_info, want_reusable
        )

    def _scenario_structure(
        self, scenario: FailureScenario
    ) -> _ScenarioStructure:
        """Distances, masks and recompute positions of one scenario delta.

        The structural first half of :meth:`route_scenario`, shared with
        the batch sweep engine: everything except the outstanding load
        propagations (listed in ``need``) and the final fold.
        """
        self.stats.scenario_routes += 1
        net = self._net
        info = self._scenario_info.get(scenario)
        if info is None:
            failed = [int(a) for a in scenario.failed_arcs]
            failed_set = set(failed)
            disabled = disabled_arc_mask(net, scenario)
            rem = list(scenario.removed_nodes)
            survivors = [
                (
                    a,
                    np.asarray(
                        [
                            int(o)
                            for o in net.out_arcs[int(net.arc_src[a])]
                            if int(o) not in failed_set
                        ],
                        dtype=np.intp,
                    ),
                )
                for a in failed
            ]
            info = (
                failed,
                failed_set,
                disabled,
                disabled.tolist(),
                rem,
                survivors,
            )
            if len(self._scenario_info) > 4096:
                self._scenario_info.clear()
            self._scenario_info[scenario] = info
        failed, failed_set, disabled, dead_list, rem, survivors = info

        demands = self._demands
        if rem:
            demands = demands.copy()
            demands[rem, :] = 0.0
            demands[:, rem] = 0.0
            dest_s = np.flatnonzero(demands.sum(axis=0) > 0.0)
            rows_s = np.searchsorted(self._dest, dest_s)
            dem_hit = (self._demands[rem][:, dest_s] > 0.0).any(axis=0)
            base_masks_s = self._masks[rows_s]
            base_cols_s = self._dist_cols[:, rows_s]
            base_contribs = self._contribs[rows_s]
            base_und = self._und[rows_s]
        else:
            # Arc failures keep the demand matrix, and therefore the
            # destination set, untouched — the hot path of every sweep.
            dest_s = self._dest
            dem_hit = None
            base_masks_s = self._masks
            base_cols_s = self._dist_cols
            base_contribs = self._contribs
            base_und = self._und
        if failed and dest_s.size:
            arc_hit = base_masks_s[:, failed].any(axis=1)
        else:
            arc_hit = np.zeros(dest_s.size, dtype=bool)

        n, num_arcs = net.num_nodes, net.num_arcs
        dist = np.full((n, n), np.inf)
        dist[:, dest_s] = base_cols_s
        # Failed arcs sit on no unaffected DAG, so clearing them from
        # every row is exact for reused rows and required for the rest.
        masks = base_masks_s & ~disabled
        hit = np.flatnonzero(arc_hit)
        if hit.size:
            # Distances to a hit destination survive when every failed
            # on-DAG arc's source node keeps a non-failed DAG out-arc:
            # the surviving sub-DAG still connects every node at its old
            # distance.  Those rows skip Dijkstra; only the genuinely
            # re-routed remainder gets fresh columns.
            base_masks_hit = base_masks_s[hit]
            need_spf = np.zeros(hit.size, dtype=bool)
            for a, others in survivors:
                on_dag = base_masks_hit[:, a]
                if not on_dag.any():
                    continue
                if others.size:
                    survives = base_masks_hit[:, others].any(axis=1)
                    need_spf |= on_dag & ~survives
                else:
                    need_spf |= on_dag
            spf_pos = hit[need_spf]
            if spf_pos.size:
                cols = np.empty((n, spf_pos.size), dtype=np.float64)
                missing = []
                for i, pos in enumerate(spf_pos):
                    repaired = self._repaired_column(
                        base_cols_s[:, pos],
                        base_masks_s[pos],
                        failed,
                        failed_set,
                        dead_list,
                    )
                    if repaired is None:
                        missing.append(i)
                    else:
                        cols[:, i] = repaired
                if missing:
                    cols[:, missing] = self._columns_for(
                        dest_s[spf_pos[np.asarray(missing)]],
                        disabled,
                        dead_list,
                    )
                dist[:, dest_s[spf_pos]] = cols
                masks[spf_pos] = destination_mask_rows(
                    net, self._weights, cols, disabled
                )

        hit_list = arc_hit.tolist()
        dem_list = dem_hit.tolist() if dem_hit is not None else None
        need = [
            pos
            for pos in range(dest_s.size)
            if hit_list[pos] or (dem_list is not None and dem_list[pos])
        ]
        return _ScenarioStructure(
            scenario=scenario,
            dest_s=dest_s,
            demands=demands,
            dist=dist,
            masks=masks,
            arc_hit=arc_hit,
            hit_list=hit_list,
            dem_list=dem_list,
            need=need,
            base_contribs=base_contribs,
            base_und=base_und,
        )

    def _propagate_structure(
        self, struct: _ScenarioStructure
    ) -> "tuple[dict[int, tuple[np.ndarray, float]], tuple | None]":
        """Per-scenario propagation of one structure's ``need`` positions.

        Returns ``(computed, batch_info)``: pre-computed ``(contrib,
        undelivered)`` entries per position — filled by the vector batch
        path; positions absent fall through to the per-destination python
        path in the assembly fold — and the ``(dests-bytes, schedule)``
        pair of the batch, when one ran, for path-delay schedule reuse.
        """
        dest_s, masks = struct.dest_s, struct.masks
        dist, demands = struct.dist, struct.demands
        dem_list, need = struct.dem_list, struct.need
        n, num_arcs = self._net.num_nodes, self._net.num_arcs
        computed: dict[int, tuple[np.ndarray, float]] = {}
        batch_schedule = None
        bd = None
        resolved = resolve_backend(
            self._backend, n, num_arcs, len(need), kind="propagate"
        ) if need else "python"
        if need and resolved != "python":
            batch_pos: list[int] = []
            for pos in need:
                t = int(dest_s[pos])
                if dem_list is not None and dem_list[pos]:
                    # Changed demand column: not memoizable, rare (node
                    # removals only) — propagate individually.
                    computed[pos] = self._propagate_for(
                        t, masks[pos], dist[:, t], demands[:, t], False
                    )
                else:
                    entry = self._memo.get(t, masks[pos], dist[:, t])
                    if entry is not None:
                        computed[pos] = entry
                    else:
                        batch_pos.append(pos)
            if batch_pos:
                bp = np.asarray(batch_pos, dtype=np.intp)
                bd = dest_s[bp]
                batch_masks = masks[bp]
                batch_schedule = build_schedule(
                    self._batch_plan, batch_masks, dist[:, bd]
                )
                kernels = routing_kernels(resolved)
                contribs, und = kernels.batch_propagate_loads(
                    self._batch_plan,
                    batch_masks,
                    dist[:, bd],
                    demands[:, bd],
                    bd,
                    schedule=batch_schedule,
                )
                for i, pos in enumerate(batch_pos):
                    t = int(dest_s[pos])
                    contrib = contribs[i].copy()
                    und_value = float(und[i])
                    self._memo.put(
                        t, masks[pos], dist[:, t], contrib, und_value
                    )
                    computed[pos] = (contrib, und_value)
        batch_info = (
            (bd.tobytes(), batch_schedule)
            if batch_schedule is not None
            else None
        )
        return computed, batch_info

    def _assemble_scenario(
        self,
        struct: _ScenarioStructure,
        computed: "dict[int, tuple[np.ndarray, float]]",
        batch_info: "tuple | None",
        want_reusable: bool,
    ) -> ScenarioRouting:
        """Fold a structure (plus computed propagations) into a routing.

        The shared ``loads`` array and the ``undelivered`` total fold in
        ascending destination order — ``route_class``'s float summation
        order — so the result is bit-identical to a from-scratch call
        regardless of how the ``computed`` entries were produced (memo
        hit, per-destination python kernel, per-scenario batch, or the
        sweep engine's cross-scenario batch).
        """
        dest_s, masks = struct.dest_s, struct.masks
        dist, demands = struct.dist, struct.demands
        hit_list, dem_list = struct.hit_list, struct.dem_list
        loads = np.zeros(self._net.num_arcs)
        undelivered = 0.0
        recomputed = 0
        for pos, t in enumerate(dest_s.tolist()):
            demand_changed = dem_list is not None and dem_list[pos]
            if hit_list[pos] or demand_changed:
                entry = computed.get(pos)
                if entry is None:
                    entry = self._propagate_for(
                        t,
                        masks[pos],
                        dist[:, t],
                        demands[:, t],
                        not demand_changed,
                    )
                contrib, und_value = entry
                loads += contrib
                undelivered += und_value
                recomputed += 1
            else:
                loads += struct.base_contribs[pos]
                undelivered += float(struct.base_und[pos])
        self.stats.destinations_recomputed += recomputed
        self.stats.destinations_reused += int(dest_s.size) - recomputed

        routing = ClassRouting(
            network=self._net,
            scenario=struct.scenario,
            dist=dist,
            destinations=dest_s,
            masks=masks,
            loads=loads,
            demands=demands,
            undelivered=undelivered,
        )
        if batch_info is not None:
            # path_delays often re-propagates exactly the recomputed
            # destinations; handing it this schedule (keyed by the
            # destination ids it covers) skips a rebuild.
            object.__setattr__(routing, "_subset_schedule", batch_info)
        reusable = (
            frozenset(int(t) for t in dest_s[~struct.arc_hit])
            if want_reusable
            else frozenset()
        )
        return ScenarioRouting(routing=routing, reusable=reusable)
