"""Scenario-axis batch sweep engine: many scenarios per kernel call.

The vector kernels of :mod:`repro.routing.vectorized` batch along the
*destination* axis: one scenario's affected destinations share a
schedule and a level sweep.  On warm incremental sweeps each scenario
touches only a handful of destinations, so a sweep still pays one
schedule build and one kernel invocation *per scenario* — pure Python
overhead that dominates once the per-destination work is memoized.  This
module adds the missing axis: the (node, destination) cells of the
kernels are blind to which scenario a column belongs to, so the
outstanding propagations of a whole *scenario group* stack into one
``(cells, arcs)`` batch and run through a single kernel call.  Per
column the arithmetic is untouched — every contribution row is
bit-identical to the per-scenario path (which is itself pinned
bit-identical to the pure-Python kernels), and per-scenario totals are
still folded in ascending destination order — so batching is purely an
execution decision.

Two pieces live here:

* :func:`plan_sweep` — groups a scenario collection by *structural
  footprint*: plain arc-failure scenarios (whose footprint is the
  failed-arc signature against the base DAG masks) form batchable
  groups bounded by a state budget, scenarios sharing a traffic variant
  digest group per variant (their structural half is identical per
  failure, and the whole group evaluates through one sibling-evaluator
  batch), and everything else (node removals, the normal scenario)
  stays on the exact legacy per-scenario path.  Exact duplicates inside
  a batch group — cross products revisit the same failure once per
  variant — collapse onto one evaluation slot.
* :func:`route_scenario_batch` — the scenario-axis counterpart of
  :meth:`~repro.routing.incremental.IncrementalRouter.route_scenario`:
  one structure pass per scenario (distances, masks, memo probes), one
  concatenated ``batch_propagate_loads`` call for every outstanding
  (scenario, destination) cell, one ascending-destination fold per
  scenario.  ``tests/routing/test_sweep.py`` pins the bit-identity
  property-style; the evaluator-level parity across scenario families
  is pinned by ``tests/core/test_sweep_evaluator.py``.

The parallel evaluator reuses this planner on both executors: worker
processes receive only shared-memory tickets and batch their slice
locally, the thread pool batches slices of the one shared evaluator
(see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.backend import resolve_batch_backend, routing_kernels
from repro.routing.engine import _PY_DELAY_BATCH_MAX
from repro.routing.failures import FailureScenario
from repro.routing.fastpath import (
    fast_propagate_mean_delay,
    fast_propagate_worst_delay,
)
from repro.routing.incremental import IncrementalRouter, ScenarioRouting
from repro.routing.vectorized import BatchSchedule, build_schedule

#: Upper bound on the floats held by one batch group's scenario
#: structures (each scenario holds a full (N, N) distance matrix per
#: class while its group is in flight).  ~64 MB per class at float64.
SWEEP_STATE_BUDGET = 8_000_000

#: Upper bound on ``cells x num_arcs`` of one load-propagation kernel
#: call (the contribution matrix it materializes).  ~48 MB at float64.
SWEEP_KERNEL_BUDGET = 6_000_000


#: Chaos-testing hook: set by :func:`repro.core.faults.install_fault_plan`
#: to its ``fault_point`` callable when a fault plan is active in this
#: process (workers of a chaos run), ``None`` everywhere else.  A plain
#: module global keeps the hot-path cost at one ``is None`` check and
#: avoids a routing -> core import.
_FAULT_HOOK = None


def set_fault_hook(hook) -> None:
    """Install (or clear, with None) the stage fault-injection hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def _maybe_fault(stage: str) -> None:
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(stage)


def group_scenario_budget(num_nodes: int) -> int:
    """Scenarios per batch group, bounded by the structure-state budget.

    Each in-flight scenario pins two ``(N, N)`` float matrices (one per
    traffic class), so the group size shrinks quadratically with
    instance size; small instances batch whole sweeps at once.
    """
    per_scenario = max(1, 2 * num_nodes * num_nodes)
    return max(1, SWEEP_STATE_BUDGET // per_scenario)


def kernel_cell_budget(num_arcs: int) -> int:
    """Columns per load-kernel call, bounded by the contribution matrix."""
    return max(64, SWEEP_KERNEL_BUDGET // max(1, num_arcs))


@dataclass(frozen=True)
class BatchHandoff:
    """One load-propagation batch's schedule, handed to the delay DP.

    The scenario-axis counterpart of the per-scenario path's
    ``_subset_schedule`` handoff: a schedule depends only on the
    ``(mask row, distance column)`` pairs of its columns, and those are
    identical between a scenario's load propagation and its path-delay
    DP, so the delay flush replays the loads schedule instead of
    rebuilding one.

    Attributes:
        cells: ``(scenario index, destination)`` per schedule column,
            aligned with the schedule's column order.
        schedule: the prebuilt schedule.
    """

    cells: tuple[tuple[int, int], ...]
    schedule: BatchSchedule


@dataclass(frozen=True)
class SweepPlan:
    """How one scenario collection is partitioned for batch evaluation.

    Indices refer to positions in the planned collection; every index
    appears in exactly one bucket, so results reassemble by position.

    Attributes:
        batch_groups: budget-bounded groups of plain arc-failure
            scenario indices (no removed nodes, no traffic variant, not
            normal) — the scenario-axis batch core's bucket.
        variant_groups: ``(digest, indices)`` per distinct traffic
            variant, in first-appearance order; one sibling-evaluator
            batch each.
        legacy: indices evaluated on the exact per-scenario path
            (normal scenarios, node removals).
    """

    batch_groups: tuple[tuple[int, ...], ...]
    variant_groups: tuple[tuple[str, tuple[int, ...]], ...]
    legacy: tuple[int, ...]

    @property
    def num_scenarios(self) -> int:
        return (
            sum(len(g) for g in self.batch_groups)
            + sum(len(ids) for _, ids in self.variant_groups)
            + len(self.legacy)
        )


def plan_sweep(items: "list", num_nodes: int) -> SweepPlan:
    """Partition scenarios into batch / variant / legacy buckets.

    Args:
        items: :class:`~repro.scenarios.Scenario` or
            :class:`FailureScenario` objects, in sweep order.
        num_nodes: instance size (drives the group budget).
    """
    batchable: list[int] = []
    variant_groups: dict[str, list[int]] = {}
    legacy: list[int] = []
    for idx, item in enumerate(items):
        variant = getattr(item, "variant", None)
        if variant is not None:
            variant_groups.setdefault(variant.digest, []).append(idx)
            continue
        failure = getattr(item, "failure", item)
        if (
            failure.is_normal
            or failure.removed_nodes
            or not failure.failed_arcs
        ):
            legacy.append(idx)
        else:
            batchable.append(idx)
    budget = group_scenario_budget(num_nodes)
    groups = tuple(
        tuple(batchable[i: i + budget])
        for i in range(0, len(batchable), budget)
    )
    return SweepPlan(
        batch_groups=groups,
        variant_groups=tuple(
            (digest, tuple(ids)) for digest, ids in variant_groups.items()
        ),
        legacy=tuple(legacy),
    )


def route_scenario_batch(
    router: IncrementalRouter,
    scenarios: "list[FailureScenario]",
    want_reusable: bool = False,
) -> "tuple[list[ScenarioRouting], list[BatchHandoff]]":
    """Route one class under many scenarios with batched propagation.

    The scenario-axis counterpart of :meth:`IncrementalRouter.
    route_scenario`, bit-identical per scenario: structures (distances,
    masks, memo probes) are built per scenario exactly as the
    per-scenario path does, but every outstanding (scenario,
    destination) load propagation across the whole batch runs through
    one concatenated ``batch_propagate_loads`` call — the kernel's
    per-column results do not depend on which columns share the batch —
    and lands in the propagation memo under the same keys.  Per-scenario
    totals fold in ascending destination order as always.

    Returns the per-scenario routings plus the batch schedules built
    along the way (as :class:`BatchHandoff` objects keyed by scenario
    index), which :func:`flush_delay_batch` replays for the path-delay
    DPs of the same columns.

    The caller holds the router's lock (same contract as
    ``route_scenario``).
    """
    _maybe_fault("route_batch")
    structs = [router._scenario_structure(s) for s in scenarios]
    computed: "list[dict[int, tuple[np.ndarray, float]]]" = [
        {} for _ in structs
    ]
    pending: list[tuple[int, int, int]] = []  # (struct index, pos, t)
    memo = router._memo
    for i, struct in enumerate(structs):
        dem_list = struct.dem_list
        for pos in struct.need:
            t = int(struct.dest_s[pos])
            if dem_list is not None and dem_list[pos]:
                # Changed demand column (node removals): not memoizable;
                # mirrors the per-scenario path.
                computed[i][pos] = router._propagate_for(
                    t,
                    struct.masks[pos],
                    struct.dist[:, t],
                    struct.demands[:, t],
                    False,
                )
                continue
            entry = memo.get(t, struct.masks[pos], struct.dist[:, t])
            if entry is not None:
                computed[i][pos] = entry
            else:
                pending.append((i, pos, t))

    num_arcs = router.network.num_arcs
    budget = kernel_cell_budget(num_arcs)
    handoffs: "list[BatchHandoff]" = []
    # One kernel-table resolution for the whole batch: the sweep engine
    # is committed to batch kernels (columns span scenarios), so only
    # the vector-vs-numba half of the dispatch applies here.
    kernels = routing_kernels(
        resolve_batch_backend(
            router._backend,
            router.network.num_nodes,
            num_arcs,
            len(pending),
        )
    )
    for lo in range(0, len(pending), budget):
        chunk = pending[lo: lo + budget]
        masks = np.stack(
            [structs[i].masks[pos] for i, pos, _ in chunk]
        )
        dist_cols = np.stack(
            [structs[i].dist[:, t] for i, _, t in chunk], axis=1
        )
        demand_cols = np.stack(
            [structs[i].demands[:, t] for i, _, t in chunk], axis=1
        )
        dests = np.asarray([t for _, _, t in chunk], dtype=np.intp)
        schedule = build_schedule(router._batch_plan, masks, dist_cols)
        contribs, und = kernels.batch_propagate_loads(
            router._batch_plan,
            masks,
            dist_cols,
            demand_cols,
            dests,
            schedule=schedule,
        )
        handoffs.append(
            BatchHandoff(
                cells=tuple((i, t) for i, _, t in chunk),
                schedule=schedule,
            )
        )
        for j, (i, pos, t) in enumerate(chunk):
            contrib = contribs[j].copy()
            und_value = float(und[j])
            memo.put(
                t,
                structs[i].masks[pos],
                structs[i].dist[:, t],
                contrib,
                und_value,
            )
            computed[i][pos] = contrib, und_value

    routings = [
        router._assemble_scenario(struct, computed[i], None, want_reusable)
        for i, struct in enumerate(structs)
    ]
    return routings, handoffs


def flush_delay_batch(
    engine,
    mode: str,
    tasks: "list[tuple]",
    shared: "list[tuple[np.ndarray, np.ndarray, BatchSchedule]]" = (),
) -> None:
    """Run the pending path-delay columns of many scenarios in one DP.

    Args:
        engine: the :class:`~repro.routing.engine.RoutingEngine`.
        mode: ``"worst"`` or ``"mean"``.
        tasks: ``(routing, arc_delays, out, pending)`` per scenario —
            the output of the engine's reuse/memo pre-pass
            (:meth:`RoutingEngine._delay_pending`); ``pending`` lists
            ``(row, t, memo key)`` triples still needing propagation.
        shared: prebuilt ``(column task indices, column destinations,
            schedule)`` triples from the load-propagation batches
            (:class:`BatchHandoff` resolved to task indices by the
            caller).  A schedule depends only on its columns' (mask,
            distance) pairs — identical between a scenario's load
            propagation and its delay DP — so covered pending columns
            replay these schedules instead of paying a fresh build;
            recomputing a covered column that was individually
            reusable replays the identical bits, exactly like the
            per-scenario handed-subset reuse.

    Pending columns not covered by a shared schedule are concatenated,
    share one schedule build, and read their own scenario's arc-delay
    vector via the kernels' ``delay_rows`` hook, so every column is
    bit-identical to a per-scenario ``path_delays`` call; results land
    in ``out`` in place (diagonal re-NaN'd) and in the engine's delay
    memo under the per-scenario keys.
    """
    _maybe_fault("delay_flush")
    if not any(pending for _, _, _, pending in tasks):
        return
    delays_2d = np.stack([arc_delays for _, arc_delays, _, _ in tasks])
    #: Outstanding (task, destination) -> memo key; cells leave the map
    #: as soon as a shared schedule serves them.
    remaining: "dict[tuple[int, int], tuple | None]" = {
        (i, t): key
        for i, (_, _, _, pending) in enumerate(tasks)
        for _, t, key in pending
    }
    net = engine.network
    kernels = routing_kernels(
        resolve_batch_backend(
            engine._backend, net.num_nodes, net.num_arcs, len(remaining)
        )
    )
    batch_propagate = (
        kernels.batch_propagate_mean_delay
        if mode == "mean"
        else kernels.batch_propagate_worst_delay
    )

    def write(i: int, t: int, key: "tuple | None", column: np.ndarray) -> None:
        out = tasks[i][2]
        out[:, t] = column
        out[t, t] = np.nan
        if key is not None:
            engine._memo_put(key, out[:, t].copy())

    for task_rows, dests, schedule in shared:
        if not remaining:
            break
        served = [
            j
            for j in range(len(dests))
            if (int(task_rows[j]), int(dests[j])) in remaining
        ]
        # Replay only when it harvests enough of the schedule's columns
        # — the DP computes every column, so a near-fully-memoized
        # sweep would pay O(cells x arcs) to harvest a handful (the
        # batch counterpart of path_delays' covered-fraction guard);
        # unserved cells fall through to the right-sized path below.
        if not served or 2 * len(served) < len(dests):
            continue
        columns = batch_propagate(
            engine._batch_plan,
            None,
            None,
            delays_2d,
            dests,
            schedule=schedule,
            delay_rows=task_rows,
        )
        for j in served:
            i, t = int(task_rows[j]), int(dests[j])
            write(i, t, remaining.pop((i, t)), columns[:, j])

    if not remaining:
        return
    cells = [
        (i, row, t, key)
        for i, (_, _, _, pending) in enumerate(tasks)
        for row, t, key in pending
        if (i, t) in remaining
    ]
    if len(cells) <= _PY_DELAY_BATCH_MAX:
        # Leftovers too few to amortize a schedule build: the
        # per-destination python kernel is cheaper (and bit-identical),
        # mirroring path_delays' small-batch fallback.
        propagate = (
            fast_propagate_mean_delay
            if mode == "mean"
            else fast_propagate_worst_delay
        )
        delay_lists: "dict[int, list[float]]" = {}
        for i, row, t, key in cells:
            delays = delay_lists.get(i)
            if delays is None:
                delays = delay_lists[i] = tasks[i][1].tolist()
            column = propagate(
                engine.plan,
                tasks[i][0].masks[row],
                tasks[i][0].dist[:, t],
                delays,
                t,
            )
            write(i, t, key, np.asarray(column))
        return
    num_arcs = engine.network.num_arcs
    budget = kernel_cell_budget(num_arcs)
    for lo in range(0, len(cells), budget):
        chunk = cells[lo: lo + budget]
        masks = np.stack(
            [tasks[i][0].masks[row] for i, row, _, _ in chunk]
        )
        dist_cols = np.stack(
            [tasks[i][0].dist[:, t] for i, _, t, _ in chunk], axis=1
        )
        dests = np.asarray([t for _, _, t, _ in chunk], dtype=np.intp)
        delay_rows = np.asarray([i for i, _, _, _ in chunk], dtype=np.intp)
        columns = batch_propagate(
            engine._batch_plan,
            masks,
            dist_cols,
            delays_2d,
            dests,
            delay_rows=delay_rows,
        )
        for j, (i, _, t, key) in enumerate(chunk):
            write(i, t, key, columns[:, j])
