"""Shortest-path computations for one weighted topology.

Distances come from :func:`scipy.sparse.csgraph.dijkstra` on a CSR matrix
(C speed); equal-cost multipath structure is recovered with the standard
arc test: arc ``(u, v)`` lies on a shortest path towards destination ``t``
iff ``dist(u, t) == w(u, v) + dist(v, t)``.

Weights are integer-valued floats (OSPF-style), so the sums involved are
exact in float64; a small tolerance is still applied for robustness.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.routing.network import Network

#: Tolerance used when testing membership in the shortest-path DAG.
SPF_TOLERANCE = 1e-9


def distance_matrix(
    network: Network,
    weights: np.ndarray,
    disabled: np.ndarray | None = None,
) -> np.ndarray:
    """All-pairs shortest-path distances under the given arc weights.

    Args:
        network: the topology.
        weights: per-arc weights, shape ``(num_arcs,)``, all >= 1.
        disabled: optional boolean per-arc mask of dead arcs.

    Returns:
        ``(N, N)`` float array ``dist`` with ``dist[s, t]`` the length of
        the shortest ``s -> t`` path, ``inf`` when unreachable, 0 on the
        diagonal.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (network.num_arcs,):
        raise ValueError("weights must have one entry per arc")
    if np.any(weights < 1):
        raise ValueError("arc weights must be >= 1")
    if disabled is None:
        src, dst, data = network.arc_src, network.arc_dst, weights
    else:
        keep = ~np.asarray(disabled, dtype=bool)
        src, dst, data = (
            network.arc_src[keep],
            network.arc_dst[keep],
            weights[keep],
        )
    n = network.num_nodes
    graph = csr_matrix((data, (src, dst)), shape=(n, n))
    return dijkstra(graph, directed=True)


def shortest_arc_mask(
    network: Network,
    weights: np.ndarray,
    dist_to_t: np.ndarray,
    disabled: np.ndarray | None = None,
) -> np.ndarray:
    """Which arcs belong to the shortest-path DAG towards one destination.

    Args:
        network: the topology.
        weights: per-arc weights.
        dist_to_t: distances to the destination, i.e. ``dist[:, t]``.
        disabled: optional boolean per-arc mask of dead arcs.

    Returns:
        Boolean per-arc mask; ``mask[a]`` is True iff arc ``a = (u, v)``
        satisfies ``dist_to_t[u] == w[a] + dist_to_t[v]`` with both
        distances finite (and the arc alive).
    """
    du = dist_to_t[network.arc_src]
    dv = dist_to_t[network.arc_dst]
    with np.errstate(invalid="ignore"):
        on_dag = np.abs(du - (weights + dv)) <= SPF_TOLERANCE
    on_dag &= np.isfinite(du) & np.isfinite(dv)
    if disabled is not None:
        on_dag &= ~disabled
    return on_dag


def path_counts(
    network: Network, mask: np.ndarray, dist_to_t: np.ndarray, t: int
) -> np.ndarray:
    """Number of distinct shortest paths from each node to ``t``.

    A path-diversity diagnostic (the paper repeatedly attributes the
    benefit of robust optimization to path diversity).  Counts are
    computed by dynamic programming over the shortest-path DAG in
    increasing distance order.
    """
    n = network.num_nodes
    counts = np.zeros(n, dtype=np.float64)
    counts[t] = 1.0
    order = np.argsort(dist_to_t, kind="stable")
    for u in order:
        if u == t or not np.isfinite(dist_to_t[u]):
            continue
        out = network.out_arcs[u]
        live = out[mask[out]]
        counts[u] = counts[network.arc_dst[live]].sum()
    return counts


def next_hops(
    network: Network, mask: np.ndarray, node: int
) -> np.ndarray:
    """ECMP next-hop node ids of ``node`` in a shortest-path DAG mask."""
    out = network.out_arcs[node]
    live = out[mask[out]]
    return network.arc_dst[live]


def extract_one_path(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    source: int,
    t: int,
) -> list[int]:
    """One concrete shortest path ``source -> t`` as a node list.

    Picks the lexicographically-smallest next hop at each step; useful in
    examples and debugging output, never in the optimization itself.

    Raises:
        ValueError: if ``source`` cannot reach ``t``.
    """
    if not np.isfinite(dist_to_t[source]):
        raise ValueError(f"node {source} cannot reach {t}")
    path = [source]
    node = source
    while node != t:
        hops = next_hops(network, mask, node)
        if hops.size == 0:
            raise ValueError(f"dead end at node {node} towards {t}")
        node = int(hops.min())
        path.append(node)
        if len(path) > network.num_nodes:
            raise ValueError("cycle detected in shortest-path DAG")
    return path
