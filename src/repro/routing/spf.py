"""Shortest-path computations for one weighted topology.

Distances come from :func:`scipy.sparse.csgraph.dijkstra` on a CSR matrix
(C speed); equal-cost multipath structure is recovered with the standard
arc test: arc ``(u, v)`` lies on a shortest path towards destination ``t``
iff ``dist(u, t) == w(u, v) + dist(v, t)``.

Weights are integer-valued floats (OSPF-style), so the sums involved are
exact in float64; a small tolerance is still applied for robustness.
"""

from __future__ import annotations

import heapq
import weakref
from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.routing.fastpath import PropagationPlan, fast_path_counts
from repro.routing.network import Network

#: Tolerance used when testing membership in the shortest-path DAG.
SPF_TOLERANCE = 1e-9


def _validate_weights(network: Network, weights: np.ndarray) -> None:
    if weights.shape != (network.num_arcs,):
        raise ValueError("weights must have one entry per arc")
    if np.any(weights < 1):
        raise ValueError("arc weights must be >= 1")


@dataclass(frozen=True)
class _CsrView:
    """One cached CSR layout (structure only; data is per-call weights).

    Attributes:
        perm: arc-id permutation into CSR data order.
        indices: column indices, aligned with ``perm``.
        indptr: row pointer.
    """

    perm: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray

    def graph(
        self,
        n: int,
        weights: np.ndarray,
        disabled: np.ndarray | None,
    ) -> csr_matrix:
        """The CSR graph under ``weights`` (dead arcs weighted ``inf``).

        An infinite-weight arc is exactly equivalent to a removed one
        for Dijkstra — relaxations through it produce ``inf``, the same
        "unreachable" representation — so the per-call work is one
        gather instead of a COO build.
        """
        data = weights[self.perm]  # fancy indexing: always a fresh array
        if disabled is not None:
            data[disabled[self.perm]] = np.inf
        return csr_matrix(
            (data, self.indices, self.indptr), shape=(n, n)
        )


#: Per-network forward/reverse CSR layouts.  Weak keys: entries die with
#: their network, and identity-keying is safe because networks are
#: immutable.  Sweep loops build thousands of graphs per topology; the
#: structural sort is hoisted out here and only the data gather remains
#: per call.
_CSR_VIEWS: "weakref.WeakKeyDictionary[Network, tuple[_CsrView, _CsrView]]" = (
    weakref.WeakKeyDictionary()
)


def csr_views(network: Network) -> tuple[_CsrView, _CsrView]:
    """The cached ``(forward, reverse)`` CSR layouts of a network.

    Sorted by ``(row, col)``, matching what scipy's COO-to-CSR
    conversion produces, so graphs built from these views are
    bit-identical to per-call construction.
    """
    cached = _CSR_VIEWS.get(network)
    if cached is None:
        src, dst = network.arc_src, network.arc_dst
        n = network.num_nodes
        fwd_perm = np.lexsort((dst, src))
        rev_perm = np.lexsort((src, dst))
        fwd = _CsrView(
            perm=fwd_perm,
            indices=dst[fwd_perm].astype(np.int32, copy=False),
            indptr=np.concatenate(
                ([0], np.cumsum(np.bincount(src, minlength=n)))
            ).astype(np.int32, copy=False),
        )
        rev = _CsrView(
            perm=rev_perm,
            indices=src[rev_perm].astype(np.int32, copy=False),
            indptr=np.concatenate(
                ([0], np.cumsum(np.bincount(dst, minlength=n)))
            ).astype(np.int32, copy=False),
        )
        cached = (fwd, rev)
        _CSR_VIEWS[network] = cached
    return cached


def distance_matrix(
    network: Network,
    weights: np.ndarray,
    disabled: np.ndarray | None = None,
    destinations: np.ndarray | None = None,
    validate: bool = True,
) -> np.ndarray:
    """Shortest-path distances under the given arc weights.

    Args:
        network: the topology.
        weights: per-arc weights, shape ``(num_arcs,)``, all >= 1.
        disabled: optional boolean per-arc mask of dead arcs.
        destinations: optional node ids; when given, only the distance
            *columns* towards these nodes are computed (via Dijkstra on
            the reversed graph) and every other column is ``inf``.  This
            is the routing hot path: the engine only ever consumes the
            demand-carrying columns.
        validate: skip the weight checks when False (hot loops validate
            once per setting instead of once per call).

    Returns:
        ``(N, N)`` float array ``dist`` with ``dist[s, t]`` the length of
        the shortest ``s -> t`` path, ``inf`` when unreachable, 0 on the
        diagonal (computed columns only when ``destinations`` is given).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if validate:
        _validate_weights(network, weights)
    n = network.num_nodes
    if destinations is not None:
        out = np.full((n, n), np.inf)
        destinations = np.asarray(destinations, dtype=np.intp)
        if destinations.size:
            out[:, destinations] = distance_columns(
                network, weights, destinations, disabled
            )
        return out
    forward, _ = csr_views(network)
    return dijkstra(forward.graph(n, weights, disabled), directed=True)


#: Below this many requested columns a pure-Python heap Dijkstra beats
#: scipy (whose CSR construction + call overhead — several hundred
#: microseconds — dominates small runs at backbone scale).
_PY_DIJKSTRA_MAX_COLS = 12


def distance_columns(
    network: Network,
    weights: np.ndarray,
    destinations: np.ndarray,
    disabled: np.ndarray | None = None,
    backend: str = "auto",
) -> np.ndarray:
    """Distance columns ``dist[:, t]`` for the given destinations only.

    Dijkstra runs on the *reversed* graph from each destination:
    distances from ``t`` in the reversed graph are exactly distances *to*
    ``t`` in the forward graph.  Two implementations exist — scipy's C
    Dijkstra over the cached reverse CSR view (one data gather per call,
    no COO build; the whole batch in one call) and an in-process
    pure-Python heap Dijkstra per destination that skips scipy's call
    overhead.  ``backend`` selects: ``"python"`` always runs the heap
    loop, ``"vector"`` always runs batched scipy, and ``"auto"``
    (default) picks by batch size — the heap loop below
    :data:`_PY_DIJKSTRA_MAX_COLS` columns (the incremental router's
    common case, where scipy's per-call overhead dominates), scipy
    above.  The heap path is weight-dtype-agnostic: for integer-valued
    weights every path sum is exact in float64 and the columns are
    bit-identical whichever implementation ran; for float weights the
    implementations agree to within :data:`SPF_TOLERANCE` (the margin
    every DAG-membership test applies).

    Returns:
        ``(N, len(destinations))`` float array, column ``i`` holding the
        per-source distances towards ``destinations[i]``.
    """
    n = network.num_nodes
    destinations = np.asarray(destinations, dtype=np.intp)
    if destinations.size == 0:
        return np.empty((n, 0), dtype=np.float64)
    if backend == "python" or (
        backend == "auto" and destinations.size <= _PY_DIJKSTRA_MAX_COLS
    ):
        out = np.empty((n, destinations.size), dtype=np.float64)
        dead = (
            np.asarray(disabled, dtype=bool).tolist()
            if disabled is not None
            else None
        )
        weight_list = weights.tolist()
        arc_src = network.arc_src.tolist()
        in_arcs = _reverse_adjacency(network)
        for i, t in enumerate(destinations):
            out[:, i] = _dijkstra_to(
                n, in_arcs, arc_src, weight_list, dead, int(t)
            )
        return out
    _, reverse = csr_views(network)
    from_t = dijkstra(
        reverse.graph(n, weights, disabled),
        directed=True,
        indices=destinations,
    )
    return np.ascontiguousarray(from_t.T)


#: Per-network reverse adjacency (incoming arc ids as plain lists).
#: Weak keys: entries die with their network, and identity-keying is safe
#: because networks are immutable.
_REVERSE_ADJACENCY: "weakref.WeakKeyDictionary[Network, list[list[int]]]" = (
    weakref.WeakKeyDictionary()
)


def _reverse_adjacency(network: Network) -> list[list[int]]:
    cached = _REVERSE_ADJACENCY.get(network)
    if cached is None:
        cached = [[int(a) for a in arcs] for arcs in network.in_arcs]
        _REVERSE_ADJACENCY[network] = cached
    return cached


def _dijkstra_to(
    n: int,
    in_arcs: list[list[int]],
    arc_src: list[int],
    weights: list[float],
    dead: "list[bool] | None",
    t: int,
) -> list[float]:
    """Single-destination heap Dijkstra over the reversed adjacency."""
    dist = [float("inf")] * n
    dist[t] = 0.0
    heap = [(0.0, t)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, v = pop(heap)
        if d > dist[v]:
            continue
        for a in in_arcs[v]:
            if dead is not None and dead[a]:
                continue
            u = arc_src[a]
            candidate = d + weights[a]
            if candidate < dist[u]:
                dist[u] = candidate
                push(heap, (candidate, u))
    return dist


def shortest_arc_mask(
    network: Network,
    weights: np.ndarray,
    dist_to_t: np.ndarray,
    disabled: np.ndarray | None = None,
) -> np.ndarray:
    """Which arcs belong to the shortest-path DAG towards one destination.

    Args:
        network: the topology.
        weights: per-arc weights.
        dist_to_t: distances to the destination, i.e. ``dist[:, t]``.
        disabled: optional boolean per-arc mask of dead arcs.

    Returns:
        Boolean per-arc mask; ``mask[a]`` is True iff arc ``a = (u, v)``
        satisfies ``dist_to_t[u] == w[a] + dist_to_t[v]`` with both
        distances finite (and the arc alive).
    """
    du = dist_to_t[network.arc_src]
    dv = dist_to_t[network.arc_dst]
    with np.errstate(invalid="ignore"):
        on_dag = np.abs(du - (weights + dv)) <= SPF_TOLERANCE
    on_dag &= np.isfinite(du) & np.isfinite(dv)
    if disabled is not None:
        on_dag &= ~disabled
    return on_dag


def path_counts(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    t: int,
    plan: "PropagationPlan | None" = None,
) -> np.ndarray:
    """Number of distinct shortest paths from each node to ``t``.

    A path-diversity diagnostic (the paper repeatedly attributes the
    benefit of robust optimization to path diversity).  Counts are
    computed by dynamic programming over the shortest-path DAG in
    increasing distance order, through the pure-Python fast-path kernel
    (the numpy reference lives in :func:`repro.routing.loader.
    path_counts_reference` and is pinned equal by tests).  Pass a
    prebuilt ``plan`` when calling repeatedly for one network.
    """
    if plan is None:
        plan = PropagationPlan.for_network(network)
    return np.asarray(
        fast_path_counts(plan, mask, dist_to_t, t), dtype=np.float64
    )


def next_hops(
    network: Network, mask: np.ndarray, node: int
) -> np.ndarray:
    """ECMP next-hop node ids of ``node`` in a shortest-path DAG mask."""
    out = network.out_arcs[node]
    live = out[mask[out]]
    return network.arc_dst[live]


def extract_one_path(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    source: int,
    t: int,
) -> list[int]:
    """One concrete shortest path ``source -> t`` as a node list.

    Picks the lexicographically-smallest next hop at each step; useful in
    examples and debugging output, never in the optimization itself.

    Raises:
        ValueError: if ``source`` cannot reach ``t``.
    """
    if not np.isfinite(dist_to_t[source]):
        raise ValueError(f"node {source} cannot reach {t}")
    path = [source]
    node = source
    while node != t:
        hops = next_hops(network, mask, node)
        if hops.size == 0:
            raise ValueError(f"dead end at node {node} towards {t}")
        node = int(hops.min())
        path.append(node)
        if len(path) > network.num_nodes:
            raise ValueError("cycle detected in shortest-path DAG")
    return path
