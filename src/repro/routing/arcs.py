"""Arc primitives for the directed network model.

The paper models the network as a directed graph ``G = (V, E)`` whose links
(*arcs* here, to avoid ambiguity with undirected fibers) each carry a
capacity ``C_l`` and a propagation delay ``p_l``.  Physical fibers appear
as a pair of opposite arcs; :func:`pair_arcs` recovers that pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Arc:
    """One directed link.

    Attributes:
        src: source node id.
        dst: destination node id.
        capacity: capacity ``C_l`` in bits per second.
        prop_delay: propagation delay ``p_l`` in seconds.
    """

    src: int
    dst: int
    capacity: float
    prop_delay: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop arc at node {self.src}")
        if self.capacity <= 0:
            raise ValueError("arc capacity must be positive")
        if self.prop_delay < 0:
            raise ValueError("arc propagation delay must be non-negative")

    @property
    def endpoints(self) -> tuple[int, int]:
        """The ``(src, dst)`` pair identifying this arc."""
        return (self.src, self.dst)

    def reversed(self) -> "Arc":
        """The opposite-direction arc with identical capacity and delay."""
        return Arc(self.dst, self.src, self.capacity, self.prop_delay)


def arcs_to_arrays(
    arcs: Sequence[Arc],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convert a list of arcs to (src, dst, capacity, prop_delay) arrays."""
    if not arcs:
        raise ValueError("network needs at least one arc")
    src = np.fromiter((a.src for a in arcs), dtype=np.int64, count=len(arcs))
    dst = np.fromiter((a.dst for a in arcs), dtype=np.int64, count=len(arcs))
    cap = np.fromiter((a.capacity for a in arcs), dtype=np.float64, count=len(arcs))
    delay = np.fromiter(
        (a.prop_delay for a in arcs), dtype=np.float64, count=len(arcs)
    )
    return src, dst, cap, delay


def pair_arcs(arcs: Sequence[Arc]) -> np.ndarray:
    """Map each arc index to the index of its reverse arc, or -1 if absent.

    Args:
        arcs: arc list; at most one arc per ordered ``(src, dst)`` pair.

    Returns:
        int64 array ``rev`` with ``arcs[rev[i]].endpoints ==
        (arcs[i].dst, arcs[i].src)`` wherever ``rev[i] >= 0``.
    """
    index = {arc.endpoints: i for i, arc in enumerate(arcs)}
    if len(index) != len(arcs):
        raise ValueError("parallel arcs between the same node pair")
    rev = np.full(len(arcs), -1, dtype=np.int64)
    for i, arc in enumerate(arcs):
        rev[i] = index.get((arc.dst, arc.src), -1)
    return rev


def undirected_pairs(arcs: Sequence[Arc]) -> list[tuple[int, ...]]:
    """Group arc indices into physical links.

    Each bidirectional fiber yields one ``(forward, backward)`` tuple
    (ordered so the lower arc index comes first); a one-way arc yields a
    singleton tuple.  The groups are disjoint and cover every arc, and are
    returned sorted by their first arc index so enumeration order is
    deterministic.
    """
    rev = pair_arcs(arcs)
    seen: set[int] = set()
    groups: list[tuple[int, ...]] = []
    for i in range(len(arcs)):
        if i in seen:
            continue
        j = int(rev[i])
        if j >= 0 and j not in seen:
            groups.append((i, j))
            seen.update((i, j))
        else:
            groups.append((i,))
            seen.add(i)
    return groups


def build_adjacency(
    num_nodes: int, src: np.ndarray, dst: np.ndarray
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Build per-node outgoing / incoming arc-id lists.

    Returns:
        ``(out_arcs, in_arcs)`` where ``out_arcs[u]`` is the int64 array of
        arc indices leaving ``u`` and ``in_arcs[v]`` those entering ``v``.
    """
    out_lists: list[list[int]] = [[] for _ in range(num_nodes)]
    in_lists: list[list[int]] = [[] for _ in range(num_nodes)]
    for arc_id, (u, v) in enumerate(zip(src.tolist(), dst.tolist())):
        out_lists[u].append(arc_id)
        in_lists[v].append(arc_id)
    out_arcs = [np.asarray(ids, dtype=np.int64) for ids in out_lists]
    in_arcs = [np.asarray(ids, dtype=np.int64) for ids in in_lists]
    return out_arcs, in_arcs


def validate_arcs(num_nodes: int, arcs: Iterable[Arc]) -> None:
    """Raise ``ValueError`` on out-of-range endpoints or duplicate arcs."""
    seen: set[tuple[int, int]] = set()
    for arc in arcs:
        for node in arc.endpoints:
            if not 0 <= node < num_nodes:
                raise ValueError(
                    f"arc endpoint {node} outside [0, {num_nodes})"
                )
        if arc.endpoints in seen:
            raise ValueError(f"duplicate arc {arc.endpoints}")
        seen.add(arc.endpoints)
