"""Routing substrate: directed network model, SPF/ECMP engine, failures."""

from repro.routing.arcs import Arc
from repro.routing.backend import (
    VALID_BACKENDS,
    backend_availability,
    numba_available,
    resolve_backend,
    validate_backend,
)
from repro.routing.engine import (
    ClassRouting,
    PathDelayReuse,
    RoutingEngine,
)
from repro.routing.incremental import IncrementalRouter, ScenarioRouting
from repro.routing.failures import (
    NORMAL,
    FailureModel,
    FailureScenario,
    FailureSet,
    dual_link_failures,
    single_arc_failures,
    single_failures,
    single_link_failures,
    single_node_failures,
)
from repro.routing.network import Network
from repro.routing.state import NetworkState

__all__ = [
    "Arc",
    "ClassRouting",
    "FailureModel",
    "FailureScenario",
    "FailureSet",
    "IncrementalRouter",
    "NORMAL",
    "Network",
    "NetworkState",
    "PathDelayReuse",
    "RoutingEngine",
    "ScenarioRouting",
    "VALID_BACKENDS",
    "backend_availability",
    "dual_link_failures",
    "numba_available",
    "resolve_backend",
    "validate_backend",
    "single_arc_failures",
    "single_failures",
    "single_link_failures",
    "single_node_failures",
]
