"""Topology-failure primitives: which arcs disappear, which traffic goes.

The paper optimizes against *all single link failures* (Section III) and
additionally evaluates *single node failures* (Section V-F), where a node
failure "triggers the failure of all its links as well as the removal of
all the traffic it originates".  We also remove traffic destined to the
failed node, since it is undeliverable (policy documented in
docs/DESIGN.md).

This module is the *primitive* layer — and the compatibility shim — of
the unified scenario subsystem (:mod:`repro.scenarios`): a
:class:`FailureScenario` is the topology half of a composed
:class:`~repro.scenarios.Scenario`, and every enumeration here is
reproduced bit-identically through
:meth:`repro.scenarios.ScenarioSet.from_failures` (pinned by tests).
New scenario families — SRLGs, k-link, regional, node, traffic surges,
cross products — live in :mod:`repro.scenarios.generators`; prefer
building :class:`~repro.scenarios.ScenarioSet` collections there for
anything beyond the paper's single-failure presets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

import numpy as np

from repro.routing.network import Network


class FailureModel(Enum):
    """Granularity at which link failures are enumerated.

    ``LINK`` fails a physical fiber: both directed arcs of a bidirectional
    pair.  ``ARC`` fails a single directed arc.  Experiment presets use
    ``LINK``; the sampling machinery works with either.
    """

    LINK = "link"
    ARC = "arc"


@dataclass(frozen=True)
class FailureScenario:
    """One failure: a set of dead arcs plus nodes whose traffic vanishes.

    Attributes:
        failed_arcs: arc ids removed from the topology.
        removed_nodes: nodes whose originated and destined traffic is
            dropped (non-empty only for node failures).
        label: stable identifier used in experiment output, e.g.
            ``"link:4"`` or ``"node:7"``.
    """

    failed_arcs: tuple[int, ...]
    removed_nodes: tuple[int, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "failed_arcs", tuple(sorted(set(self.failed_arcs)))
        )
        object.__setattr__(
            self, "removed_nodes", tuple(sorted(set(self.removed_nodes)))
        )

    @property
    def is_normal(self) -> bool:
        """True for the failure-free scenario."""
        return not self.failed_arcs and not self.removed_nodes


NORMAL = FailureScenario(failed_arcs=(), label="normal")
"""The failure-free scenario."""


@dataclass(frozen=True)
class FailureSet:
    """An ordered collection of failure scenarios to optimize against.

    Attributes:
        scenarios: the failure scenarios, in enumeration order.
        model: the granularity the scenarios were generated with (for
            reporting only; mixed sets use ``None``).
    """

    scenarios: tuple[FailureScenario, ...]
    model: FailureModel | None = None

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[FailureScenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> FailureScenario:
        return self.scenarios[index]

    def restricted_to_arcs(self, arc_ids: Sequence[int]) -> "FailureSet":
        """Scenarios whose failed arcs intersect ``arc_ids``.

        This is how a critical-link set ``Ec`` restricts the robust
        objective (Eq. 7): only failures touching a critical arc are
        evaluated.
        """
        wanted = set(int(a) for a in arc_ids)
        kept = tuple(
            s for s in self.scenarios if wanted.intersection(s.failed_arcs)
        )
        return FailureSet(kept, model=self.model)


def single_arc_failures(network: Network) -> FailureSet:
    """One scenario per directed arc (``FailureModel.ARC``)."""
    scenarios = tuple(
        FailureScenario(failed_arcs=(a,), label=f"arc:{a}")
        for a in range(network.num_arcs)
    )
    return FailureSet(scenarios, model=FailureModel.ARC)


def single_link_failures(network: Network) -> FailureSet:
    """One scenario per physical link (``FailureModel.LINK``).

    A bidirectional pair fails together; a one-way arc fails alone.
    """
    scenarios = tuple(
        FailureScenario(failed_arcs=group, label=f"link:{group[0]}")
        for group in network.link_groups
    )
    return FailureSet(scenarios, model=FailureModel.LINK)


def single_failures(network: Network, model: FailureModel) -> FailureSet:
    """Dispatch to :func:`single_arc_failures` / :func:`single_link_failures`."""
    if model is FailureModel.ARC:
        return single_arc_failures(network)
    return single_link_failures(network)


def single_node_failures(
    network: Network, nodes: Sequence[int] | None = None
) -> FailureSet:
    """One scenario per node: all incident arcs die, its traffic is removed.

    Args:
        network: the topology.
        nodes: nodes to fail (default: every node).
    """
    if nodes is None:
        nodes = range(network.num_nodes)
    scenarios = tuple(
        FailureScenario(
            failed_arcs=tuple(int(a) for a in network.arcs_of_node(v)),
            removed_nodes=(v,),
            label=f"node:{v}",
        )
        for v in nodes
    )
    return FailureSet(scenarios, model=None)


def dual_link_failures(
    network: Network,
    max_scenarios: int | None = None,
    rng: np.random.Generator | None = None,
) -> FailureSet:
    """All (or a sample of) simultaneous two-link failures.

    The paper mentions multiple link failures as an additional stressor in
    Section V-F footnote 16; this generator supports that evaluation.

    Args:
        network: the topology.
        max_scenarios: if given, uniformly sample this many pairs.
        rng: generator used when sampling (required with ``max_scenarios``).
    """
    groups = network.link_groups
    pairs = list(itertools.combinations(range(len(groups)), 2))
    if max_scenarios is not None and len(pairs) > max_scenarios:
        if rng is None:
            raise ValueError("rng is required when sampling scenarios")
        chosen = rng.choice(len(pairs), size=max_scenarios, replace=False)
        pairs = [pairs[int(i)] for i in chosen]
    scenarios = tuple(
        FailureScenario(
            failed_arcs=groups[i] + groups[j],
            label=f"link2:{groups[i][0]}+{groups[j][0]}",
        )
        for i, j in pairs
    )
    return FailureSet(scenarios, model=None)


def scenarios_touching_arcs(
    network: Network, arc_ids: Sequence[int], model: FailureModel
) -> FailureSet:
    """Single-failure scenarios covering exactly the given arcs.

    Used by Phase 2: given the critical set ``Ec`` this produces the
    failure scenarios whose cost sum defines ``K̄_fail`` (Eq. 7).
    """
    return single_failures(network, model).restricted_to_arcs(arc_ids)


def disabled_arc_mask(network: Network, scenario: FailureScenario) -> np.ndarray:
    """Boolean per-arc mask, True where the arc is dead under ``scenario``."""
    mask = np.zeros(network.num_arcs, dtype=bool)
    if scenario.failed_arcs:
        mask[list(scenario.failed_arcs)] = True
    return mask
