"""The routing engine: one-call evaluation of a weighted topology.

:class:`RoutingEngine` turns (weights, demands, failure scenario) into
per-arc loads and per-pair path delays.  It is the substrate every other
subsystem builds on: the cost model consumes its loads, the optimizer
calls it once per candidate weight setting per scenario.

Internally the engine computes distances with scipy's C Dijkstra, derives
all shortest-path DAG masks in one vectorized operation, and runs the
per-destination propagations through the pure-Python kernels of
:mod:`repro.routing.fastpath` (the numpy reference implementations live in
:mod:`repro.routing.loader` and are pinned equal by tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.routing.backend import (
    maybe_warm_numba,
    resolve_backend,
    routing_kernels,
    validate_backend,
)
from repro.routing.failures import NORMAL, FailureScenario, disabled_arc_mask
from repro.routing.fastpath import (
    PropagationPlan,
    destination_mask_rows,
    fast_propagate_loads,
    fast_propagate_mean_delay,
    fast_propagate_worst_delay,
)
from repro.routing.loader import max_arc_value_on_paths
from repro.routing.network import Network
from repro.routing.spf import _validate_weights, distance_columns
from repro.routing.vectorized import BatchPlan, build_schedule


def _batch_delay_kernel(resolved: str, mode: str):
    """The resolved backend's batch path-delay kernel for ``mode``.

    One lookup through the shared kernel table
    (:func:`repro.routing.backend.routing_kernels`), so the vector and
    numba stacks stay interchangeable at every delay call site.
    """
    kernels = routing_kernels(resolved)
    return (
        kernels.batch_propagate_mean_delay
        if mode == "mean"
        else kernels.batch_propagate_worst_delay
    )


#: Below this many leftover delay columns the per-destination python
#: kernel beats building a batch schedule.
_PY_DELAY_BATCH_MAX = 12


@dataclass(frozen=True)
class ClassRouting:
    """Shortest-path routing of one traffic class under one scenario.

    Attributes:
        network: the topology routed over.  This back-reference is for
            convenience only — no consumer of a routing needs it to
            interpret the arrays — and it is *dropped on pickling* so a
            routing serializes as a few small arrays instead of dragging
            the whole topology across process boundaries (the parallel
            evaluator ships routings to worker processes).  Use
            :meth:`bind` to re-attach a network after unpickling.
        scenario: the failure scenario in force.
        dist: ``(N, N)`` distance matrix under the class weights; only
            the demand-carrying ``destinations`` columns are computed
            (no consumer reads any other column), the rest are ``inf``.
        destinations: destination ids that carry demand, ascending.
        masks: ``(len(destinations), num_arcs)`` boolean DAG-membership
            rows, aligned with ``destinations``.
        loads: per-arc load contributed by this class.
        demands: the ``(N, N)`` demand matrix actually routed (node
            failures zero out rows/columns of removed nodes).
        undelivered: demand volume lost to disconnection.
    """

    network: Network | None
    scenario: FailureScenario
    dist: np.ndarray
    destinations: np.ndarray
    masks: np.ndarray
    loads: np.ndarray
    demands: np.ndarray
    undelivered: float

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state["network"] = None
        # Batch schedules are cheap to rebuild and heavy to ship.
        state.pop("_batch_schedule", None)
        state.pop("_subset_schedule", None)
        return state

    def bind(self, network: Network) -> "ClassRouting":
        """A copy with the network back-reference re-attached."""
        return replace(self, network=network)

    def used_arcs(self) -> np.ndarray:
        """Arcs lying on any demand-carrying shortest-path DAG.

        Computed once and cached — failure sweeps consult the same
        routing's used-arc set for every scenario.
        """
        cached = self.__dict__.get("_used_arcs")
        if cached is None:
            if self.masks.shape[0] == 0:
                cached = np.zeros(self.masks.shape[1], dtype=bool)
            else:
                cached = self.masks.any(axis=0)
            object.__setattr__(self, "_used_arcs", cached)
        return cached

    def mask_for(self, t: int) -> np.ndarray:
        """The shortest-DAG arc mask towards destination ``t``."""
        idx = int(np.searchsorted(self.destinations, t))
        if idx >= len(self.destinations) or self.destinations[idx] != t:
            raise KeyError(f"destination {t} carries no demand")
        return self.masks[idx]


@dataclass(frozen=True)
class PathDelayReuse:
    """Base-evaluation delay columns reusable by :meth:`RoutingEngine.
    path_delays` under a localized load change.

    Attributes:
        pair_delays: the base ``(N, N)`` path-delay matrix.
        arc_delays: the per-arc delays the base matrix was computed from.
        reusable: destinations whose distance column and mask row in the
            *current* routing are identical to the base routing's (the
            incremental router reports these).
    """

    pair_delays: np.ndarray
    arc_delays: np.ndarray
    reusable: frozenset[int]


class RoutingEngine:
    """Computes ECMP routings, loads, and path delays for one network.

    Args:
        network: the topology.
        backend: kernel backend — ``"python"`` (per-destination pure
            Python loops, fastest at backbone scale), ``"vector"``
            (array-native destination batches, fastest on large
            instances), ``"numba"`` (JIT-compiled batch kernels; soft
            dependency — raises here when numba is not importable) or
            ``"auto"`` (default; per-call choice from the instance's
            node/arc/destination counts, never numba when it is
            absent).  Backends are bit-identical on integer-weight
            instances, so this is purely an execution knob.
    """

    #: Capacity of the per-destination path-delay memo.
    _DELAY_MEMO_SIZE = 16384

    def __init__(self, network: Network, backend: str = "auto") -> None:
        self._network = network
        self._backend = validate_backend(backend)
        self._plan = PropagationPlan.for_network(network)
        self._batch_plan = BatchPlan.for_network(network)
        # Pre-compile the JIT kernels when this instance could dispatch
        # to them, so compile latency lands here — construction — and
        # never inside a timed sweep (no-op without numba; idempotent).
        maybe_warm_numba(backend, network.num_nodes, network.num_arcs)
        self._delay_memo: OrderedDict[tuple, np.ndarray] = OrderedDict()
        # The thread-pool evaluator shares one engine across workers;
        # memo bookkeeping (get + move_to_end, insert + evict) must not
        # interleave.
        self._delay_memo_lock = threading.Lock()

    @property
    def network(self) -> Network:
        """The topology this engine routes over."""
        return self._network

    @property
    def backend(self) -> str:
        """The configured kernel backend (``auto``/``python``/``vector``)."""
        return self._backend

    @property
    def plan(self) -> PropagationPlan:
        """The propagation plan (shareable with an incremental router)."""
        return self._plan

    def _resolve(self, num_destinations: int) -> str:
        """The concrete backend for a batch of this many destinations."""
        net = self._network
        return resolve_backend(
            self._backend, net.num_nodes, net.num_arcs, num_destinations
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route_class(
        self,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario = NORMAL,
        validate: bool = True,
    ) -> ClassRouting:
        """Route one traffic class and return its loads and DAG structure.

        Only the demand-carrying distance columns are computed (Dijkstra
        on the reversed graph), since they are all the engine — and every
        downstream consumer — ever reads.

        Args:
            weights: per-arc weights of this class, integer-valued >= 1.
            demands: ``(N, N)`` demand matrix in bits/s; diagonal ignored.
            scenario: failure scenario (dead arcs, removed nodes).
            validate: skip the weight/demand shape checks when False
                (the evaluator validates once per setting instead of once
                per scenario of a sweep).
        """
        net = self._network
        demands = np.asarray(demands, dtype=np.float64)
        if validate and demands.shape != (net.num_nodes, net.num_nodes):
            raise ValueError("demand matrix shape must be (N, N)")
        if scenario.removed_nodes:
            demands = demands.copy()
            removed = list(scenario.removed_nodes)
            demands[removed, :] = 0.0
            demands[:, removed] = 0.0

        disabled = (
            disabled_arc_mask(net, scenario)
            if scenario.failed_arcs
            else None
        )
        weights = np.asarray(weights, dtype=np.float64)
        if validate:
            _validate_weights(net, weights)
        destinations = np.flatnonzero(demands.sum(axis=0) > 0.0)
        # The demand-carrying columns are computed once, contiguously,
        # and threaded through masks and propagation directly; the
        # (N, N) matrix on the routing is a scatter of the same columns
        # (consumers index it per destination).  The configured backend
        # also selects the Dijkstra implementation: the python stack
        # runs the per-destination heap loop, the vector stack batched
        # scipy, and auto dispatches by batch size (seed behavior).
        cols = distance_columns(
            net, weights, destinations, disabled, backend=self._backend
        )
        dist = np.full((net.num_nodes, net.num_nodes), np.inf)
        if destinations.size:
            dist[:, destinations] = cols
        masks = destination_mask_rows(net, weights, cols, disabled)

        resolved = self._resolve(destinations.size)
        if resolved != "python":
            schedule = build_schedule(self._batch_plan, masks, cols)
            loads_arr, und = routing_kernels(resolved).batch_total_loads(
                self._batch_plan,
                masks,
                cols,
                demands[:, destinations],
                destinations,
                schedule=schedule,
            )
            # Fold undeliverable volumes in ascending destination order —
            # the exact float summation order of the python loop below.
            undelivered = 0.0
            for row in range(destinations.size):
                undelivered += float(und[row])
        else:
            loads = [0.0] * net.num_arcs
            undelivered = 0.0
            for row, t in enumerate(destinations):
                undelivered += fast_propagate_loads(
                    self._plan,
                    masks[row],
                    dist[:, t],
                    demands[:, t],
                    int(t),
                    loads,
                )
            loads_arr = np.asarray(loads, dtype=np.float64)
            schedule = None
        routing = ClassRouting(
            network=net,
            scenario=scenario,
            dist=dist,
            destinations=destinations,
            masks=masks,
            loads=loads_arr,
            demands=demands,
            undelivered=undelivered,
        )
        if schedule is not None:
            # Reused by path_delays on the same routing (pure function of
            # masks + dist, both frozen on the routing).
            object.__setattr__(routing, "_batch_schedule", schedule)
        return routing

    # ------------------------------------------------------------------
    # path metrics over an existing routing
    # ------------------------------------------------------------------
    def path_delays(
        self,
        routing: ClassRouting,
        arc_delays: np.ndarray,
        mode: str = "worst",
        reuse: "PathDelayReuse | None" = None,
        memo: bool = False,
    ) -> np.ndarray:
        """End-to-end path delay for every SD pair of a routed class.

        Args:
            routing: output of :meth:`route_class`.
            arc_delays: per-arc delay ``D_l`` in seconds (Eq. 1), computed
                from the *total* load across both classes.
            mode: ``"worst"`` (max over used ECMP paths, the default SLA
                evaluation) or ``"mean"`` (flow-weighted average).
            reuse: optional base-evaluation columns to copy instead of
                re-propagating.  A destination's delay column depends
                only on its DAG mask, its distance ordering, and the arc
                delays of *masked* arcs, so a destination in
                ``reuse.reusable`` (identical dist column and mask row in
                the base routing) whose mask avoids every arc with a
                changed delay gets its base column verbatim — bit-identical
                to re-propagation.
            memo: additionally memoize delay columns on ``(mode,
                destination, mask, dist, masked arc delays)`` — the exact
                inputs the propagation is a pure function of, so hits
                replay identical floats.  Off by default; the evaluator
                opts in alongside incremental routing (sweep states
                recur across local-search candidates).

        Returns:
            ``(N, N)`` matrix; entry ``(s, t)`` is the path delay for the
            pair, ``inf`` if disconnected, ``nan`` for destinations that
            carry no demand and for the diagonal.
        """
        if mode == "worst":
            propagate = fast_propagate_worst_delay
        elif mode == "mean":
            propagate = fast_propagate_mean_delay
        else:
            raise ValueError(f"unknown delay mode {mode!r}")
        net = self._network
        arc_delays = np.asarray(arc_delays, dtype=np.float64)
        delays_list: list[float] | None = None
        out = np.full((net.num_nodes, net.num_nodes), np.nan)
        #: Destinations that need propagation: (row, t, memo key).  The
        #: backend is resolved *after* the pre-pass, once the reuse/memo
        #: hits are known — warm sweeps leave few pending columns, and
        #: the propagation-only crossover decides for the rest.
        pending = self._delay_pending(
            routing, arc_delays, mode, reuse, memo, out
        )
        resolved = (
            resolve_backend(
                self._backend,
                net.num_nodes,
                net.num_arcs,
                len(pending),
                kind="propagate",
            )
            if pending
            else "python"
        )
        if pending and resolved == "python":
            delays_list = arc_delays.tolist()
            for row, t, key in pending:
                column = propagate(
                    self._plan,
                    routing.masks[row],
                    routing.dist[:, t],
                    delays_list,
                    t,
                )
                out[:, t] = column
                out[t, t] = np.nan
                if key is not None:
                    self._memo_put(key, out[:, t].copy())
            pending = []
        if pending:
            batch_propagate = _batch_delay_kernel(resolved, mode)
            schedule = None
            if len(pending) == len(routing.destinations):
                # Whole-batch propagation: reuse the schedule route_class
                # cached on the routing.
                schedule = routing.__dict__.get("_batch_schedule")
            else:
                # The incremental router hands over the schedule of the
                # destinations it re-propagated.  When most of them are
                # pending anyway, propagate that whole batch through the
                # prebuilt schedule — recomputing a column that was
                # individually reusable replays the identical bits — and
                # only the leftovers need fresh work.
                handed = routing.__dict__.get("_subset_schedule")
                if handed is not None:
                    bd = np.frombuffer(handed[0], dtype=np.intp)
                    bd_set = set(int(t) for t in bd)
                    covered = [p for p in pending if p[1] in bd_set]
                    if 2 * len(covered) >= len(bd):
                        rows_bd = np.searchsorted(routing.destinations, bd)
                        columns = batch_propagate(
                            self._batch_plan,
                            routing.masks[rows_bd],
                            None,
                            arc_delays,
                            bd,
                            schedule=handed[1],
                        )
                        pos_of = {int(t): i for i, t in enumerate(bd)}
                        for _, t, key in covered:
                            out[:, t] = columns[:, pos_of[t]]
                            out[t, t] = np.nan
                            if key is not None:
                                self._memo_put(key, out[:, t].copy())
                        pending = [
                            p for p in pending if p[1] not in bd_set
                        ]
        if pending:
            if len(pending) <= _PY_DELAY_BATCH_MAX and delays_list is None:
                delays_list = arc_delays.tolist()
            if delays_list is not None:
                # Leftover destinations too few to amortize a schedule
                # build: the per-destination python kernel is cheaper.
                for row, t, key in pending:
                    column = propagate(
                        self._plan,
                        routing.masks[row],
                        routing.dist[:, t],
                        delays_list,
                        t,
                    )
                    out[:, t] = column
                    out[t, t] = np.nan
                    if key is not None:
                        self._memo_put(key, out[:, t].copy())
            else:
                rows = np.asarray([row for row, _, _ in pending])
                ts = np.asarray([t for _, t, _ in pending])
                columns = batch_propagate(
                    self._batch_plan,
                    routing.masks[rows],
                    # The DP only needs distances to build a schedule.
                    routing.dist[:, ts] if schedule is None else None,
                    arc_delays,
                    ts,
                    schedule=schedule,
                )
                for i, (_, t, key) in enumerate(pending):
                    out[:, t] = columns[:, i]
                    out[t, t] = np.nan
                    if key is not None:
                        self._memo_put(key, out[:, t].copy())
        return out

    def _delay_pending(
        self,
        routing: ClassRouting,
        arc_delays: np.ndarray,
        mode: str,
        reuse: "PathDelayReuse | None",
        memo: bool,
        out: np.ndarray,
    ) -> "list[tuple[int, int, tuple | None]]":
        """The reuse/memo pre-pass of :meth:`path_delays`.

        Copies reusable and memoized delay columns into ``out`` and
        returns the ``(row, t, memo key)`` triples that still need
        propagation.  Shared with the sweep engine
        (:func:`repro.routing.sweep.flush_delay_batch`), which
        concatenates the pending columns of many scenarios into one DP.
        """
        changed = (
            arc_delays != reuse.arc_delays if reuse is not None else None
        )
        pending: list[tuple[int, int, tuple | None]] = []
        for row, t in enumerate(routing.destinations):
            t = int(t)
            mask_row = routing.masks[row]
            if (
                reuse is not None
                and t in reuse.reusable
                and not bool(mask_row[changed].any())
            ):
                out[:, t] = reuse.pair_delays[:, t]
                continue
            key = None
            if memo:
                # The DP result is a pure function of (mode, t, mask,
                # masked delays): the distance column only supplies a
                # topological order of the DAG, and any topological
                # order yields the same bits (max is order-invariant,
                # mean accumulates in fixed arc order).
                key = (
                    mode,
                    t,
                    mask_row.tobytes(),
                    arc_delays[mask_row].tobytes(),
                )
                with self._delay_memo_lock:
                    cached = self._delay_memo.get(key)
                    if cached is not None:
                        self._delay_memo.move_to_end(key)
                if cached is not None:
                    out[:, t] = cached
                    continue
            pending.append((row, t, key))
        return pending

    def _memo_put(self, key: tuple, column: np.ndarray) -> None:
        with self._delay_memo_lock:
            self._delay_memo[key] = column
            while len(self._delay_memo) > self._DELAY_MEMO_SIZE:
                self._delay_memo.popitem(last=False)

    def path_max_utilization(
        self, routing: ClassRouting, utilization: np.ndarray
    ) -> np.ndarray:
        """Max arc utilization seen by each SD pair along its used paths.

        This is the per-pair "maximum link utilization" ingredient of
        Table V / Fig. 5d.  Entries mirror :meth:`path_delays`.
        """
        net = self._network
        out = np.full((net.num_nodes, net.num_nodes), np.nan)
        for row, t in enumerate(routing.destinations):
            worst = max_arc_value_on_paths(
                net,
                routing.masks[row],
                routing.dist[:, t],
                utilization,
                int(t),
            )
            out[:, t] = worst
            out[t, t] = np.nan
        return out
