"""The routing engine: one-call evaluation of a weighted topology.

:class:`RoutingEngine` turns (weights, demands, failure scenario) into
per-arc loads and per-pair path delays.  It is the substrate every other
subsystem builds on: the cost model consumes its loads, the optimizer
calls it once per candidate weight setting per scenario.

Internally the engine computes distances with scipy's C Dijkstra, derives
all shortest-path DAG masks in one vectorized operation, and runs the
per-destination propagations through the pure-Python kernels of
:mod:`repro.routing.fastpath` (the numpy reference implementations live in
:mod:`repro.routing.loader` and are pinned equal by tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.routing.failures import NORMAL, FailureScenario, disabled_arc_mask
from repro.routing.fastpath import (
    PropagationPlan,
    all_destination_masks,
    fast_propagate_loads,
    fast_propagate_mean_delay,
    fast_propagate_worst_delay,
)
from repro.routing.loader import max_arc_value_on_paths
from repro.routing.network import Network
from repro.routing.spf import distance_matrix


@dataclass(frozen=True)
class ClassRouting:
    """Shortest-path routing of one traffic class under one scenario.

    Attributes:
        network: the topology routed over.  This back-reference is for
            convenience only — no consumer of a routing needs it to
            interpret the arrays — and it is *dropped on pickling* so a
            routing serializes as a few small arrays instead of dragging
            the whole topology across process boundaries (the parallel
            evaluator ships routings to worker processes).  Use
            :meth:`bind` to re-attach a network after unpickling.
        scenario: the failure scenario in force.
        dist: ``(N, N)`` distance matrix under the class weights; only
            the demand-carrying ``destinations`` columns are computed
            (no consumer reads any other column), the rest are ``inf``.
        destinations: destination ids that carry demand, ascending.
        masks: ``(len(destinations), num_arcs)`` boolean DAG-membership
            rows, aligned with ``destinations``.
        loads: per-arc load contributed by this class.
        demands: the ``(N, N)`` demand matrix actually routed (node
            failures zero out rows/columns of removed nodes).
        undelivered: demand volume lost to disconnection.
    """

    network: Network | None
    scenario: FailureScenario
    dist: np.ndarray
    destinations: np.ndarray
    masks: np.ndarray
    loads: np.ndarray
    demands: np.ndarray
    undelivered: float

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state["network"] = None
        return state

    def bind(self, network: Network) -> "ClassRouting":
        """A copy with the network back-reference re-attached."""
        return replace(self, network=network)

    def used_arcs(self) -> np.ndarray:
        """Arcs lying on any demand-carrying shortest-path DAG.

        Computed once and cached — failure sweeps consult the same
        routing's used-arc set for every scenario.
        """
        cached = self.__dict__.get("_used_arcs")
        if cached is None:
            if self.masks.shape[0] == 0:
                cached = np.zeros(self.masks.shape[1], dtype=bool)
            else:
                cached = self.masks.any(axis=0)
            object.__setattr__(self, "_used_arcs", cached)
        return cached

    def mask_for(self, t: int) -> np.ndarray:
        """The shortest-DAG arc mask towards destination ``t``."""
        idx = int(np.searchsorted(self.destinations, t))
        if idx >= len(self.destinations) or self.destinations[idx] != t:
            raise KeyError(f"destination {t} carries no demand")
        return self.masks[idx]


@dataclass(frozen=True)
class PathDelayReuse:
    """Base-evaluation delay columns reusable by :meth:`RoutingEngine.
    path_delays` under a localized load change.

    Attributes:
        pair_delays: the base ``(N, N)`` path-delay matrix.
        arc_delays: the per-arc delays the base matrix was computed from.
        reusable: destinations whose distance column and mask row in the
            *current* routing are identical to the base routing's (the
            incremental router reports these).
    """

    pair_delays: np.ndarray
    arc_delays: np.ndarray
    reusable: frozenset[int]


class RoutingEngine:
    """Computes ECMP routings, loads, and path delays for one network."""

    #: Capacity of the per-destination path-delay memo.
    _DELAY_MEMO_SIZE = 16384

    def __init__(self, network: Network) -> None:
        self._network = network
        self._plan = PropagationPlan.for_network(network)
        self._delay_memo: OrderedDict[tuple, np.ndarray] = OrderedDict()
        # The thread-pool evaluator shares one engine across workers;
        # memo bookkeeping (get + move_to_end, insert + evict) must not
        # interleave.
        self._delay_memo_lock = threading.Lock()

    @property
    def network(self) -> Network:
        """The topology this engine routes over."""
        return self._network

    @property
    def plan(self) -> PropagationPlan:
        """The propagation plan (shareable with an incremental router)."""
        return self._plan

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route_class(
        self,
        weights: np.ndarray,
        demands: np.ndarray,
        scenario: FailureScenario = NORMAL,
        validate: bool = True,
    ) -> ClassRouting:
        """Route one traffic class and return its loads and DAG structure.

        Only the demand-carrying distance columns are computed (Dijkstra
        on the reversed graph), since they are all the engine — and every
        downstream consumer — ever reads.

        Args:
            weights: per-arc weights of this class, integer-valued >= 1.
            demands: ``(N, N)`` demand matrix in bits/s; diagonal ignored.
            scenario: failure scenario (dead arcs, removed nodes).
            validate: skip the weight/demand shape checks when False
                (the evaluator validates once per setting instead of once
                per scenario of a sweep).
        """
        net = self._network
        demands = np.asarray(demands, dtype=np.float64)
        if validate and demands.shape != (net.num_nodes, net.num_nodes):
            raise ValueError("demand matrix shape must be (N, N)")
        if scenario.removed_nodes:
            demands = demands.copy()
            removed = list(scenario.removed_nodes)
            demands[removed, :] = 0.0
            demands[:, removed] = 0.0

        disabled = (
            disabled_arc_mask(net, scenario)
            if scenario.failed_arcs
            else None
        )
        weights = np.asarray(weights, dtype=np.float64)
        destinations = np.flatnonzero(demands.sum(axis=0) > 0.0)
        dist = distance_matrix(
            net,
            weights,
            disabled,
            destinations=destinations,
            validate=validate,
        )
        masks = all_destination_masks(
            net, weights, dist, disabled, destinations
        )

        loads = [0.0] * net.num_arcs
        undelivered = 0.0
        for row, t in enumerate(destinations):
            undelivered += fast_propagate_loads(
                self._plan,
                masks[row],
                dist[:, t],
                demands[:, t],
                int(t),
                loads,
            )
        return ClassRouting(
            network=net,
            scenario=scenario,
            dist=dist,
            destinations=destinations,
            masks=masks,
            loads=np.asarray(loads, dtype=np.float64),
            demands=demands,
            undelivered=undelivered,
        )

    # ------------------------------------------------------------------
    # path metrics over an existing routing
    # ------------------------------------------------------------------
    def path_delays(
        self,
        routing: ClassRouting,
        arc_delays: np.ndarray,
        mode: str = "worst",
        reuse: "PathDelayReuse | None" = None,
        memo: bool = False,
    ) -> np.ndarray:
        """End-to-end path delay for every SD pair of a routed class.

        Args:
            routing: output of :meth:`route_class`.
            arc_delays: per-arc delay ``D_l`` in seconds (Eq. 1), computed
                from the *total* load across both classes.
            mode: ``"worst"`` (max over used ECMP paths, the default SLA
                evaluation) or ``"mean"`` (flow-weighted average).
            reuse: optional base-evaluation columns to copy instead of
                re-propagating.  A destination's delay column depends
                only on its DAG mask, its distance ordering, and the arc
                delays of *masked* arcs, so a destination in
                ``reuse.reusable`` (identical dist column and mask row in
                the base routing) whose mask avoids every arc with a
                changed delay gets its base column verbatim — bit-identical
                to re-propagation.
            memo: additionally memoize delay columns on ``(mode,
                destination, mask, dist, masked arc delays)`` — the exact
                inputs the propagation is a pure function of, so hits
                replay identical floats.  Off by default; the evaluator
                opts in alongside incremental routing (sweep states
                recur across local-search candidates).

        Returns:
            ``(N, N)`` matrix; entry ``(s, t)`` is the path delay for the
            pair, ``inf`` if disconnected, ``nan`` for destinations that
            carry no demand and for the diagonal.
        """
        if mode == "worst":
            propagate = fast_propagate_worst_delay
        elif mode == "mean":
            propagate = fast_propagate_mean_delay
        else:
            raise ValueError(f"unknown delay mode {mode!r}")
        net = self._network
        arc_delays = np.asarray(arc_delays, dtype=np.float64)
        changed = (
            arc_delays != reuse.arc_delays if reuse is not None else None
        )
        delays_list = arc_delays.tolist()
        out = np.full((net.num_nodes, net.num_nodes), np.nan)
        for row, t in enumerate(routing.destinations):
            t = int(t)
            mask_row = routing.masks[row]
            if (
                reuse is not None
                and t in reuse.reusable
                and not bool(mask_row[changed].any())
            ):
                out[:, t] = reuse.pair_delays[:, t]
                continue
            key = None
            if memo:
                # The DP result is a pure function of (mode, t, mask,
                # masked delays): the distance column only supplies a
                # topological order of the DAG, and any topological
                # order yields the same bits (max is order-invariant,
                # mean accumulates in fixed arc order).
                key = (
                    mode,
                    t,
                    mask_row.tobytes(),
                    arc_delays[mask_row].tobytes(),
                )
                with self._delay_memo_lock:
                    cached = self._delay_memo.get(key)
                    if cached is not None:
                        self._delay_memo.move_to_end(key)
                if cached is not None:
                    out[:, t] = cached
                    continue
            column = propagate(
                self._plan,
                mask_row,
                routing.dist[:, t],
                delays_list,
                t,
            )
            out[:, t] = column
            out[t, t] = np.nan
            if key is not None:
                with self._delay_memo_lock:
                    self._delay_memo[key] = out[:, t].copy()
                    while len(self._delay_memo) > self._DELAY_MEMO_SIZE:
                        self._delay_memo.popitem(last=False)
        return out

    def path_max_utilization(
        self, routing: ClassRouting, utilization: np.ndarray
    ) -> np.ndarray:
        """Max arc utilization seen by each SD pair along its used paths.

        This is the per-pair "maximum link utilization" ingredient of
        Table V / Fig. 5d.  Entries mirror :meth:`path_delays`.
        """
        net = self._network
        out = np.full((net.num_nodes, net.num_nodes), np.nan)
        for row, t in enumerate(routing.destinations):
            worst = max_arc_value_on_paths(
                net,
                routing.masks[row],
                routing.dist[:, t],
                utilization,
                int(t),
            )
            out[:, t] = worst
            out[t, t] = np.nan
        return out
