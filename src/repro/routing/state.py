"""Aggregated link-level state of the network under one routing.

A :class:`NetworkState` bundles the per-class and total arc loads together
with derived utilizations, giving the cost model and the analysis metrics
a single object to consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.engine import ClassRouting
from repro.routing.network import Network


@dataclass(frozen=True)
class NetworkState:
    """Link loads and utilizations under one (scenario, weight setting).

    Attributes:
        network: the topology.
        loads_delay: per-arc load of the delay-sensitive class (bits/s).
        loads_tput: per-arc load of the throughput-sensitive class.
        undelivered_delay: delay-class volume lost to disconnection.
        undelivered_tput: throughput-class volume lost to disconnection.
    """

    network: Network
    loads_delay: np.ndarray
    loads_tput: np.ndarray
    undelivered_delay: float = 0.0
    undelivered_tput: float = 0.0

    def __post_init__(self) -> None:
        n = self.network.num_arcs
        for name in ("loads_delay", "loads_tput"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(f"{name} must have one entry per arc")

    @classmethod
    def from_routings(
        cls, delay_routing: ClassRouting, tput_routing: ClassRouting
    ) -> "NetworkState":
        """Combine the two per-class routings into one link state."""
        if delay_routing.network is not tput_routing.network:
            raise ValueError("routings belong to different networks")
        return cls(
            network=delay_routing.network,
            loads_delay=delay_routing.loads,
            loads_tput=tput_routing.loads,
            undelivered_delay=delay_routing.undelivered,
            undelivered_tput=tput_routing.undelivered,
        )

    @property
    def total_loads(self) -> np.ndarray:
        """Per-arc total load ``x_l`` (classes share a FIFO queue)."""
        return self.loads_delay + self.loads_tput

    @property
    def utilization(self) -> np.ndarray:
        """Per-arc utilization ``x_l / C_l``."""
        return self.total_loads / self.network.capacity

    @property
    def mean_utilization(self) -> float:
        """Average utilization over arcs that carry any traffic or not.

        The paper's "average link utilization" statistic averages across
        all links.
        """
        return float(self.utilization.mean())

    @property
    def max_utilization(self) -> float:
        """Maximum per-arc utilization."""
        return float(self.utilization.max())

    def arcs_carrying_tput(self) -> np.ndarray:
        """Boolean mask of arcs with positive throughput-class load.

        Eq. (3) of the paper sums the congestion cost over "the set of
        links carrying throughput-sensitive traffic".
        """
        return self.loads_tput > 0.0
