"""ECMP traffic loading and path-delay propagation.

Destination-based even splitting, as in OSPF and the Fortz–Thorup model:
at every node, flow towards a destination is divided equally among the
node's outgoing arcs that lie on the shortest-path DAG.

Both routines are per-destination linear passes over nodes ordered by
distance to the destination, so one full load (or delay) computation costs
``O(|V| log |V| + |E|)`` per destination on top of the Dijkstra run.
"""

from __future__ import annotations

import numpy as np

from repro.routing.network import Network


def propagate_loads(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    demand_to_t: np.ndarray,
    t: int,
    loads: np.ndarray,
) -> float:
    """Push demand towards destination ``t`` through the ECMP DAG.

    Args:
        network: the topology.
        mask: boolean per-arc shortest-DAG membership for destination ``t``.
        dist_to_t: per-node distance to ``t``.
        demand_to_t: per-node demand volume destined to ``t``.
        t: the destination node.
        loads: per-arc load accumulator, updated in place.

    Returns:
        The volume of demand that could not be delivered because its
        source is disconnected from ``t``.
    """
    finite = np.isfinite(dist_to_t)
    flow = np.where(finite, demand_to_t, 0.0).astype(np.float64, copy=True)
    flow[t] = 0.0
    undelivered = float(demand_to_t[~finite].sum())

    order = np.argsort(-dist_to_t[finite], kind="stable")
    nodes = np.flatnonzero(finite)[order]
    arc_dst = network.arc_dst
    for u in nodes:
        volume = flow[u]
        if volume <= 0.0 or u == t:
            continue
        out = network.out_arcs[u]
        live = out[mask[out]]
        if live.size == 0:
            # Finite distance guarantees an outgoing shortest arc; this
            # branch is unreachable unless the mask is inconsistent.
            undelivered += volume
            continue
        share = volume / live.size
        loads[live] += share
        np.add.at(flow, arc_dst[live], share)
    return undelivered


def propagate_worst_delay(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    arc_delays: np.ndarray,
    t: int,
) -> np.ndarray:
    """Worst-case ECMP path delay from every node to ``t``.

    ``delay[u] = max over shortest arcs (u, v) of arc_delays[a] + delay[v]``,
    evaluated in increasing distance order.  Disconnected nodes get ``inf``.
    """
    n = network.num_nodes
    delay = np.full(n, np.inf, dtype=np.float64)
    delay[t] = 0.0
    finite = np.isfinite(dist_to_t)
    order = np.argsort(dist_to_t[finite], kind="stable")
    nodes = np.flatnonzero(finite)[order]
    arc_dst = network.arc_dst
    for u in nodes:
        if u == t:
            continue
        out = network.out_arcs[u]
        live = out[mask[out]]
        if live.size == 0:
            continue
        delay[u] = float(np.max(arc_delays[live] + delay[arc_dst[live]]))
    return delay


def propagate_mean_delay(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    arc_delays: np.ndarray,
    t: int,
) -> np.ndarray:
    """Flow-weighted mean ECMP path delay from every node to ``t``.

    With even per-node splitting, the expected delay satisfies
    ``delay[u] = mean over shortest arcs (u, v) of arc_delays[a] + delay[v]``.
    """
    n = network.num_nodes
    delay = np.full(n, np.inf, dtype=np.float64)
    delay[t] = 0.0
    finite = np.isfinite(dist_to_t)
    order = np.argsort(dist_to_t[finite], kind="stable")
    nodes = np.flatnonzero(finite)[order]
    arc_dst = network.arc_dst
    for u in nodes:
        if u == t:
            continue
        out = network.out_arcs[u]
        live = out[mask[out]]
        if live.size == 0:
            continue
        delay[u] = float(np.mean(arc_delays[live] + delay[arc_dst[live]]))
    return delay


def path_counts_reference(
    network: Network, mask: np.ndarray, dist_to_t: np.ndarray, t: int
) -> np.ndarray:
    """Numpy reference for shortest-path counts per node towards ``t``.

    The production implementation is the pure-Python kernel
    :func:`repro.routing.fastpath.fast_path_counts` (exposed through
    :func:`repro.routing.spf.path_counts`); tests pin the two equal.
    """
    n = network.num_nodes
    counts = np.zeros(n, dtype=np.float64)
    counts[t] = 1.0
    order = np.argsort(dist_to_t, kind="stable")
    for u in order:
        if u == t or not np.isfinite(dist_to_t[u]):
            continue
        out = network.out_arcs[u]
        live = out[mask[out]]
        counts[u] = counts[network.arc_dst[live]].sum()
    return counts


def max_arc_value_on_paths(
    network: Network,
    mask: np.ndarray,
    dist_to_t: np.ndarray,
    arc_values: np.ndarray,
    t: int,
) -> np.ndarray:
    """Maximum per-arc value seen along any used path from each node to ``t``.

    Used for the paper's "average maximum link utilization experienced by
    each SD pair on its path" metric (Table V and Fig. 5d): call with
    ``arc_values`` = per-arc utilization.
    """
    n = network.num_nodes
    worst = np.full(n, np.inf, dtype=np.float64)
    worst[t] = -np.inf
    finite = np.isfinite(dist_to_t)
    order = np.argsort(dist_to_t[finite], kind="stable")
    nodes = np.flatnonzero(finite)[order]
    arc_dst = network.arc_dst
    for u in nodes:
        if u == t:
            continue
        out = network.out_arcs[u]
        live = out[mask[out]]
        if live.size == 0:
            continue
        worst[u] = float(
            np.max(np.maximum(arc_values[live], worst[arc_dst[live]]))
        )
    return worst
