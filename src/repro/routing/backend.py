"""Size-adaptive routing-backend selection.

Three implementations of the per-destination routing kernels coexist:

* ``"python"`` — the pure-Python propagation loops of
  :mod:`repro.routing.fastpath`.  At backbone scale (tens of nodes, a
  few hundred arcs) numpy call overhead dominates, so plain lists win
  by 3-6x there.
* ``"vector"`` — the array-native batch kernels of
  :mod:`repro.routing.vectorized`, which process a whole destination
  batch as 2D arrays (one argsort of the distance columns, masked
  scatter-adds along arcs).  Per-step numpy overhead is amortized over
  every destination, so this side wins once the instance is large —
  Rocketfuel-class ISP topologies at hundreds of nodes.
* ``"numba"`` — JIT-compiled counterparts of the batch kernels
  (:mod:`repro.routing.numba_kernels`) that consume the same
  ``BatchPlan``/``BatchSchedule`` arrays but fuse each level sweep into
  one compiled loop, eliminating the per-level numpy dispatch that caps
  the vector stack.  **Soft dependency**: numba is gated on import —
  requesting the backend without numba installed raises at validation
  time, and ``"auto"`` never selects it when absent.

All backends produce bit-identical results on integer-weight instances
(the parity tests pin this), so backend choice is purely an execution
knob.  ``"auto"`` picks per call from the *work measure* of the batch —
``num_destinations * (num_nodes + num_arcs)``, the element count the
propagation sweep actually touches — against crossovers calibrated by
``benchmarks/bench_scale.py`` (see ``BENCH_scale.json`` and the Scaling
section of docs/PERFORMANCE.md, which record the measurement).
"""

from __future__ import annotations

import importlib.util

#: Recognized backend names.
VALID_BACKENDS = ("auto", "python", "vector", "numba")

#: Work measure (``destinations * (nodes + arcs)``) above which the
#: vector kernels take over a *full routing* (masks + propagation +
#: path-delay DP; the distance-column implementation dispatches
#: separately by batch size under ``auto``).  Calibrated with
#: ``benchmarks/bench_scale.py``: on the 16-node ISP backbone
#: (work ~ 1.4k) the python kernels win comfortably, on the 30-node
#: benchmark instance (30 nodes / 138 arcs, work ~ 5.0k) the
#: production workload — incremental delta sweeps — still favors them,
#: and from the 30-node PLTopo (work ~ 5.9k) upward the vector side
#: wins every measured sweep, by 4-5x at 200-400 nodes.  The constant
#: sits between those bracketing measurements.
VECTOR_CROSSOVER_WORK = 5_500

#: Crossover for *propagation-only* batches (the incremental router's
#: scenario deltas and the path-delay DP), where no Dijkstra rides
#: along to amortize: the batch kernels win much earlier.  Calibrated
#: head-to-head against the python loop on powerlaw instances — the
#: break-even sits between work ~ 2.8k (python ahead) and ~ 5.5k
#: (vector ahead) across 100-400 nodes.
VECTOR_PROPAGATION_CROSSOVER_WORK = 4_500

#: Work measure above which the JIT kernels take over from the python
#: loops under ``auto`` *when numba is importable* (they always beat
#: the vector kernels above it too — compiled level sweeps drop the
#: per-level numpy dispatch the vector stack still pays, so the numba
#: side of the bracket can only start earlier, never later).
#: Provisional bracket, reasoned from the vector calibration: the
#: compiled kernels keep the vector stack's O(levels) algorithm but
#: none of its per-level python/numpy call overhead, so their
#: break-even against the python loops sits well below
#: ``VECTOR_PROPAGATION_CROSSOVER_WORK`` — the 16-node ISP backbone
#: (work ~ 1.4k) stays on the python path, the 30-node instances
#: (work ~ 5-6k) and up go compiled.  ``benchmarks/bench_scale.py``
#: records the measured three-way bracket into ``BENCH_scale.json``
#: whenever it runs on a numba-equipped machine (the CI ``jit`` lane
#: does); recalibrate this constant from that record.
NUMBA_CROSSOVER_WORK = 2_000

#: Memoized import probe: None until first checked.
_NUMBA_AVAILABLE: "bool | None" = None


def numba_available() -> bool:
    """Whether the optional numba dependency is importable.

    Probes ``importlib.util.find_spec`` once and memoizes — the probe
    runs inside ``auto`` dispatch, so it must stay cheap.  Tests
    monkeypatch :data:`_NUMBA_AVAILABLE` to pin either outcome.
    """
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        _NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None
    return _NUMBA_AVAILABLE


def backend_availability() -> dict:
    """Which routing backends this environment can run, with versions.

    Recorded in the ``context`` block of every ``BENCH_*.json`` (via
    ``benchmarks/bench_schema.py``) so benchmark rows stay interpretable
    across machines: a record with ``numba: false`` explains absent
    numba columns instead of leaving them ambiguous.
    """
    info: dict = {
        "python": True,
        "vector": True,
        "numba": numba_available(),
        "numba_version": None,
    }
    if info["numba"]:
        try:
            import numba

            info["numba_version"] = numba.__version__
        except Exception:  # pragma: no cover - broken install
            info["numba"] = False
    try:
        import numpy

        info["numpy_version"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        info["numpy_version"] = None
    return info


#: Recognized sweep-batching modes (see :func:`resolve_sweep_batching`).
VALID_SWEEP_BATCHING = ("auto", "on", "off")

#: Scenarios below which the scenario-axis batch sweep engine
#: (:mod:`repro.routing.sweep`) cannot amortize its planning pass under
#: ``auto``.  Calibrated with ``benchmarks/bench_sweep.py``
#: (``BENCH_sweep.json``): batching wins from a handful of scenarios up
#: on every measured instance — the 16-node ISP backbone included —
#: because the batched delay DP replaces one schedule build + kernel
#: invocation per scenario with one per group, so only degenerate
#: sweeps (a single scenario, where there is nothing to group) fall
#: back to the per-scenario path.
SWEEP_BATCH_MIN_SCENARIOS = 2


def validate_sweep_batching(mode: str) -> str:
    """Return ``mode`` if recognized, raise ``ValueError`` otherwise."""
    if mode not in VALID_SWEEP_BATCHING:
        raise ValueError(
            f"unknown sweep_batching mode {mode!r}; "
            f"choose from {', '.join(VALID_SWEEP_BATCHING)}"
        )
    return mode


def resolve_sweep_batching(mode: str, num_scenarios: int) -> bool:
    """Whether a sweep of ``num_scenarios`` runs the batch sweep engine.

    ``"on"`` / ``"off"`` force the choice; ``"auto"`` (the default)
    batches every sweep of at least :data:`SWEEP_BATCH_MIN_SCENARIOS`
    scenarios.  Batching is bit-identical to the per-scenario path on
    integer-weight instances (the same guarantee the kernel backends
    give), so the knob is purely an execution decision.
    """
    validate_sweep_batching(mode)
    if mode == "off":
        return False
    if num_scenarios < 1:
        return False
    if mode == "on":
        return True
    return num_scenarios >= SWEEP_BATCH_MIN_SCENARIOS


def validate_resilience(
    max_retries: int,
    retry_backoff: float,
    task_timeout: "float | None",
    sweep_deadline: "float | None",
) -> None:
    """Validate the fault-tolerance knobs of ``ExecutionParams``.

    Raises ``ValueError`` on an invalid combination.  Lives beside the
    other execution-knob validators so ``repro.config`` has one home
    for how knobs are checked.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0 (0 disables retries)")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be >= 0 seconds")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError("task_timeout must be positive when given")
    if sweep_deadline is not None and sweep_deadline <= 0:
        raise ValueError("sweep_deadline must be positive when given")
    if (
        task_timeout is not None
        and sweep_deadline is not None
        and task_timeout > sweep_deadline
    ):
        raise ValueError(
            "task_timeout must not exceed sweep_deadline "
            "(a single task could consume the whole sweep budget)"
        )


#: Recognized executor kinds for ``ExecutionParams.executor``.
VALID_EXECUTORS = ("process", "thread", "hosts")


def parse_hosts(spec: str) -> "tuple[tuple[str, int], ...] | int":
    """Parse a ``hosts=`` spec into concrete host endpoints.

    Two grammars are accepted (see ``repro.core.distributed``):

    * ``"local:N"`` — spawn ``N`` localhost host processes; returns the
      integer ``N``.
    * ``"host:port[,host:port...]"`` — connect to already-running
      ``repro-exp serve-host`` servers; returns a tuple of
      ``(host, port)`` pairs in spec order (order is the shard order).

    Raises ``ValueError`` on anything else, so a typo fails at
    configuration time instead of hanging in a connect loop.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("hosts spec must be a non-empty string")
    spec = spec.strip()
    if spec.startswith("local:"):
        tail = spec[len("local:"):]
        try:
            count = int(tail)
        except ValueError:
            raise ValueError(
                f"malformed hosts spec {spec!r}: 'local:' needs an "
                "integer host count, e.g. 'local:2'"
            ) from None
        if count < 1:
            raise ValueError("hosts spec 'local:N' needs N >= 1")
        return count
    endpoints = []
    for part in spec.split(","):
        part = part.strip()
        host, sep, port_text = part.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"malformed hosts spec entry {part!r}: expected "
                "'host:port' (or 'local:N' to spawn localhost hosts)"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"malformed hosts spec entry {part!r}: port must be "
                "an integer"
            ) from None
        if not 0 < port < 65536:
            raise ValueError(
                f"hosts spec entry {part!r}: port out of range"
            )
        endpoints.append((host, port))
    return tuple(endpoints)


def validate_hosts(hosts: "str | None", executor: str) -> None:
    """Validate the ``hosts`` knob of ``ExecutionParams``.

    ``executor="hosts"`` requires a parseable spec; any other executor
    must leave ``hosts`` unset (a spec that silently did nothing would
    hide a misconfigured run).
    """
    if executor == "hosts":
        if hosts is None:
            raise ValueError(
                "executor='hosts' requires a hosts= spec "
                "('local:N' or 'host:port,...')"
            )
        parse_hosts(hosts)
    elif hosts is not None:
        raise ValueError(
            "hosts= is only meaningful with executor='hosts' "
            f"(got executor={executor!r})"
        )


def validate_backend(backend: str) -> str:
    """Return ``backend`` if recognized and runnable, raise otherwise.

    ``"numba"`` is recognized but *soft*: requesting it on a machine
    where numba is not importable raises immediately (with an install
    hint) instead of failing deep inside the first kernel call.
    """
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown routing backend {backend!r}; "
            f"choose from {', '.join(VALID_BACKENDS)}"
        )
    if backend == "numba" and not numba_available():
        raise ValueError(
            "routing backend 'numba' requires the optional numba "
            "dependency, which is not importable here; install it with "
            "'pip install numba' (or the [jit] extra) or use backend "
            "'auto'/'vector'"
        )
    return backend


def resolve_backend(
    backend: str,
    num_nodes: int,
    num_arcs: int,
    num_destinations: int,
    kind: str = "route",
) -> str:
    """Resolve ``"auto"`` to a concrete backend for one kernel batch.

    Args:
        backend: requested backend (``"auto"``, ``"python"``,
            ``"vector"``, ``"numba"``).
        num_nodes: node count of the instance.
        num_arcs: arc count of the instance.
        num_destinations: destinations in the batch about to be
            processed (propagation work scales with all three).
        kind: ``"route"`` for a full routing (distance columns + masks
            + propagation), ``"propagate"`` for a propagation-only
            batch — each has its own calibrated crossover.

    Returns:
        ``"python"``, ``"vector"`` or ``"numba"``.  ``"auto"`` resolves
        three-way: the python loops below the JIT crossover, the numba
        kernels above it when numba is importable, the vector kernels
        above the vector crossover otherwise — so an environment
        without numba resolves exactly as it did before the JIT
        backend existed.
    """
    if backend != "auto":
        return validate_backend(backend)
    work = num_destinations * (num_nodes + num_arcs)
    if work >= NUMBA_CROSSOVER_WORK and numba_available():
        return "numba"
    threshold = (
        VECTOR_PROPAGATION_CROSSOVER_WORK
        if kind == "propagate"
        else VECTOR_CROSSOVER_WORK
    )
    return "vector" if work >= threshold else "python"


def resolve_batch_backend(
    backend: str,
    num_nodes: int,
    num_arcs: int,
    num_columns: int,
) -> str:
    """The array backend for a call site already committed to batching.

    The scenario-axis sweep engine and the schedule-replay paths run
    batch kernels regardless of size (their columns span scenarios, so
    the per-destination python loops are never in play); this resolves
    only the *which array stack* half of the decision: ``"numba"`` when
    forced or when ``auto`` clears the JIT crossover on a numba-equipped
    machine, ``"vector"`` otherwise.
    """
    if backend == "numba":
        return validate_backend(backend)
    if backend == "auto" and numba_available():
        work = num_columns * (num_nodes + num_arcs)
        if work >= NUMBA_CROSSOVER_WORK:
            return "numba"
    return "vector"


def routing_kernels(resolved: str):
    """The batch-kernel table of one resolved array backend.

    Returns the module exposing the four batch kernels —
    ``batch_propagate_loads``, ``batch_total_loads``,
    ``batch_propagate_worst_delay``, ``batch_propagate_mean_delay`` —
    under identical call signatures, so every kernel call site
    (engine, incremental router, sweep engine) dispatches through this
    one indirection instead of importing a stack directly.  Imports are
    deferred: this module is imported by ``repro.config``, which must
    stay importable without numpy-heavy modules loading eagerly.
    """
    if resolved == "numba":
        from repro.routing import numba_kernels

        return numba_kernels
    if resolved == "vector":
        from repro.routing import vectorized

        return vectorized
    raise ValueError(
        f"no batch-kernel table for backend {resolved!r}; "
        "expected 'vector' or 'numba'"
    )


def maybe_warm_numba(backend: str, num_nodes: int, num_arcs: int) -> None:
    """Pre-compile the JIT kernels if this instance could dispatch to them.

    Called at evaluator/engine construction so numba's compile latency
    (seconds on a cold cache) lands before any timed sweep, never inside
    one.  The probe asks whether a full-width propagation batch
    (``num_destinations = num_nodes``, the largest batch the instance
    can produce) would resolve to the numba kernels; warm-up is
    idempotent, so over-warming costs one dict lookup.  Worker processes
    of a parallel evaluator construct their engines after unpickling and
    re-enter here — compiled dispatch state is module-global and never
    pickled, so workers recompile (or load numba's on-disk cache) on
    first use, mirroring how ``ClassRouting`` drops its schedule on
    pickling and rebuilds it worker-side.
    """
    if not numba_available():
        return
    if (
        resolve_backend(
            backend, num_nodes, num_arcs, num_nodes, kind="propagate"
        )
        == "numba"
    ):
        from repro.routing.numba_kernels import warmup

        warmup()
