"""Size-adaptive routing-backend selection.

Two implementations of the per-destination routing kernels coexist:

* ``"python"`` — the pure-Python propagation loops of
  :mod:`repro.routing.fastpath`.  At backbone scale (tens of nodes, a
  few hundred arcs) numpy call overhead dominates, so plain lists win
  by 3-6x there.
* ``"vector"`` — the array-native batch kernels of
  :mod:`repro.routing.vectorized`, which process a whole destination
  batch as 2D arrays (one argsort of the distance columns, masked
  scatter-adds along arcs).  Per-step numpy overhead is amortized over
  every destination, so this side wins once the instance is large —
  Rocketfuel-class ISP topologies at hundreds of nodes.

Both produce bit-identical results on integer-weight instances (the
parity tests pin this), so backend choice is purely an execution knob.
``"auto"`` picks per call from the *work measure* of the batch —
``num_destinations * (num_nodes + num_arcs)``, the element count the
propagation sweep actually touches — against a crossover calibrated by
``benchmarks/bench_scale.py`` (see ``BENCH_scale.json`` and the Scaling
section of docs/PERFORMANCE.md, which record the measurement).
"""

from __future__ import annotations

#: Recognized backend names.
VALID_BACKENDS = ("auto", "python", "vector")

#: Work measure (``destinations * (nodes + arcs)``) above which the
#: vector kernels take over a *full routing* (masks + propagation +
#: path-delay DP; the distance-column implementation dispatches
#: separately by batch size under ``auto``).  Calibrated with
#: ``benchmarks/bench_scale.py``: on the 16-node ISP backbone
#: (work ~ 1.4k) the python kernels win comfortably, on the 30-node
#: benchmark instance (30 nodes / 138 arcs, work ~ 5.0k) the
#: production workload — incremental delta sweeps — still favors them,
#: and from the 30-node PLTopo (work ~ 5.9k) upward the vector side
#: wins every measured sweep, by 4-5x at 200-400 nodes.  The constant
#: sits between those bracketing measurements.
VECTOR_CROSSOVER_WORK = 5_500

#: Crossover for *propagation-only* batches (the incremental router's
#: scenario deltas and the path-delay DP), where no Dijkstra rides
#: along to amortize: the batch kernels win much earlier.  Calibrated
#: head-to-head against the python loop on powerlaw instances — the
#: break-even sits between work ~ 2.8k (python ahead) and ~ 5.5k
#: (vector ahead) across 100-400 nodes.
VECTOR_PROPAGATION_CROSSOVER_WORK = 4_500


#: Recognized sweep-batching modes (see :func:`resolve_sweep_batching`).
VALID_SWEEP_BATCHING = ("auto", "on", "off")

#: Scenarios below which the scenario-axis batch sweep engine
#: (:mod:`repro.routing.sweep`) cannot amortize its planning pass under
#: ``auto``.  Calibrated with ``benchmarks/bench_sweep.py``
#: (``BENCH_sweep.json``): batching wins from a handful of scenarios up
#: on every measured instance — the 16-node ISP backbone included —
#: because the batched delay DP replaces one schedule build + kernel
#: invocation per scenario with one per group, so only degenerate
#: sweeps (a single scenario, where there is nothing to group) fall
#: back to the per-scenario path.
SWEEP_BATCH_MIN_SCENARIOS = 2


def validate_sweep_batching(mode: str) -> str:
    """Return ``mode`` if recognized, raise ``ValueError`` otherwise."""
    if mode not in VALID_SWEEP_BATCHING:
        raise ValueError(
            f"unknown sweep_batching mode {mode!r}; "
            f"choose from {', '.join(VALID_SWEEP_BATCHING)}"
        )
    return mode


def resolve_sweep_batching(mode: str, num_scenarios: int) -> bool:
    """Whether a sweep of ``num_scenarios`` runs the batch sweep engine.

    ``"on"`` / ``"off"`` force the choice; ``"auto"`` (the default)
    batches every sweep of at least :data:`SWEEP_BATCH_MIN_SCENARIOS`
    scenarios.  Batching is bit-identical to the per-scenario path on
    integer-weight instances (the same guarantee the kernel backends
    give), so the knob is purely an execution decision.
    """
    validate_sweep_batching(mode)
    if mode == "off":
        return False
    if num_scenarios < 1:
        return False
    if mode == "on":
        return True
    return num_scenarios >= SWEEP_BATCH_MIN_SCENARIOS


def validate_resilience(
    max_retries: int,
    retry_backoff: float,
    task_timeout: "float | None",
    sweep_deadline: "float | None",
) -> None:
    """Validate the fault-tolerance knobs of ``ExecutionParams``.

    Raises ``ValueError`` on an invalid combination.  Lives beside the
    other execution-knob validators so ``repro.config`` has one home
    for how knobs are checked.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0 (0 disables retries)")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be >= 0 seconds")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError("task_timeout must be positive when given")
    if sweep_deadline is not None and sweep_deadline <= 0:
        raise ValueError("sweep_deadline must be positive when given")
    if (
        task_timeout is not None
        and sweep_deadline is not None
        and task_timeout > sweep_deadline
    ):
        raise ValueError(
            "task_timeout must not exceed sweep_deadline "
            "(a single task could consume the whole sweep budget)"
        )


def validate_backend(backend: str) -> str:
    """Return ``backend`` if recognized, raise ``ValueError`` otherwise."""
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown routing backend {backend!r}; "
            f"choose from {', '.join(VALID_BACKENDS)}"
        )
    return backend


def resolve_backend(
    backend: str,
    num_nodes: int,
    num_arcs: int,
    num_destinations: int,
    kind: str = "route",
) -> str:
    """Resolve ``"auto"`` to a concrete backend for one kernel batch.

    Args:
        backend: requested backend (``"auto"``, ``"python"``,
            ``"vector"``).
        num_nodes: node count of the instance.
        num_arcs: arc count of the instance.
        num_destinations: destinations in the batch about to be
            processed (propagation work scales with all three).
        kind: ``"route"`` for a full routing (distance columns + masks
            + propagation), ``"propagate"`` for a propagation-only
            batch — each has its own calibrated crossover.

    Returns:
        ``"python"`` or ``"vector"``.
    """
    if backend != "auto":
        return validate_backend(backend)
    threshold = (
        VECTOR_PROPAGATION_CROSSOVER_WORK
        if kind == "propagate"
        else VECTOR_CROSSOVER_WORK
    )
    work = num_destinations * (num_nodes + num_arcs)
    return "vector" if work >= threshold else "python"
