"""Array-native batch kernels for large-instance routing.

The pure-Python kernels of :mod:`repro.routing.fastpath` iterate nodes
and arcs one at a time — unbeatable at backbone scale, quadratically
painful on Rocketfuel-class topologies (hundreds of nodes, thousands of
arcs).  The kernels here process a whole destination *batch* as 2D
arrays: one stable argsort of the ``(N, D)`` distance columns fixes the
propagation order of every destination at once, a *schedule* groups the
(node, destination) cells by distance level, and each level is handled
with masked gathers and scatter-adds along arcs.  Two nodes at the same
distance towards the same destination can never feed each other (a DAG
arc strictly decreases the distance, weights being >= 1), so a whole
level is safe to process in one vectorized step and Python-level work
drops from ``O(N * D)`` iterations to one step per distinct distance
value — typically a few dozen regardless of instance size.

Bit-identity with the python kernels (and therefore with the reference
implementations in :mod:`repro.routing.loader`) is engineered, not
hoped for:

* the stable argsort orders ties by node id — exactly the order the
  python kernels visit them — and level grouping preserves it, so every
  accumulation sequence matches;
* every ECMP share is the same ``volume / live_count`` division, and
  each ``(destination, arc)`` pair receives exactly one contribution, so
  contribution writes are plain assignments with no accumulation-order
  freedom;
* per-slot *flow* accumulations use ``np.add.at``/``np.bincount``,
  which accumulate sequentially in flat input order — the python
  kernels' node-then-arc order (idle cells add ``+0.0``, which is
  bit-preserving for the non-negative values involved);
* undeliverable volume folds unreachable demand in ascending node order
  first (a scalar loop over the rare entries), then dead-end volumes in
  level order, exactly as ``fast_propagate_loads`` does.

``tests/routing/test_vectorized.py`` pins all of it property-style.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.routing.network import Network


@dataclass(frozen=True)
class BatchPlan:
    """Flat per-network arc arrays reused by every batch kernel.

    Attributes:
        num_nodes: node count.
        num_arcs: arc count.
        arc_src: per-arc source node.
        arc_dst: per-arc destination node.
    """

    num_nodes: int
    num_arcs: int
    arc_src: np.ndarray
    arc_dst: np.ndarray

    @classmethod
    def for_network(cls, network: Network) -> "BatchPlan":
        """The cached plan for ``network`` (built once per topology)."""
        cached = _BATCH_PLANS.get(network)
        if cached is None:
            cached = cls(
                num_nodes=network.num_nodes,
                num_arcs=network.num_arcs,
                arc_src=network.arc_src.astype(np.intp, copy=False),
                arc_dst=network.arc_dst.astype(np.intp, copy=False),
            )
            _BATCH_PLANS[network] = cached
        return cached


#: Weak keys: plans die with their network; identity-keying is safe
#: because networks are immutable.
_BATCH_PLANS: "weakref.WeakKeyDictionary[Network, BatchPlan]" = (
    weakref.WeakKeyDictionary()
)


@dataclass(frozen=True)
class BatchSchedule:
    """The level-grouped processing order of one (masks, dist) batch.

    Every finite (node, destination-column) cell appears exactly once,
    grouped by its *distance level* (cells of equal distance within one
    column); within a level, cells follow column-major order with
    ascending node ids inside a column — the python kernels' stable tie
    order.  The live-arc expansion of every cell is precomputed (from
    the mask matrix directly, whose within-row arc order is the
    adjacency order the python kernels iterate), so a kernel's per-level
    work is pure slicing.  A schedule depends only on ``(masks,
    dist_cols)``, so one routing's schedule is shared between its load
    propagation and its path-delay DPs.

    Attributes:
        nodes: node id per scheduled cell.
        cols: destination-column index per scheduled cell.
        level_ptr: cell-slice boundaries per level (len ``levels + 1``).
        live_counts: live out-arcs (float) per cell.
        seg: owning cell index per expanded live arc.
        arcs: arc id per expanded live arc.
        arc_cols: destination-column index per expanded live arc.
        arc_ptr: arc-slice boundaries per level (len ``levels + 1``).
        cell_ptr: arc-slice start per cell (len ``cells + 1``) — the
            ``reduceat`` boundaries of per-cell arc segments.
    """

    nodes: np.ndarray
    cols: np.ndarray
    level_ptr: np.ndarray
    live_counts: np.ndarray
    seg: np.ndarray
    arcs: np.ndarray
    arc_cols: np.ndarray
    arc_ptr: np.ndarray
    cell_ptr: np.ndarray

    @property
    def num_levels(self) -> int:
        return len(self.level_ptr) - 1


def _scheduled_cells(
    dist_cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Finite cells ordered by (level, column, node id).

    Returns ``(nodes, cols, level_ptr)``.  Distances are integer-valued
    in every optimizer path (weights are OSPF-style integers), which
    admits a composite *unique* integer sort key ``(dist, col, node)`` —
    one unstable argsort of unique keys is a deterministic total order,
    so it replays the python kernels' stable tie order without paying
    for a stable sort.  Non-integral distances fall back to a dense
    per-column ranking.
    """
    n, d = dist_cols.shape
    dist_t = dist_cols.T  # (D, N): row-major scan = column-major cells
    finite_t = np.isfinite(dist_t)
    if finite_t.all():
        # The overwhelmingly common case (connected instance): every
        # cell is scheduled, so the index arrays are pure patterns.
        vals = dist_t.ravel()
        cols_f = np.repeat(np.arange(d, dtype=np.intp), n)
        nodes_f = np.tile(np.arange(n, dtype=np.intp), d)
    else:
        vals = dist_t[finite_t]
        cols_f, nodes_f = np.nonzero(finite_t)
    lev = vals.astype(np.int64)
    if lev.size and not np.array_equal(lev, vals):
        # Non-integral distances: dense per-column rank via stable sort.
        order = np.argsort(dist_cols, axis=0, kind="stable")
        sorted_vals = np.take_along_axis(dist_cols, order, axis=0)
        is_new = np.ones((n, d), dtype=bool)
        is_new[1:] = sorted_vals[1:] != sorted_vals[:-1]
        ranks = np.cumsum(is_new, axis=0) - 1
        keep = np.isfinite(sorted_vals).T.ravel()
        nodes_f = order.T.ravel()[keep]
        cols_f = np.repeat(np.arange(d, dtype=np.intp), n)[keep]
        lev = ranks.T.ravel()[keep]
        by_level = np.argsort(lev, kind="stable")
    elif lev.size and int(lev.max()) < 2**15:
        # numpy's stable sort on <= 16-bit ints is an O(n) radix sort,
        # and stability preserves the column-major node-ascending
        # enumeration inside each level — the python tie order.
        by_level = np.argsort(lev.astype(np.int16), kind="stable")
    else:
        by_level = np.argsort((lev * d + cols_f) * n + nodes_f)
    nodes = nodes_f[by_level]
    cols = cols_f[by_level]
    lev = lev[by_level]
    if lev.size == 0:
        return nodes, cols, np.zeros(1, dtype=np.intp)
    change = np.flatnonzero(lev[1:] != lev[:-1]) + 1
    level_ptr = np.concatenate(([0], change, [lev.size]))
    return nodes, cols, level_ptr


def build_schedule(
    plan: BatchPlan, masks: np.ndarray, dist_cols: np.ndarray
) -> BatchSchedule:
    """Build the batch schedule for ``(masks, dist_cols)``."""
    n = plan.num_nodes
    d = masks.shape[0]
    nodes, cols, level_ptr = _scheduled_cells(dist_cols)

    # Live-arc expansion straight from the mask matrix: nonzero yields,
    # per column, ascending arc ids — the adjacency order of each cell.
    # Every mask arc has finite endpoints, so its source is a scheduled
    # cell.  The composite key is unique, so an unstable argsort yields
    # cell-grouped arcs in ascending arc order.
    cell_of = np.empty((d, n), dtype=np.intp)
    cell_of[cols, nodes] = np.arange(nodes.size)
    nz_cols, nz_arcs = np.nonzero(masks)
    owner = cell_of[nz_cols, plan.arc_src[nz_arcs]]
    cell_key = owner * plan.num_arcs + nz_arcs
    if cell_key.size and nodes.size * plan.num_arcs < 2**31:
        cell_key = cell_key.astype(np.int32)
    by_cell = np.argsort(cell_key)
    seg = owner[by_cell]
    arcs = nz_arcs[by_cell]
    counts = np.bincount(seg, minlength=nodes.size)
    live_counts = counts.astype(np.float64)
    arc_ptr = np.searchsorted(seg, level_ptr)
    cell_ptr = np.zeros(nodes.size + 1, dtype=np.intp)
    np.cumsum(counts, out=cell_ptr[1:])
    return BatchSchedule(
        nodes=nodes,
        cols=cols,
        level_ptr=level_ptr,
        live_counts=live_counts,
        seg=seg,
        arcs=arcs,
        arc_cols=cols[seg],
        arc_ptr=arc_ptr,
        cell_ptr=cell_ptr,
    )


def _propagate_shares(
    plan: BatchPlan,
    masks: np.ndarray,
    dist_cols: np.ndarray,
    demand_cols: np.ndarray,
    dests: np.ndarray,
    schedule: BatchSchedule | None,
) -> tuple[BatchSchedule, np.ndarray, np.ndarray]:
    """Shared level sweep: per-arc ECMP shares plus undeliverable volume.

    Returns ``(schedule, shares, undelivered)`` where ``shares`` aligns
    with ``schedule.arcs`` (zero for idle cells) and ``undelivered`` is
    per destination.
    """
    n, d = dist_cols.shape
    cols = np.arange(d)
    dests = np.asarray(dests, dtype=np.intp)
    finite = np.isfinite(dist_cols)
    flow = np.where(finite & (demand_cols > 0.0), demand_cols, 0.0)
    flow[dests, cols] = 0.0

    undelivered = np.zeros(d)
    unreachable = ~finite & (demand_cols > 0.0)
    if unreachable.any():
        # Exact ascending-node fold, matching the python kernel's scan.
        for col in np.flatnonzero(unreachable.any(axis=0)):
            total = 0.0
            for v in np.flatnonzero(unreachable[:, col]):
                total += float(demand_cols[v, col])
            undelivered[col] = total

    sched = (
        schedule
        if schedule is not None
        else build_schedule(plan, masks, dist_cols)
    )
    shares = np.zeros(len(sched.arcs))
    arc_dst = plan.arc_dst
    # Farthest level first: every cell's inflow is settled before its
    # level runs (a DAG arc strictly decreases distance, so it crosses
    # levels downward).
    for lv in range(sched.num_levels - 1, -1, -1):
        p0, p1 = sched.level_ptr[lv], sched.level_ptr[lv + 1]
        l_nodes = sched.nodes[p0:p1]
        l_cols = sched.cols[p0:p1]
        vol = flow[l_nodes, l_cols]
        active = (vol > 0.0) & (l_nodes != dests[l_cols])
        if not active.any():
            continue
        counts = sched.live_counts[p0:p1]
        has = counts > 0.0
        share = np.zeros(p1 - p0)
        np.divide(vol, counts, out=share, where=has)
        share[~active] = 0.0
        dead = active & ~has
        if dead.any():
            np.add.at(undelivered, l_cols[dead], vol[dead])
        a0, a1 = sched.arc_ptr[lv], sched.arc_ptr[lv + 1]
        seg_local = sched.seg[a0:a1] - p0
        arc_share = share[seg_local]
        shares[a0:a1] = arc_share
        np.add.at(
            flow,
            (arc_dst[sched.arcs[a0:a1]], sched.arc_cols[a0:a1]),
            arc_share,
        )
    return sched, shares, undelivered


def batch_propagate_loads(
    plan: BatchPlan,
    masks: np.ndarray,
    dist_cols: np.ndarray,
    demand_cols: np.ndarray,
    dests: np.ndarray,
    schedule: BatchSchedule | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """ECMP load propagation for a whole destination batch.

    Args:
        plan: the network's batch plan.
        masks: ``(D, num_arcs)`` DAG-membership rows.
        dist_cols: ``(N, D)`` distances towards each destination.
        demand_cols: ``(N, D)`` demand towards each destination.
        dests: the ``D`` destination node ids.
        schedule: optional prebuilt schedule of ``(masks, dist_cols)``.

    Returns:
        ``(contribs, undelivered)``: the ``(D, num_arcs)`` per-destination
        load contributions and the ``(D,)`` undeliverable volumes — each
        row/entry bit-identical to one
        :func:`repro.routing.fastpath.fast_propagate_loads` call.
    """
    sched, shares, undelivered = _propagate_shares(
        plan, masks, dist_cols, demand_cols, dests, schedule
    )
    contribs = np.zeros((masks.shape[0], plan.num_arcs))
    # Each (destination, arc) pair is written exactly once: plain
    # assignment, no accumulation order to worry about (idle cells
    # write the 0.0 the array already holds).
    contribs[sched.arc_cols, sched.arcs] = shares
    return contribs, undelivered


def batch_total_loads(
    plan: BatchPlan,
    masks: np.ndarray,
    dist_cols: np.ndarray,
    demand_cols: np.ndarray,
    dests: np.ndarray,
    schedule: BatchSchedule | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`batch_propagate_loads` but folding the total directly.

    Returns ``(loads, undelivered)`` with ``loads`` the per-arc total
    over the batch, bit-identical to folding the contribution rows in
    ascending destination order (the python engine's loop order): the
    scatter-add applies each arc's contributions in ascending column
    order — idle-cell zeros add ``+0.0``, which is bit-preserving —
    without materializing the ``(D, num_arcs)`` matrix.
    """
    sched, shares, undelivered = _propagate_shares(
        plan, masks, dist_cols, demand_cols, dests, schedule
    )
    # Unique composite key: unstable argsort gives (column, arc) order.
    fold_key = sched.arc_cols * plan.num_arcs + sched.arcs
    if fold_key.size and masks.shape[0] * plan.num_arcs < 2**31:
        fold_key = fold_key.astype(np.int32)
    fold = np.argsort(fold_key)
    loads = np.zeros(plan.num_arcs)
    np.add.at(loads, sched.arcs[fold], shares[fold])
    return loads, undelivered


def _batch_propagate_delay(
    plan: BatchPlan,
    masks: np.ndarray | None,
    dist_cols: np.ndarray | None,
    arc_delays: np.ndarray,
    dests: np.ndarray,
    mean: bool,
    schedule: BatchSchedule | None = None,
    delay_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Shared driver of the worst/mean path-delay DPs (ascending levels).

    ``masks`` and ``dist_cols`` may be None when ``schedule`` is
    supplied — the DP itself only consumes the schedule.

    With ``delay_rows``, ``arc_delays`` is a 2-D ``(S, num_arcs)`` stack
    and column ``i`` reads row ``delay_rows[i]`` — the scenario-axis
    batching hook: columns belonging to different failure scenarios (and
    therefore different arc-delay vectors) share one schedule and one
    level sweep.  Per column the arithmetic is unchanged — the same
    ``arc_delay + downstream`` additions, the same per-cell
    bincount/reduceat folds — so each column stays bit-identical to a
    single-scenario call.
    """
    dests = np.asarray(dests, dtype=np.intp)
    n = plan.num_nodes
    d = masks.shape[0] if masks is not None else len(dests)
    cols = np.arange(d)
    delay = np.full((n, d), np.inf)
    delay[dests, cols] = 0.0
    if schedule is not None:
        sched = schedule
    else:
        assert masks is not None and dist_cols is not None, (
            "need masks and dist_cols without a schedule"
        )
        sched = build_schedule(plan, masks, dist_cols)
    arc_dst = plan.arc_dst
    for lv in range(sched.num_levels):
        p0, p1 = sched.level_ptr[lv], sched.level_ptr[lv + 1]
        a0, a1 = sched.arc_ptr[lv], sched.arc_ptr[lv + 1]
        if a0 == a1:
            continue
        l_nodes = sched.nodes[p0:p1]
        l_cols = sched.cols[p0:p1]
        l_arcs = sched.arcs[a0:a1]
        if delay_rows is None:
            arc_base = arc_delays[l_arcs]
        else:
            arc_base = arc_delays[
                delay_rows[sched.arc_cols[a0:a1]], l_arcs
            ]
        candidates = (
            arc_base
            + delay[arc_dst[l_arcs], sched.arc_cols[a0:a1]]
        )
        has = (sched.live_counts[p0:p1] > 0.0) & (l_nodes != dests[l_cols])
        if not has.any():
            continue
        if mean:
            # bincount accumulates strictly sequentially in flat input
            # order — the python kernel's arc order.  (reduceat would
            # sum pairwise on high-degree cells and drift by ulps.)
            seg_local = sched.seg[a0:a1] - p0
            totals = np.bincount(
                seg_local, weights=candidates, minlength=p1 - p0
            )
            values = totals[has] / sched.live_counts[p0:p1][has]
        else:
            # Per-cell arc runs are contiguous (arcless cells have zero
            # width), so reduceat over the has-cells' starts takes each
            # cell's max — order-free, no rounding involved.
            starts = sched.cell_ptr[p0:p1][has] - a0
            values = np.maximum.reduceat(candidates, starts)
        delay[l_nodes[has], l_cols[has]] = values
    return delay


def batch_propagate_worst_delay(
    plan: BatchPlan,
    masks: np.ndarray | None,
    dist_cols: np.ndarray | None,
    arc_delays: np.ndarray,
    dests: np.ndarray,
    schedule: BatchSchedule | None = None,
    delay_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Worst used-path delay columns for a destination batch.

    Returns an ``(N, D)`` array whose column ``i`` is bit-identical to
    ``fast_propagate_worst_delay`` towards ``dests[i]`` (``max`` picks
    one of its inputs, so segment maxima involve no rounding freedom).
    ``delay_rows`` selects a per-column row of a 2-D ``arc_delays``
    stack (scenario-axis batching).
    """
    return _batch_propagate_delay(
        plan, masks, dist_cols, arc_delays, dests, mean=False,
        schedule=schedule, delay_rows=delay_rows,
    )


def batch_propagate_mean_delay(
    plan: BatchPlan,
    masks: np.ndarray | None,
    dist_cols: np.ndarray | None,
    arc_delays: np.ndarray,
    dests: np.ndarray,
    schedule: BatchSchedule | None = None,
    delay_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Flow-weighted mean path-delay columns for a destination batch.

    ``np.bincount`` accumulates sequentially in flat input order — the
    python kernel's arc order — so each column is bit-identical to
    ``fast_propagate_mean_delay``.  ``delay_rows`` selects a per-column
    row of a 2-D ``arc_delays`` stack (scenario-axis batching).
    """
    return _batch_propagate_delay(
        plan, masks, dist_cols, arc_delays, dests, mean=True,
        schedule=schedule, delay_rows=delay_rows,
    )
