"""JIT-compiled batch routing kernels (the optional ``numba`` backend).

These are drop-in counterparts of the four batch kernels of
:mod:`repro.routing.vectorized` — identical call signatures, consuming
the same :class:`~repro.routing.vectorized.BatchPlan` /
:class:`~repro.routing.vectorized.BatchSchedule` arrays — with the level
sweeps compiled to fused loops via ``numba.njit``.  The vector kernels
pay a fixed python/numpy dispatch cost *per distance level* (a dozen
array ops each); the compiled sweeps pay it once per kernel call, which
is what lifts throughput past the vector stack's 4-5x plateau and pulls
the crossover against the pure-python loops down to backbone-adjacent
sizes.

Bit-identity with the python and vector kernels on integer-weight
instances is engineered the same way the vector kernels engineered it —
by replaying the exact float-operation order:

* the load sweep walks levels farthest-first and, within a level, cells
  in schedule order with each cell's live arcs in adjacency order —
  exactly the flat order ``np.add.at`` accumulates for the vector
  kernel (and the python kernels' node-then-arc order); idle cells
  contribute the same ``+0.0`` adds the vector kernel's zero shares do;
* unreachable demand folds in ascending node order per column before
  the sweep, then dead-end volumes in level order — the
  ``fast_propagate_loads`` fold order;
* the total-loads fold replays the vector kernel's ascending
  ``(destination column, arc)`` accumulation order (the python engine's
  per-destination loop order);
* the mean-delay DP sums each cell's arc candidates sequentially in arc
  order (``np.bincount``'s flat-order accumulation); the worst-delay DP
  takes segment maxima, which involve no rounding freedom at all.

``numba`` is a **soft dependency**.  When it is not importable the
``@njit`` decorators degrade to identity and the kernels below still
run — as slow pure-python reference loops, which is exactly what
``tests/routing/test_numba_kernels.py`` exercises on numba-free
machines to pin the operation-order parity of this module's loop
bodies.  The dispatcher (:mod:`repro.routing.backend`) never *selects*
this backend without numba: ``validate_backend("numba")`` raises and
``auto`` skips it, so the uncompiled fallback is reachable only by
importing this module directly.

Compiled-dispatch state is module-global and never pickled: a worker
process of a parallel evaluator imports this module afresh and
recompiles (or loads numba's on-disk ``cache=True`` cache) on first
use, mirroring how ``ClassRouting`` drops its batch schedule on
pickling and rebuilds it worker-side.  Call :func:`warmup` (idempotent;
:func:`repro.routing.backend.maybe_warm_numba` does it at engine
construction) to keep compile latency out of timed sweeps.

Set ``REPRO_NUMBA_PARALLEL=1`` to compile the path-delay DPs with
``parallel=True`` (cells of one level fan out across threads).  The DP
stays bit-identical either way: within a level every cell writes only
its own output and reads only strictly-lower levels, and each cell's
arithmetic is sequential inside one thread.  The load sweep is always
sequential — its cross-cell flow accumulation has a pinned order.
"""

from __future__ import annotations

import os
import threading

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator: without numba the kernels run as plain
        python reference loops (dispatch never routes here, tests do)."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(func):
            return func

        return wrap


#: Compile the delay DPs with ``parallel=True`` (see module docstring).
PARALLEL_ENABLED = os.environ.get("REPRO_NUMBA_PARALLEL", "").lower() in (
    "1",
    "true",
    "on",
)


def numba_version() -> "str | None":
    """The importable numba's version string, None when absent."""
    if not NUMBA_AVAILABLE:
        return None
    import numba

    return numba.__version__


# ----------------------------------------------------------------------
# compiled cores (flat arrays only — numba cannot consume dataclasses)
# ----------------------------------------------------------------------
@njit(cache=True)
def _loads_core(
    nodes,
    cols,
    level_ptr,
    live_counts,
    arcs,
    cell_ptr,
    arc_dst,
    dist_cols,
    demand_cols,
    dests,
):
    """Farthest-level-first ECMP share sweep; the vector kernels'
    ``_propagate_shares`` with every level fused into one loop nest."""
    n, d = demand_cols.shape
    flow = np.zeros((n, d))
    undelivered = np.zeros(d)
    for col in range(d):
        # Ascending-node unreachable fold, the python kernel's scan.
        for v in range(n):
            dm = demand_cols[v, col]
            if dm > 0.0:
                if np.isfinite(dist_cols[v, col]):
                    flow[v, col] = dm
                else:
                    undelivered[col] += dm
        flow[dests[col], col] = 0.0
    shares = np.zeros(arcs.shape[0])
    num_levels = level_ptr.shape[0] - 1
    for lv in range(num_levels - 1, -1, -1):
        for c in range(level_ptr[lv], level_ptr[lv + 1]):
            node = nodes[c]
            col = cols[c]
            vol = flow[node, col]
            active = vol > 0.0 and node != dests[col]
            cnt = live_counts[c]
            if active and cnt > 0.0:
                share = vol / cnt
            else:
                share = 0.0
                if active:
                    # Dead end: volume stuck at a live-arc-less cell.
                    undelivered[col] += vol
            for k in range(cell_ptr[c], cell_ptr[c + 1]):
                # Idle cells write share 0.0 and add +0.0 downstream,
                # exactly like the vector kernel's masked scatter-add.
                shares[k] = share
                flow[arc_dst[arcs[k]], col] += share
    return shares, undelivered


@njit(cache=True)
def _fold_core(arcs, shares, fold, num_arcs):
    """Sequential total-loads fold in the supplied permutation order."""
    loads = np.zeros(num_arcs)
    for i in range(fold.shape[0]):
        k = fold[i]
        loads[arcs[k]] += shares[k]
    return loads


def _delay_core_impl(
    nodes,
    cols,
    level_ptr,
    live_counts,
    arcs,
    cell_ptr,
    arc_dst,
    arc_delays,
    delay_rows,
    dests,
    n,
    mean,
):
    """Ascending-level path-delay DP (worst or flow-weighted mean).

    ``arc_delays`` is always ``(S, num_arcs)`` here; column ``col``
    reads row ``delay_rows[col]`` (the scenario-axis batching hook —
    single-scenario calls pass one row and all-zero ``delay_rows``).
    Cells of one level are independent (each writes only its own
    ``(node, col)`` output and reads strictly-lower levels), so the
    ``prange`` is safe under ``parallel=True`` with unchanged bits.
    """
    d = dests.shape[0]
    delay = np.full((n, d), np.inf)
    for col in range(d):
        delay[dests[col], col] = 0.0
    num_levels = level_ptr.shape[0] - 1
    for lv in range(num_levels):
        p0 = level_ptr[lv]
        p1 = level_ptr[lv + 1]
        for c in prange(p0, p1):
            node = nodes[c]
            col = cols[c]
            if live_counts[c] <= 0.0 or node == dests[col]:
                continue
            row = delay_rows[col]
            a0 = cell_ptr[c]
            a1 = cell_ptr[c + 1]
            if mean:
                # Sequential arc-order sum — np.bincount's flat-order
                # accumulation, i.e. the python kernel's arc order.
                total = 0.0
                for k in range(a0, a1):
                    a = arcs[k]
                    total += arc_delays[row, a] + delay[arc_dst[a], col]
                delay[node, col] = total / live_counts[c]
            else:
                a = arcs[a0]
                best = arc_delays[row, a] + delay[arc_dst[a], col]
                for k in range(a0 + 1, a1):
                    a = arcs[k]
                    cand = arc_delays[row, a] + delay[arc_dst[a], col]
                    if cand > best:
                        best = cand
                delay[node, col] = best
    return delay


_delay_core = njit(cache=True)(_delay_core_impl)
_delay_core_parallel = njit(cache=True, parallel=True)(_delay_core_impl)


def _delay_dispatch():
    return _delay_core_parallel if PARALLEL_ENABLED else _delay_core


# ----------------------------------------------------------------------
# wrappers: vectorized-compatible signatures over the compiled cores
# ----------------------------------------------------------------------
def _schedule_arrays(schedule):
    """The schedule's arrays as the int64/float64 forms the cores take.

    On 64-bit platforms ``intp`` is ``int64``, so these are views, not
    copies; the conversion exists to keep the compiled signatures
    platform-stable (one specialization, one cache entry).
    """
    return (
        np.ascontiguousarray(schedule.nodes, dtype=np.int64),
        np.ascontiguousarray(schedule.cols, dtype=np.int64),
        np.ascontiguousarray(schedule.level_ptr, dtype=np.int64),
        np.ascontiguousarray(schedule.live_counts, dtype=np.float64),
        np.ascontiguousarray(schedule.arcs, dtype=np.int64),
        np.ascontiguousarray(schedule.cell_ptr, dtype=np.int64),
    )


def _run_shares(plan, masks, dist_cols, demand_cols, dests, schedule):
    from repro.routing.vectorized import build_schedule

    dests = np.asarray(dests, dtype=np.int64)
    sched = (
        schedule
        if schedule is not None
        else build_schedule(plan, masks, dist_cols)
    )
    nodes, cols, level_ptr, live_counts, arcs, cell_ptr = _schedule_arrays(
        sched
    )
    shares, undelivered = _loads_core(
        nodes,
        cols,
        level_ptr,
        live_counts,
        arcs,
        cell_ptr,
        np.ascontiguousarray(plan.arc_dst, dtype=np.int64),
        np.ascontiguousarray(dist_cols, dtype=np.float64),
        np.ascontiguousarray(demand_cols, dtype=np.float64),
        dests,
    )
    return sched, shares, undelivered


def batch_propagate_loads(
    plan,
    masks,
    dist_cols,
    demand_cols,
    dests,
    schedule=None,
):
    """JIT counterpart of :func:`repro.routing.vectorized.
    batch_propagate_loads` — same signature, bit-identical rows."""
    sched, shares, undelivered = _run_shares(
        plan, masks, dist_cols, demand_cols, dests, schedule
    )
    contribs = np.zeros((masks.shape[0], plan.num_arcs))
    # One write per (destination, arc) pair: plain assignment, no
    # accumulation order in play (same as the vector kernel).
    contribs[sched.arc_cols, sched.arcs] = shares
    return contribs, undelivered


def batch_total_loads(
    plan,
    masks,
    dist_cols,
    demand_cols,
    dests,
    schedule=None,
):
    """JIT counterpart of :func:`repro.routing.vectorized.
    batch_total_loads` — same ascending-(column, arc) fold order."""
    sched, shares, undelivered = _run_shares(
        plan, masks, dist_cols, demand_cols, dests, schedule
    )
    # Unique composite key: any correct sort yields the one (column,
    # arc) permutation, so argsort here equals the vector kernel's.
    fold_key = sched.arc_cols * plan.num_arcs + sched.arcs
    fold = np.argsort(fold_key).astype(np.int64, copy=False)
    loads = _fold_core(
        np.ascontiguousarray(sched.arcs, dtype=np.int64),
        shares,
        fold,
        plan.num_arcs,
    )
    return loads, undelivered


def _batch_delay(
    plan,
    masks,
    dist_cols,
    arc_delays,
    dests,
    mean,
    schedule=None,
    delay_rows=None,
):
    from repro.routing.vectorized import build_schedule

    dests = np.asarray(dests, dtype=np.int64)
    if schedule is not None:
        sched = schedule
    else:
        assert masks is not None and dist_cols is not None, (
            "need masks and dist_cols without a schedule"
        )
        sched = build_schedule(plan, masks, dist_cols)
    arc_delays = np.asarray(arc_delays, dtype=np.float64)
    if delay_rows is None:
        delays_2d = np.ascontiguousarray(arc_delays.reshape(1, -1))
        rows = np.zeros(dests.shape[0], dtype=np.int64)
    else:
        delays_2d = np.ascontiguousarray(arc_delays)
        rows = np.asarray(delay_rows, dtype=np.int64)
    nodes, cols, level_ptr, live_counts, arcs, cell_ptr = _schedule_arrays(
        sched
    )
    return _delay_dispatch()(
        nodes,
        cols,
        level_ptr,
        live_counts,
        arcs,
        cell_ptr,
        np.ascontiguousarray(plan.arc_dst, dtype=np.int64),
        delays_2d,
        rows,
        dests,
        plan.num_nodes,
        mean,
    )


def batch_propagate_worst_delay(
    plan,
    masks,
    dist_cols,
    arc_delays,
    dests,
    schedule=None,
    delay_rows=None,
):
    """JIT counterpart of :func:`repro.routing.vectorized.
    batch_propagate_worst_delay` (max picks an input: no rounding)."""
    return _batch_delay(
        plan, masks, dist_cols, arc_delays, dests, mean=False,
        schedule=schedule, delay_rows=delay_rows,
    )


def batch_propagate_mean_delay(
    plan,
    masks,
    dist_cols,
    arc_delays,
    dests,
    schedule=None,
    delay_rows=None,
):
    """JIT counterpart of :func:`repro.routing.vectorized.
    batch_propagate_mean_delay` (sequential arc-order accumulation)."""
    return _batch_delay(
        plan, masks, dist_cols, arc_delays, dests, mean=True,
        schedule=schedule, delay_rows=delay_rows,
    )


# ----------------------------------------------------------------------
# warm-up
# ----------------------------------------------------------------------
_WARMED = False
_WARM_LOCK = threading.Lock()


def warmup() -> None:
    """Compile (or cache-load) every kernel on a 2-node throwaway call.

    Idempotent and cheap once warm; engines call this at construction
    (:func:`repro.routing.backend.maybe_warm_numba`) so JIT latency
    never lands inside a timed sweep.  Runs the exact array signatures
    the real call sites produce, so no specialization is left cold.
    """
    global _WARMED
    if _WARMED:
        return
    with _WARM_LOCK:
        if _WARMED:
            return
        from repro.routing.vectorized import BatchPlan

        plan = BatchPlan(
            num_nodes=2,
            num_arcs=1,
            arc_src=np.array([1], dtype=np.intp),
            arc_dst=np.array([0], dtype=np.intp),
        )
        masks = np.array([[True]])
        dist_cols = np.array([[0.0], [1.0]])
        demand_cols = np.array([[0.0], [1.0]])
        dests = np.array([0], dtype=np.intp)
        arc_delays = np.array([0.5])
        batch_propagate_loads(plan, masks, dist_cols, demand_cols, dests)
        batch_total_loads(plan, masks, dist_cols, demand_cols, dests)
        batch_propagate_worst_delay(
            plan, masks, dist_cols, arc_delays, dests
        )
        batch_propagate_mean_delay(
            plan, masks, dist_cols, arc_delays, dests
        )
        _WARMED = True
