"""Optimized propagation kernels used by the routing engine.

The reference implementations in :mod:`repro.routing.loader` operate on
numpy arrays per node; for backbone-sized graphs (tens of nodes, a few
hundred arcs) the numpy call overhead dominates, so the engine uses these
pure-Python equivalents over plain lists instead (3-6x faster at this
scale).  ``tests/routing/test_fastpath.py`` pins them to the reference
implementations property-style.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.network import Network


@dataclass(frozen=True)
class PropagationPlan:
    """Static per-network structures reused across propagations.

    Attributes:
        out_arcs: per-node outgoing arc ids as plain Python lists.
        arc_dst: per-arc destination node ids as a plain list.
    """

    out_arcs: tuple[tuple[int, ...], ...]
    arc_dst: tuple[int, ...]

    @classmethod
    def for_network(cls, network: Network) -> "PropagationPlan":
        return cls(
            out_arcs=tuple(
                tuple(int(a) for a in arcs) for arcs in network.out_arcs
            ),
            arc_dst=tuple(int(v) for v in network.arc_dst),
        )


def all_destination_masks(
    network: Network,
    weights: np.ndarray,
    dist: np.ndarray,
    disabled: np.ndarray | None,
    destinations: np.ndarray,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Shortest-DAG membership for every destination in one vectorized op.

    Args:
        network: the topology.
        weights: per-arc weights (float).
        dist: ``(N, N)`` distance matrix.
        disabled: optional per-arc dead mask.
        destinations: destination node ids (columns of ``dist`` to use).

    Returns:
        Boolean ``(len(destinations), num_arcs)`` array; row ``i`` is the
        DAG mask towards ``destinations[i]``.
    """
    cols_t = dist.T[destinations]  # (D, N) — one small row-gather copy
    du = cols_t[:, network.arc_src]  # (D, num_arcs)
    dv = cols_t[:, network.arc_dst]
    # |du - (w + dv)| <= tol, evaluated in place with the same rounding,
    # directly in row (per-destination) orientation.  Finiteness checks
    # are implied: any infinite endpoint makes the difference inf or
    # nan, and neither satisfies the comparison.
    with np.errstate(invalid="ignore"):
        dv += weights[None, :]
        du -= dv
        np.abs(du, out=du)
        mask = du <= tolerance
    if disabled is not None:
        mask &= ~disabled[None, :]
    return mask


def fast_propagate_loads(
    plan: PropagationPlan,
    mask_row: np.ndarray,
    dist_to_t: np.ndarray,
    demand_to_t: np.ndarray,
    t: int,
    loads: list[float],
) -> float:
    """Pure-Python counterpart of :func:`repro.routing.loader.propagate_loads`.

    ``loads`` is a plain list accumulated in place across destinations.
    Returns the undeliverable volume.
    """
    finite = np.isfinite(dist_to_t)
    order = np.flatnonzero(finite)[
        np.argsort(-dist_to_t[finite], kind="stable")
    ].tolist()
    mask = mask_row.tolist()
    demand = demand_to_t.tolist()
    flow = [0.0] * len(demand)
    undelivered = 0.0
    for v, d in enumerate(demand):
        if d > 0.0:
            if finite[v] and v != t:
                flow[v] = d
            elif not finite[v]:
                undelivered += d
    out_arcs = plan.out_arcs
    arc_dst = plan.arc_dst
    for u in order:
        volume = flow[u]
        if volume <= 0.0 or u == t:
            continue
        live = [a for a in out_arcs[u] if mask[a]]
        if not live:
            undelivered += volume
            continue
        share = volume / len(live)
        for a in live:
            loads[a] += share
            flow[arc_dst[a]] += share
    return undelivered


def fast_path_counts(
    plan: PropagationPlan,
    mask_row: np.ndarray,
    dist_to_t: np.ndarray,
    t: int,
) -> list[float]:
    """Pure-Python counterpart of ``loader.path_counts_reference``.

    Shortest-path counts per node towards ``t`` by DP over the DAG in
    increasing distance order.  Counts are integer-valued floats, so the
    sequential sums are exact and match the numpy reference bit for bit.
    """
    finite = np.isfinite(dist_to_t)
    order = np.flatnonzero(finite)[
        np.argsort(dist_to_t[finite], kind="stable")
    ].tolist()
    mask = mask_row.tolist()
    counts = [0.0] * len(dist_to_t)
    counts[t] = 1.0
    out_arcs = plan.out_arcs
    arc_dst = plan.arc_dst
    for u in order:
        if u == t:
            continue
        total = 0.0
        for a in out_arcs[u]:
            if mask[a]:
                total += counts[arc_dst[a]]
        counts[u] = total
    return counts


def destination_mask_rows(
    network: Network,
    weights: np.ndarray,
    dist_cols: np.ndarray,
    disabled: np.ndarray | None = None,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """DAG-membership rows from per-destination distance *columns*.

    The column-oriented twin of :func:`all_destination_masks` for callers
    (the incremental router) that hold ``(N, D)`` distance columns instead
    of a full ``(N, N)`` matrix.  Row ``i`` is the mask towards the
    destination whose distances are ``dist_cols[:, i]``; the arithmetic is
    identical, so rows are bit-identical to the all-pairs version.
    """
    cols_t = np.ascontiguousarray(dist_cols.T)  # (D, N)
    du = cols_t[:, network.arc_src]  # (D, num_arcs)
    dv = cols_t[:, network.arc_dst]
    # Same in-place evaluation (and implied finiteness) as
    # :func:`all_destination_masks`, so rows stay bit-identical to it.
    with np.errstate(invalid="ignore"):
        dv += weights[None, :]
        du -= dv
        np.abs(du, out=du)
        mask = du <= tolerance
    if disabled is not None:
        mask &= ~disabled[None, :]
    return mask


def fast_propagate_worst_delay(
    plan: PropagationPlan,
    mask_row: np.ndarray,
    dist_to_t: np.ndarray,
    arc_delays: list[float],
    t: int,
) -> list[float]:
    """Pure-Python counterpart of ``propagate_worst_delay``.

    Returns the per-node worst used-path delay to ``t`` (``inf`` when
    disconnected) as a list.
    """
    finite = np.isfinite(dist_to_t)
    order = np.flatnonzero(finite)[
        np.argsort(dist_to_t[finite], kind="stable")
    ].tolist()
    mask = mask_row.tolist()
    n = len(dist_to_t)
    delay = [float("inf")] * n
    delay[t] = 0.0
    out_arcs = plan.out_arcs
    arc_dst = plan.arc_dst
    for u in order:
        if u == t:
            continue
        best = None
        for a in out_arcs[u]:
            if mask[a]:
                candidate = arc_delays[a] + delay[arc_dst[a]]
                if best is None or candidate > best:
                    best = candidate
        if best is not None:
            delay[u] = best
    return delay


def fast_propagate_mean_delay(
    plan: PropagationPlan,
    mask_row: np.ndarray,
    dist_to_t: np.ndarray,
    arc_delays: list[float],
    t: int,
) -> list[float]:
    """Pure-Python counterpart of ``propagate_mean_delay``."""
    finite = np.isfinite(dist_to_t)
    order = np.flatnonzero(finite)[
        np.argsort(dist_to_t[finite], kind="stable")
    ].tolist()
    mask = mask_row.tolist()
    n = len(dist_to_t)
    delay = [float("inf")] * n
    delay[t] = 0.0
    out_arcs = plan.out_arcs
    arc_dst = plan.arc_dst
    for u in order:
        if u == t:
            continue
        total = 0.0
        count = 0
        for a in out_arcs[u]:
            if mask[a]:
                total += arc_delays[a] + delay[arc_dst[a]]
                count += 1
        if count:
            delay[u] = total / count
    return delay
