"""The directed network model used by every subsystem.

A :class:`Network` is an immutable directed graph with per-arc capacity and
propagation delay, stored both as :class:`~repro.routing.arcs.Arc` records
(for readability) and as numpy arrays (for the routing hot path).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.routing.arcs import (
    Arc,
    arcs_to_arrays,
    build_adjacency,
    pair_arcs,
    undirected_pairs,
    validate_arcs,
)


class Network:
    """Immutable directed network with capacities and propagation delays.

    Args:
        num_nodes: number of nodes; node ids are ``0 .. num_nodes - 1``.
        arcs: directed arcs; at most one per ordered node pair.
        positions: optional ``(num_nodes, 2)`` coordinates (used by the
            synthetic topology generators and for geographic delays).
        name: human-readable topology label for reports.

    The class is deliberately free of routing logic; it only answers
    structural questions.  Routing lives in
    :class:`repro.routing.engine.RoutingEngine`.
    """

    def __init__(
        self,
        num_nodes: int,
        arcs: Sequence[Arc],
        positions: np.ndarray | None = None,
        name: str = "network",
    ) -> None:
        if num_nodes < 2:
            raise ValueError("a network needs at least two nodes")
        validate_arcs(num_nodes, arcs)
        self._num_nodes = num_nodes
        self._arcs = tuple(arcs)
        self._name = name
        (
            self.arc_src,
            self.arc_dst,
            self.capacity,
            self.prop_delay,
        ) = arcs_to_arrays(self._arcs)
        self.reverse_arc = pair_arcs(self._arcs)
        self.out_arcs, self.in_arcs = build_adjacency(
            num_nodes, self.arc_src, self.arc_dst
        )
        self._link_groups = undirected_pairs(self._arcs)
        self._arc_index: dict[tuple[int, int], int] = {
            arc.endpoints: i for i, arc in enumerate(self._arcs)
        }
        if positions is not None:
            positions = np.asarray(positions, dtype=np.float64)
            if positions.shape != (num_nodes, 2):
                raise ValueError("positions must have shape (num_nodes, 2)")
        self.positions = positions

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Topology label used in experiment reports."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs ``|E|`` (the paper's link count)."""
        return len(self._arcs)

    @property
    def arcs(self) -> tuple[Arc, ...]:
        """The arc records, indexed by arc id."""
        return self._arcs

    @property
    def link_groups(self) -> list[tuple[int, ...]]:
        """Physical links as groups of mutually-reverse arc ids."""
        return list(self._link_groups)

    @property
    def num_links(self) -> int:
        """Number of physical (bidirectional) links."""
        return len(self._link_groups)

    @property
    def mean_degree(self) -> float:
        """Mean *out*-degree, the paper's "average node degree"."""
        return self.num_arcs / self.num_nodes

    def arc_id(self, src: int, dst: int) -> int:
        """Arc index of the ``(src, dst)`` arc; ``KeyError`` if absent."""
        return self._arc_index[(src, dst)]

    def has_arc(self, src: int, dst: int) -> bool:
        """Whether the ordered pair ``(src, dst)`` is an arc."""
        return (src, dst) in self._arc_index

    def arcs_of_node(self, node: int) -> np.ndarray:
        """All arc ids incident to ``node`` (both directions)."""
        return np.concatenate((self.out_arcs[node], self.in_arcs[node]))

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return len(self.out_arcs[node])

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph | nx.DiGraph,
        capacity: float | Mapping[tuple[int, int], float] = 500e6,
        prop_delay: float | Mapping[tuple[int, int], float] = 0.005,
        name: str | None = None,
    ) -> "Network":
        """Build a :class:`Network` from a NetworkX graph.

        Undirected graphs become two opposite arcs per edge.  ``capacity``
        and ``prop_delay`` may be scalars or per-edge mappings keyed by
        ``(u, v)``; edge attributes named ``"capacity"`` / ``"prop_delay"``
        take precedence over both.

        Nodes are relabeled to ``0..n-1`` in sorted order.
        """
        nodes = sorted(graph.nodes)
        relabel = {node: i for i, node in enumerate(nodes)}

        def _value(
            spec: float | Mapping[tuple[int, int], float],
            u: object,
            v: object,
            attrs: Mapping[str, object],
            attr_name: str,
        ) -> float:
            if attr_name in attrs:
                return float(attrs[attr_name])  # type: ignore[arg-type]
            if isinstance(spec, Mapping):
                if (u, v) in spec:
                    return float(spec[(u, v)])  # type: ignore[index]
                return float(spec[(v, u)])  # type: ignore[index]
            return float(spec)

        arcs: list[Arc] = []
        if graph.is_directed():
            edge_iter: Iterable[tuple[object, object, dict]] = graph.edges(
                data=True
            )
            for u, v, attrs in edge_iter:
                arcs.append(
                    Arc(
                        relabel[u],
                        relabel[v],
                        _value(capacity, u, v, attrs, "capacity"),
                        _value(prop_delay, u, v, attrs, "prop_delay"),
                    )
                )
        else:
            for u, v, attrs in graph.edges(data=True):
                cap = _value(capacity, u, v, attrs, "capacity")
                delay = _value(prop_delay, u, v, attrs, "prop_delay")
                arcs.append(Arc(relabel[u], relabel[v], cap, delay))
                arcs.append(Arc(relabel[v], relabel[u], cap, delay))

        positions = None
        if all("pos" in graph.nodes[node] for node in nodes):
            positions = np.asarray(
                [graph.nodes[node]["pos"] for node in nodes], dtype=np.float64
            )
        return cls(
            len(nodes),
            arcs,
            positions=positions,
            name=name or getattr(graph, "name", "") or "network",
        )

    def to_networkx(self) -> nx.DiGraph:
        """Export as a NetworkX ``DiGraph`` with capacity/delay attributes."""
        graph = nx.DiGraph(name=self._name)
        graph.add_nodes_from(range(self._num_nodes))
        if self.positions is not None:
            for node in range(self._num_nodes):
                graph.nodes[node]["pos"] = tuple(self.positions[node])
        for arc in self._arcs:
            graph.add_edge(
                arc.src,
                arc.dst,
                capacity=arc.capacity,
                prop_delay=arc.prop_delay,
            )
        return graph

    # ------------------------------------------------------------------
    # structural checks
    # ------------------------------------------------------------------
    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node."""
        return nx.is_strongly_connected(self.to_networkx())

    def survives_arc_failures(self, arc_ids: Sequence[int]) -> bool:
        """Whether the network stays strongly connected without ``arc_ids``."""
        graph = self.to_networkx()
        graph.remove_edges_from(
            self._arcs[a].endpoints for a in arc_ids
        )
        return nx.is_strongly_connected(graph)

    def with_prop_delays(self, prop_delay: np.ndarray) -> "Network":
        """Copy of this network with per-arc propagation delays replaced."""
        prop_delay = np.asarray(prop_delay, dtype=np.float64)
        if prop_delay.shape != (self.num_arcs,):
            raise ValueError("prop_delay must have one entry per arc")
        arcs = [
            Arc(a.src, a.dst, a.capacity, float(d))
            for a, d in zip(self._arcs, prop_delay)
        ]
        return Network(
            self._num_nodes, arcs, positions=self.positions, name=self._name
        )

    def with_capacities(self, capacity: np.ndarray) -> "Network":
        """Copy of this network with per-arc capacities replaced."""
        capacity = np.asarray(capacity, dtype=np.float64)
        if capacity.shape != (self.num_arcs,):
            raise ValueError("capacity must have one entry per arc")
        arcs = [
            Arc(a.src, a.dst, float(c), a.prop_delay)
            for a, c in zip(self._arcs, capacity)
        ]
        return Network(
            self._num_nodes, arcs, positions=self.positions, name=self._name
        )

    def __repr__(self) -> str:
        return (
            f"Network(name={self._name!r}, nodes={self._num_nodes}, "
            f"arcs={self.num_arcs})"
        )
