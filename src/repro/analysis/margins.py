"""Failure-tolerance margin analysis (Section V-E's mechanism).

The paper explains Table V through the *failure-tolerance margin* of
delay-sensitive flows: the additional delay a pair can absorb after a
failure before violating the SLA, ``theta - xi(s, t)``.  Regular
optimization leaves many flows with near-zero margin no matter how loose
the bound; robust optimization banks margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import ScenarioEvaluation


@dataclass(frozen=True)
class MarginStats:
    """Distribution summary of per-pair failure-tolerance margins.

    Attributes:
        mean_ms: mean margin in milliseconds.
        p10_ms: 10th-percentile margin (the at-risk flows).
        at_risk_fraction: share of pairs with margin below the threshold.
        threshold_ms: the at-risk threshold used.
    """

    mean_ms: float
    p10_ms: float
    at_risk_fraction: float
    threshold_ms: float


def pair_margins_s(
    evaluation: ScenarioEvaluation, theta: float
) -> np.ndarray:
    """Per-pair margins ``theta - delay`` in seconds (flattened).

    Disconnected pairs contribute ``-inf``; non-routed entries are
    dropped.
    """
    delays = evaluation.pair_delays
    values = delays[~np.isnan(delays)]
    return theta - values


def margin_stats(
    evaluation: ScenarioEvaluation,
    theta: float,
    at_risk_threshold_s: float = 0.002,
) -> MarginStats:
    """Summarize the margin distribution of one evaluation.

    Args:
        evaluation: a (typically failure-free) scenario evaluation.
        theta: the SLA bound in seconds.
        at_risk_threshold_s: pairs with less margin than this are "at
            risk" of violating after a failure (default 2 ms, roughly one
            extra hop).
    """
    margins = pair_margins_s(evaluation, theta)
    if margins.size == 0:
        return MarginStats(0.0, 0.0, 0.0, at_risk_threshold_s * 1e3)
    finite = margins[np.isfinite(margins)]
    at_risk = float((margins < at_risk_threshold_s).mean())
    return MarginStats(
        mean_ms=float(finite.mean() * 1e3) if finite.size else 0.0,
        p10_ms=(
            float(np.percentile(finite, 10) * 1e3) if finite.size else 0.0
        ),
        at_risk_fraction=at_risk,
        threshold_ms=at_risk_threshold_s * 1e3,
    )


def margin_histogram_ms(
    evaluation: ScenarioEvaluation,
    theta: float,
    bin_edges_ms: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of margins in milliseconds.

    Returns:
        ``(counts, edges_ms)`` as from :func:`numpy.histogram`;
        disconnected pairs are clamped into the lowest bin.
    """
    margins = pair_margins_s(evaluation, theta) * 1e3
    if bin_edges_ms is None:
        bin_edges_ms = np.linspace(-25.0, float(theta * 1e3), 11)
    clamped = np.clip(margins, bin_edges_ms[0], bin_edges_ms[-1])
    counts, edges = np.histogram(clamped, bins=bin_edges_ms)
    return counts, edges
