"""Path-diversity metrics.

The paper's explanation for *when* robust optimization helps is path
diversity: "the benefits that robust optimization can offer are
typically in proportion to the number of paths it can explore"
(Section V).  These metrics quantify that for a topology:

* ECMP shortest-path counts per SD pair (under given weights);
* arc-disjoint path counts per SD pair (weight-independent upper bound
  on re-routing options);
* near-shortest path counts within a delay stretch factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.routing.fastpath import PropagationPlan
from repro.routing.network import Network
from repro.routing.spf import (
    distance_matrix,
    path_counts,
    shortest_arc_mask,
)


@dataclass(frozen=True)
class DiversitySummary:
    """Per-topology path-diversity statistics.

    Attributes:
        mean_ecmp_paths: mean shortest-path count over SD pairs.
        mean_disjoint_paths: mean arc-disjoint path count over SD pairs.
        min_disjoint_paths: the worst-connected pair's disjoint count.
        mean_stretch_paths: mean count of paths within the stretch bound.
    """

    mean_ecmp_paths: float
    mean_disjoint_paths: float
    min_disjoint_paths: int
    mean_stretch_paths: float


def ecmp_path_counts(
    network: Network, weights: np.ndarray
) -> np.ndarray:
    """``(N, N)`` matrix of shortest-path counts under the weights."""
    weights = np.asarray(weights, dtype=np.float64)
    dist = distance_matrix(network, weights)
    n = network.num_nodes
    counts = np.zeros((n, n))
    plan = PropagationPlan.for_network(network)
    for t in range(n):
        mask = shortest_arc_mask(network, weights, dist[:, t])
        counts[:, t] = path_counts(network, mask, dist[:, t], t, plan=plan)
    np.fill_diagonal(counts, 0.0)
    return counts


def disjoint_path_counts(network: Network) -> np.ndarray:
    """``(N, N)`` matrix of arc-disjoint path counts (max-flow)."""
    graph = network.to_networkx()
    for u, v in graph.edges:
        graph[u][v]["capacity"] = 1.0
    n = network.num_nodes
    counts = np.zeros((n, n))
    for s in range(n):
        for t in range(n):
            if s == t:
                continue
            counts[s, t] = nx.maximum_flow_value(graph, s, t)
    return counts


def stretch_path_counts(
    network: Network, stretch: float = 1.5
) -> np.ndarray:
    """Paths whose propagation delay is within ``stretch`` of the best.

    Counts, for every SD pair, the loop-free next-hop choices at the
    source that still admit a path within the stretch bound — a cheap
    proxy for "alternate paths robust optimization could use" that does
    not require full path enumeration.
    """
    if stretch < 1.0:
        raise ValueError("stretch must be >= 1")
    # distance on propagation delay (scaled to integer-safe weights)
    scale = 1e6  # microseconds, keeps weights >= 1 for realistic delays
    weights = np.maximum(network.prop_delay * scale, 1.0)
    dist = distance_matrix(network, weights)
    n = network.num_nodes
    counts = np.zeros((n, n))
    arc_dst = network.arc_dst
    for s in range(n):
        out = network.out_arcs[s]
        for t in range(n):
            if s == t or not np.isfinite(dist[s, t]):
                continue
            bound = stretch * dist[s, t]
            via = weights[out] + dist[arc_dst[out], t]
            counts[s, t] = int(np.sum(via <= bound + 1e-9))
    return counts


def diversity_summary(
    network: Network,
    weights: np.ndarray | None = None,
    stretch: float = 1.5,
) -> DiversitySummary:
    """Aggregate diversity statistics for one topology."""
    if weights is None:
        weights = np.ones(network.num_arcs)
    n = network.num_nodes
    off_diag = ~np.eye(n, dtype=bool)

    ecmp = ecmp_path_counts(network, weights)[off_diag]
    disjoint = disjoint_path_counts(network)[off_diag]
    stretched = stretch_path_counts(network, stretch)[off_diag]
    return DiversitySummary(
        mean_ecmp_paths=float(ecmp.mean()),
        mean_disjoint_paths=float(disjoint.mean()),
        min_disjoint_paths=int(disjoint.min()),
        mean_stretch_paths=float(stretched.mean()),
    )
