"""Utilization statistics (Table V, Fig. 4, Fig. 5d ingredients)."""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import DtrEvaluator, ScenarioEvaluation
from repro.core.weights import WeightSetting
from repro.routing.failures import NORMAL, FailureScenario


def average_link_utilization(evaluation: ScenarioEvaluation) -> float:
    """Mean total utilization over all arcs."""
    return float(evaluation.utilization.mean())


def max_link_utilization(evaluation: ScenarioEvaluation) -> float:
    """Maximum total utilization over all arcs."""
    return float(evaluation.utilization.max())


def average_pair_max_utilization(
    evaluator: DtrEvaluator,
    setting: WeightSetting,
    scenario: FailureScenario = NORMAL,
) -> float:
    """Table V's "average max utilization" column.

    For each delay-class SD pair, find the most-utilized arc on its used
    paths; average over pairs.
    """
    routing = evaluator.engine.route_class(
        setting.delay, evaluator.traffic.delay.values, scenario
    )
    tput = evaluator.engine.route_class(
        setting.tput, evaluator.traffic.throughput.values, scenario
    )
    utilization = (routing.loads + tput.loads) / evaluator.network.capacity
    per_pair = evaluator.engine.path_max_utilization(routing, utilization)
    mask = ~np.isnan(per_pair)
    values = per_pair[mask]
    values = values[np.isfinite(values)]
    return float(values.mean()) if values.size else 0.0


def max_delay_carrying_utilization(
    evaluator: DtrEvaluator,
    setting: WeightSetting,
    scenario: FailureScenario = NORMAL,
) -> float:
    """Fig. 5d's metric: max utilization among arcs carrying delay traffic."""
    routing = evaluator.engine.route_class(
        setting.delay, evaluator.traffic.delay.values, scenario
    )
    tput = evaluator.engine.route_class(
        setting.tput, evaluator.traffic.throughput.values, scenario
    )
    total = routing.loads + tput.loads
    utilization = total / evaluator.network.capacity
    carrying = routing.loads > 0.0
    if not carrying.any():
        return 0.0
    return float(utilization[carrying].max())
