"""Numeric series handling for the paper's figures.

A figure reproduction here is a named collection of numeric series (the
exact data the paper plots); :func:`render_series` prints them as compact
ASCII sparklines plus summary statistics, and :func:`series_to_rows`
exports them as table rows for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_SPARK_CHARS = " .:-=+*#%@"


@dataclass(frozen=True)
class Series:
    """One plotted curve.

    Attributes:
        name: legend label (e.g. ``"Robust"``).
        values: y-values in x order.
    """

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=np.float64)
        )

    @property
    def mean(self) -> float:
        """Mean of the series (NaNs ignored)."""
        return float(np.nanmean(self.values)) if self.values.size else 0.0

    @property
    def peak(self) -> float:
        """Maximum of the series (NaNs ignored)."""
        return float(np.nanmax(self.values)) if self.values.size else 0.0


@dataclass(frozen=True)
class FigureData:
    """All series of one reproduced figure panel.

    Attributes:
        figure_id: e.g. ``"fig3a"``.
        xlabel: x-axis meaning (e.g. ``"sorted failure link id"``).
        ylabel: y-axis meaning.
        series: the curves.
    """

    figure_id: str
    xlabel: str
    ylabel: str
    series: tuple[Series, ...] = field(default_factory=tuple)

    def get(self, name: str) -> Series:
        """Look up a series by name."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.figure_id}")


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Downsample a series to a fixed-width ASCII sparkline."""
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        return ""
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.asarray(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    peak = values.max()
    if peak <= 0:
        return _SPARK_CHARS[0] * values.size
    idx = np.clip(
        (values / peak * (len(_SPARK_CHARS) - 1)).round().astype(int),
        0,
        len(_SPARK_CHARS) - 1,
    )
    return "".join(_SPARK_CHARS[i] for i in idx)


def render_series(figure: FigureData, width: int = 60) -> str:
    """Render a figure panel as labelled sparklines with statistics."""
    lines = [
        f"[{figure.figure_id}] y={figure.ylabel} vs x={figure.xlabel}"
    ]
    name_width = max((len(s.name) for s in figure.series), default=0)
    for s in figure.series:
        lines.append(
            f"  {s.name.ljust(name_width)} |{sparkline(s.values, width)}| "
            f"mean={s.mean:.3g} peak={s.peak:.3g} n={s.values.size}"
        )
    return "\n".join(lines)


def series_to_rows(figure: FigureData) -> list[dict[str, object]]:
    """Summarize each series as one table row (for EXPERIMENTS.md)."""
    return [
        {
            "figure": figure.figure_id,
            "series": s.name,
            "n": s.values.size,
            "mean": s.mean,
            "peak": s.peak,
        }
        for s in figure.series
    ]
