"""Analysis layer: metrics, diversity, margins, table/series output."""

from repro.analysis.diversity import (
    DiversitySummary,
    disjoint_path_counts,
    diversity_summary,
    ecmp_path_counts,
    stretch_path_counts,
)
from repro.analysis.margins import (
    MarginStats,
    margin_histogram_ms,
    margin_stats,
    pair_margins_s,
)
from repro.analysis.metrics import (
    SlaViolationStats,
    beta_metric,
    max_utilization_per_pair,
    normalized_series,
    phi_degradation_percent,
    phi_gap_percent,
    sorted_pair_delays_ms,
    utilization_increase_after_failure,
)
from repro.analysis.series import (
    FigureData,
    Series,
    render_series,
    series_to_rows,
    sparkline,
)
from repro.analysis.tables import (
    format_value,
    mean_std_cell,
    render_kv,
    render_table,
)
from repro.analysis.utilization import (
    average_link_utilization,
    average_pair_max_utilization,
    max_delay_carrying_utilization,
    max_link_utilization,
)

__all__ = [
    "DiversitySummary",
    "FigureData",
    "MarginStats",
    "Series",
    "SlaViolationStats",
    "average_link_utilization",
    "average_pair_max_utilization",
    "beta_metric",
    "disjoint_path_counts",
    "diversity_summary",
    "ecmp_path_counts",
    "format_value",
    "margin_histogram_ms",
    "margin_stats",
    "pair_margins_s",
    "stretch_path_counts",
    "max_delay_carrying_utilization",
    "max_link_utilization",
    "max_utilization_per_pair",
    "mean_std_cell",
    "normalized_series",
    "phi_degradation_percent",
    "phi_gap_percent",
    "render_kv",
    "render_series",
    "render_table",
    "series_to_rows",
    "sorted_pair_delays_ms",
    "sparkline",
    "utilization_increase_after_failure",
]
