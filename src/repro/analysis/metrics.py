"""Evaluation metrics used across the paper's tables and figures.

These helpers turn raw :class:`~repro.core.evaluation.ScenarioCosts`
objects (scenario-sweep results — single-link failure sets and composed
scenario families alike) into the numbers the paper reports:
SLA-violation statistics, throughput-cost degradations, and the accuracy
metrics of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import ScenarioCosts, ScenarioEvaluation


@dataclass(frozen=True)
class SlaViolationStats:
    """SLA-violation summary over a scenario set.

    Attributes:
        mean: average violations per failure scenario.
        top10_mean: average over the worst 10 % of scenarios.
        worst: maximum violations in any scenario.
        total: violations summed across scenarios.
        per_scenario: the per-scenario counts in enumeration order.
    """

    mean: float
    top10_mean: float
    worst: int
    total: int
    per_scenario: tuple[int, ...]

    @classmethod
    def from_failures(
        cls, evaluation: ScenarioCosts
    ) -> "SlaViolationStats":
        counts = evaluation.violations
        return cls(
            mean=evaluation.mean_violations(),
            top10_mean=evaluation.top_fraction_mean_violations(0.1),
            worst=int(counts.max()) if counts.size else 0,
            total=int(counts.sum()),
            per_scenario=tuple(int(c) for c in counts),
        )


def beta_metric(evaluation: ScenarioCosts) -> float:
    """Table I's ``beta``: mean SLA violations across single failures."""
    return evaluation.mean_violations()


def phi_gap_percent(
    candidate: ScenarioCosts, reference: ScenarioCosts
) -> float:
    """Table I's ``beta_Phi``: relative throughput-cost gap, in percent.

    Positive means the candidate's compounded ``Phi_fail`` is higher than
    the reference's (full search); negative is possible because of the
    lexicographic objective (paper footnote 11).
    """
    ref = reference.total_cost.phi
    if ref <= 0:
        return 0.0
    return 100.0 * (candidate.total_cost.phi - ref) / ref


def phi_degradation_percent(
    robust_normal: ScenarioEvaluation, regular_normal: ScenarioEvaluation
) -> float:
    """Table II's last row: normal-condition throughput-cost increase.

    How much robustness actually cost the throughput class, relative to
    the regular optimum (bounded above by ``100 * chi``).
    """
    ref = regular_normal.cost.phi
    if ref <= 0:
        return 0.0
    return 100.0 * (robust_normal.cost.phi - ref) / ref


def utilization_increase_after_failure(
    normal: ScenarioEvaluation, failed: ScenarioEvaluation
) -> tuple[int, float]:
    """Fig. 4 ingredients for one failure scenario.

    Returns:
        ``(count, mean_increase)``: how many surviving arcs carry strictly
        more utilization than under normal conditions, and the average
        increase over those arcs (0 when none increased).
    """
    alive = np.ones(normal.utilization.shape[0], dtype=bool)
    if failed.scenario.failed_arcs:
        alive[list(failed.scenario.failed_arcs)] = False
    delta = failed.utilization[alive] - normal.utilization[alive]
    increased = delta > 1e-12
    count = int(increased.sum())
    mean_increase = float(delta[increased].mean()) if count else 0.0
    return count, mean_increase


def sorted_pair_delays_ms(evaluation: ScenarioEvaluation) -> np.ndarray:
    """Fig. 5b/5c series: end-to-end delays (ms) sorted ascending.

    Only pairs carrying delay demand appear (non-routed entries are NaN).
    """
    delays = evaluation.pair_delays
    finite_mask = ~np.isnan(delays)
    values = delays[finite_mask]
    return np.sort(values) * 1e3


def max_utilization_per_pair(
    evaluation: ScenarioEvaluation, path_max_util: np.ndarray
) -> float:
    """Table V's "average max utilization": mean over SD pairs of the
    highest arc utilization on their used paths.

    Args:
        evaluation: the scenario evaluation (for the demand mask).
        path_max_util: output of ``RoutingEngine.path_max_utilization``.
    """
    mask = ~np.isnan(path_max_util)
    np.fill_diagonal(mask, False)
    if not mask.any():
        return 0.0
    values = path_max_util[mask]
    values = values[np.isfinite(values)]
    return float(values.mean()) if values.size else 0.0


def normalized_series(values: np.ndarray) -> np.ndarray:
    """Scale a non-negative series by its maximum (for figure plotting).

    Zero-max series are returned unchanged.
    """
    values = np.asarray(values, dtype=np.float64)
    peak = values.max() if values.size else 0.0
    if peak <= 0:
        return values.copy()
    return values / peak
