"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables report;
this module turns lists of row dicts into aligned monospace tables with
``mean (std)`` cells, matching the paper's presentation convention.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def mean_std_cell(values: Sequence[float], digits: int = 2) -> str:
    """Format repeated-run values as ``mean (std)`` like the paper."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "-"
    if arr.size == 1:
        return f"{arr[0]:.{digits}f}"
    return f"{arr.mean():.{digits}f} ({arr.std(ddof=1):.{digits}f})"


def format_value(value: object, digits: int = 2) -> str:
    """Human formatting for one table cell."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{digits}f}"
    if isinstance(value, (list, tuple, np.ndarray)):
        return mean_std_cell(list(value), digits)
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    digits: int = 2,
) -> str:
    """Render rows of dicts as an aligned monospace table.

    Args:
        rows: each mapping is one row; missing keys render as ``-``.
        columns: column order (default: keys of the first row).
        title: optional heading line.
        digits: float precision.

    Returns:
        The rendered table as a string (no trailing newline).
    """
    if not rows:
        return title or "(empty table)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [format_value(row.get(col, "-"), digits) for col in cols]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def scenario_kind_columns(
    costs, top_fraction: float = 0.1
) -> dict[str, object]:
    """Per-scenario-kind breakdown columns for one table row.

    Splits a :class:`~repro.core.evaluation.ScenarioCosts` (anything with
    ``by_kind()`` whose sub-results answer ``mean_violations()`` /
    ``top_fraction_mean_violations``) into one violations column and one
    worst-``top_fraction`` column per scenario kind, e.g.
    ``viol[srlg]`` / ``top10%[srlg]``.  Single-kind sweeps produce no
    extra columns — the aggregate columns already tell the story.
    """
    kinds = costs.kinds()
    if len(kinds) < 2:
        return {}
    columns: dict[str, object] = {}
    percent = f"{top_fraction:.0%}"
    for kind, sub in costs.by_kind().items():
        columns[f"viol[{kind}]"] = sub.mean_violations()
        columns[f"top{percent}[{kind}]"] = (
            sub.top_fraction_mean_violations(top_fraction)
        )
    return columns


def render_kv(
    pairs: Mapping[str, object], title: str | None = None, digits: int = 3
) -> str:
    """Render a key/value block (for experiment headers)."""
    lines = [title] if title else []
    width = max(len(k) for k in pairs) if pairs else 0
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {format_value(value, digits)}")
    return "\n".join(lines)
