"""Traffic-matrix value object.

A :class:`TrafficMatrix` wraps an ``(N, N)`` non-negative demand array
(bits/s) with a zero diagonal.  The routing engine consumes the raw array
via :attr:`values`; the wrapper adds invariants, scaling, and bookkeeping.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class TrafficMatrix:
    """Per-SD-pair demand volumes for one traffic class.

    Args:
        values: ``(N, N)`` non-negative array; the diagonal is forced to 0.
        name: label for reports (e.g. ``"delay"`` or ``"throughput"``).
    """

    def __init__(self, values: np.ndarray, name: str = "traffic") -> None:
        values = np.array(values, dtype=np.float64, copy=True)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise ValueError("traffic matrix must be square")
        if values.shape[0] < 2:
            raise ValueError("traffic matrix needs at least two nodes")
        if np.any(values < 0) or not np.all(np.isfinite(values)):
            raise ValueError("demands must be finite and non-negative")
        np.fill_diagonal(values, 0.0)
        values.setflags(write=False)
        self._values = values
        self._name = name

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The read-only ``(N, N)`` demand array."""
        return self._values

    @property
    def name(self) -> str:
        """Class label."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Matrix dimension ``N``."""
        return self._values.shape[0]

    @property
    def total(self) -> float:
        """Total demand volume across all SD pairs."""
        return float(self._values.sum())

    @property
    def num_positive_pairs(self) -> int:
        """Number of SD pairs with strictly positive demand."""
        return int(np.count_nonzero(self._values))

    def pairs(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(s, t, volume)`` for every positive-demand pair."""
        rows, cols = np.nonzero(self._values)
        for s, t in zip(rows.tolist(), cols.tolist()):
            yield s, t, float(self._values[s, t])

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficMatrix(self._values * factor, name=self._name)

    def with_values(self, values: np.ndarray) -> "TrafficMatrix":
        """A copy carrying new demand values but the same name."""
        return TrafficMatrix(values, name=self._name)

    def __add__(self, other: "TrafficMatrix") -> "TrafficMatrix":
        if self.num_nodes != other.num_nodes:
            raise ValueError("matrix dimensions differ")
        return TrafficMatrix(
            self._values + other._values,
            name=f"{self._name}+{other._name}",
        )

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(name={self._name!r}, nodes={self.num_nodes}, "
            f"total={self.total:.3g})"
        )
