"""Scale traffic matrices to hit a target network utilization.

The paper specifies workloads by their resulting link utilization ("all
topologies had an average link load around 0.43", "maximum link
utilization of 0.74 and 0.9", ...).  Utilization is linear in traffic
volume for a fixed routing, so one reference routing computation gives the
exact scale factor.
"""

from __future__ import annotations

import numpy as np

from repro.routing.engine import RoutingEngine
from repro.routing.network import Network
from repro.traffic.gravity import DtrTraffic


def reference_weights(network: Network) -> np.ndarray:
    """Hop-count reference weights (all ones) used for scaling."""
    return np.ones(network.num_arcs, dtype=np.float64)


def utilization_under_weights(
    network: Network,
    traffic: DtrTraffic,
    weights_delay: np.ndarray,
    weights_tput: np.ndarray,
) -> np.ndarray:
    """Per-arc utilization with each class routed on its own weights."""
    engine = RoutingEngine(network)
    loads = engine.route_class(weights_delay, traffic.delay.values).loads
    loads = loads + engine.route_class(
        weights_tput, traffic.throughput.values
    ).loads
    return loads / network.capacity


def scale_to_utilization(
    network: Network,
    traffic: DtrTraffic,
    target: float,
    statistic: str = "mean",
    weights_delay: np.ndarray | None = None,
    weights_tput: np.ndarray | None = None,
) -> DtrTraffic:
    """Scale both class matrices so a utilization statistic hits ``target``.

    Args:
        network: the topology.
        traffic: the unscaled matrix pair.
        target: desired utilization value in (0, inf); the paper uses
            mean ≈ 0.43 and max ∈ {0.74, 0.8, 0.9}.
        statistic: ``"mean"`` or ``"max"`` arc utilization.
        weights_delay: reference weights for the delay class (default:
            hop count).
        weights_tput: reference weights for the throughput class (default:
            hop count).

    Returns:
        The scaled :class:`DtrTraffic`.

    Raises:
        ValueError: if the traffic is identically zero or target invalid.
    """
    if target <= 0:
        raise ValueError("target utilization must be positive")
    if statistic not in ("mean", "max"):
        raise ValueError("statistic must be 'mean' or 'max'")
    if weights_delay is None:
        weights_delay = reference_weights(network)
    if weights_tput is None:
        weights_tput = reference_weights(network)
    utilization = utilization_under_weights(
        network, traffic, weights_delay, weights_tput
    )
    current = float(
        utilization.mean() if statistic == "mean" else utilization.max()
    )
    if current <= 0:
        raise ValueError("traffic produces zero load; cannot scale")
    return traffic.scaled(target / current)
