"""Traffic substrate: matrices, gravity generation, scaling, uncertainty."""

from repro.traffic.gravity import (
    DEFAULT_DELAY_FRACTION,
    DtrTraffic,
    dtr_traffic,
    gravity_matrix,
)
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.scaling import (
    reference_weights,
    scale_to_utilization,
    utilization_under_weights,
)
from repro.traffic.uncertainty import (
    HotspotMode,
    HotspotSpec,
    fluctuate_traffic,
    gaussian_fluctuation,
    hotspot,
)

__all__ = [
    "DEFAULT_DELAY_FRACTION",
    "DtrTraffic",
    "HotspotMode",
    "HotspotSpec",
    "TrafficMatrix",
    "dtr_traffic",
    "fluctuate_traffic",
    "gaussian_fluctuation",
    "gravity_matrix",
    "hotspot",
    "reference_weights",
    "scale_to_utilization",
    "utilization_under_weights",
]
