"""Gravity-model traffic generation (Section V-A2, following [13]).

Each node gets a random "mass" for origination and attraction; demand
between a pair is proportional to the product of the source's origination
mass and the destination's attraction mass — the standard synthetic model
for backbone traffic matrices [18].  Every SD pair generates
delay-sensitive traffic (as the paper assumes), and the delay class
carries 30 % of total volume by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.matrix import TrafficMatrix

#: The paper's delay-sensitive share of total traffic volume.
DEFAULT_DELAY_FRACTION = 0.3


def gravity_matrix(
    num_nodes: int,
    rng: np.random.Generator,
    total_volume: float,
    name: str = "traffic",
    mass_low: float = 0.1,
    mass_high: float = 1.0,
) -> TrafficMatrix:
    """One gravity-model traffic matrix.

    Args:
        num_nodes: matrix dimension.
        rng: random generator for node masses.
        total_volume: demand sum over all SD pairs (bits/s).
        name: matrix label.
        mass_low: lower bound of the uniform mass distribution; strictly
            positive so *every* SD pair gets positive demand.
        mass_high: upper bound of the uniform mass distribution.

    Returns:
        A :class:`TrafficMatrix` with the requested total volume.
    """
    if total_volume < 0:
        raise ValueError("total_volume must be non-negative")
    if not 0 < mass_low <= mass_high:
        raise ValueError("need 0 < mass_low <= mass_high")
    origination = rng.uniform(mass_low, mass_high, size=num_nodes)
    attraction = rng.uniform(mass_low, mass_high, size=num_nodes)
    raw = np.outer(origination, attraction)
    np.fill_diagonal(raw, 0.0)
    weight_sum = raw.sum()
    if weight_sum <= 0:
        raise ValueError("degenerate gravity masses")
    return TrafficMatrix(raw * (total_volume / weight_sum), name=name)


@dataclass(frozen=True)
class DtrTraffic:
    """The two class matrices of one DTR instance.

    Attributes:
        delay: delay-sensitive demand ``R_D``.
        throughput: throughput-sensitive demand ``R_T``.
    """

    delay: TrafficMatrix
    throughput: TrafficMatrix

    def __post_init__(self) -> None:
        if self.delay.num_nodes != self.throughput.num_nodes:
            raise ValueError("class matrices must share dimensions")

    @property
    def num_nodes(self) -> int:
        """Matrix dimension ``N``."""
        return self.delay.num_nodes

    @property
    def total(self) -> float:
        """Total volume across both classes."""
        return self.delay.total + self.throughput.total

    @property
    def delay_fraction(self) -> float:
        """Share of total volume carried by the delay class."""
        total = self.total
        return self.delay.total / total if total > 0 else 0.0

    def scaled(self, factor: float) -> "DtrTraffic":
        """Scale both class matrices by the same factor."""
        return DtrTraffic(
            delay=self.delay.scaled(factor),
            throughput=self.throughput.scaled(factor),
        )


def dtr_traffic(
    num_nodes: int,
    rng: np.random.Generator,
    total_volume: float,
    delay_fraction: float = DEFAULT_DELAY_FRACTION,
) -> DtrTraffic:
    """Generate the delay / throughput matrix pair of one instance.

    The two matrices use independent gravity masses (different
    applications, different hot destinations) and split the total volume
    ``delay_fraction : 1 - delay_fraction``.
    """
    if not 0 < delay_fraction < 1:
        raise ValueError("delay_fraction must lie in (0, 1)")
    delay = gravity_matrix(
        num_nodes, rng, total_volume * delay_fraction, name="delay"
    )
    throughput = gravity_matrix(
        num_nodes, rng, total_volume * (1.0 - delay_fraction), name="throughput"
    )
    return DtrTraffic(delay=delay, throughput=throughput)
