"""Traffic-uncertainty models of Section V-F.

Two families:

* :func:`gaussian_fluctuation` — measurement error / random fluctuation:
  each demand is perturbed by a zero-mean Gaussian whose standard
  deviation is ``eps`` times the demand (paper: ε = 0.2, i.e. ±40 % with
  ≈95 % likelihood), truncated at zero;
* :func:`hotspot` — sporadic incidents: a few server nodes see their
  client traffic scaled by factors ν, μ ~ U[2, 6] in either the upload
  (client → server) or download (server → client) direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.traffic.gravity import DtrTraffic
from repro.traffic.matrix import TrafficMatrix


def gaussian_fluctuation(
    matrix: TrafficMatrix, eps: float, rng: np.random.Generator
) -> TrafficMatrix:
    """Perturb every demand by ``N(0, eps * r)``, truncated at zero."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    values = matrix.values
    noise = rng.normal(0.0, 1.0, size=values.shape) * (eps * values)
    return matrix.with_values(np.maximum(values + noise, 0.0))


def fluctuate_traffic(
    traffic: DtrTraffic, eps: float, rng: np.random.Generator
) -> DtrTraffic:
    """Apply :func:`gaussian_fluctuation` to both classes independently."""
    return DtrTraffic(
        delay=gaussian_fluctuation(traffic.delay, eps, rng),
        throughput=gaussian_fluctuation(traffic.throughput, eps, rng),
    )


class HotspotMode(Enum):
    """Direction of the traffic surge."""

    UPLOAD = "upload"  # client -> server entries are scaled
    DOWNLOAD = "download"  # server -> client entries are scaled


@dataclass(frozen=True)
class HotspotSpec:
    """Parameters of the hot-spot incident model.

    Attributes:
        server_fraction: share of nodes acting as servers (paper: 0.1).
        client_fraction: share of nodes acting as clients (paper: 0.5).
        factor_low: lower bound of the surge factor (paper: 2).
        factor_high: upper bound of the surge factor (paper: 6).
        mode: surge direction.
    """

    server_fraction: float = 0.1
    client_fraction: float = 0.5
    factor_low: float = 2.0
    factor_high: float = 6.0
    mode: HotspotMode = HotspotMode.DOWNLOAD

    def __post_init__(self) -> None:
        for name in ("server_fraction", "client_fraction"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must lie in (0, 1]")
        if not 1 <= self.factor_low <= self.factor_high:
            raise ValueError("need 1 <= factor_low <= factor_high")


def hotspot(
    traffic: DtrTraffic,
    rng: np.random.Generator,
    spec: HotspotSpec = HotspotSpec(),
) -> DtrTraffic:
    """One random hot-spot incident applied to both traffic classes.

    Servers and clients are disjoint node sets; each client is assigned to
    one random server, and the corresponding SD-pair demand (direction per
    ``spec.mode``) is multiplied by independent ν (delay class) and μ
    (throughput class) factors drawn from ``U[factor_low, factor_high]``.
    """
    n = traffic.num_nodes
    num_servers = max(1, round(spec.server_fraction * n))
    num_clients = max(1, round(spec.client_fraction * n))
    if num_servers + num_clients > n:
        raise ValueError("server and client sets exceed the node count")
    nodes = rng.permutation(n)
    servers = nodes[:num_servers]
    clients = nodes[num_servers : num_servers + num_clients]

    delay = np.array(traffic.delay.values, copy=True)
    tput = np.array(traffic.throughput.values, copy=True)
    for client in clients:
        server = int(servers[rng.integers(0, num_servers)])
        nu = rng.uniform(spec.factor_low, spec.factor_high)
        mu = rng.uniform(spec.factor_low, spec.factor_high)
        if spec.mode is HotspotMode.UPLOAD:
            s, t = int(client), server
        else:
            s, t = server, int(client)
        delay[s, t] *= nu
        tput[s, t] *= mu
    return DtrTraffic(
        delay=traffic.delay.with_values(delay),
        throughput=traffic.throughput.with_values(tput),
    )
