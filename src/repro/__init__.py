"""repro — reproduction of "Balancing Performance, Robustness and
Flexibility in Routing Systems" (Kwong, Guérin, Shaikh, Tao; ACM CoNEXT
2008 / IEEE TNSM 2010).

Public API tour:

* :class:`repro.core.RobustDtrOptimizer` — the two-phase robust DTR
  optimizer (the paper's contribution).
* :class:`repro.core.DtrEvaluator` — cost oracle for a weight setting
  under normal or failure conditions.
* :mod:`repro.topology` — RandTopo / NearTopo / PLTopo / ISP generators.
* :mod:`repro.traffic` — gravity traffic matrices, utilization scaling,
  uncertainty models.
* :mod:`repro.exp` — one module per paper table/figure.
"""

from repro.config import PAPER_CONFIG, OptimizerConfig
from repro.core import (
    CostPair,
    DtrEvaluator,
    RobustDtrOptimizer,
    RobustRoutingResult,
    WeightSetting,
)
from repro.routing import FailureModel, Network, RoutingEngine
from repro.traffic import DtrTraffic, TrafficMatrix

__version__ = "1.0.0"

__all__ = [
    "CostPair",
    "DtrEvaluator",
    "DtrTraffic",
    "FailureModel",
    "Network",
    "OptimizerConfig",
    "PAPER_CONFIG",
    "RobustDtrOptimizer",
    "RobustRoutingResult",
    "RoutingEngine",
    "TrafficMatrix",
    "WeightSetting",
    "__version__",
]
