"""Structural validation and repair of generated topologies.

Robust-routing experiments want topologies where single link failures do
not trivially disconnect the network, so generators call
:func:`ensure_connected` (mandatory) and optionally
:func:`ensure_two_edge_connected` (adds the cheapest bridge-covering
edges).
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def undirected_graph(
    num_nodes: int, edges: list[tuple[int, int]]
) -> nx.Graph:
    """Build an undirected NetworkX graph over ``0..num_nodes-1``."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    graph.add_edges_from(edges)
    return graph


def is_connected(num_nodes: int, edges: list[tuple[int, int]]) -> bool:
    """Whether the undirected edge set connects all nodes."""
    return nx.is_connected(undirected_graph(num_nodes, edges))


def is_two_edge_connected(
    num_nodes: int, edges: list[tuple[int, int]]
) -> bool:
    """Whether no single edge removal disconnects the graph."""
    graph = undirected_graph(num_nodes, edges)
    if not nx.is_connected(graph):
        return False
    return not list(nx.bridges(graph))


def ensure_connected(
    num_nodes: int,
    edges: list[tuple[int, int]],
    positions: np.ndarray,
) -> list[tuple[int, int]]:
    """Connect all components by adding the shortest inter-component edges.

    Returns a new edge list; the input is not modified.
    """
    graph = undirected_graph(num_nodes, edges)
    result = list(edges)
    components = [sorted(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        best: tuple[float, int, int] | None = None
        base = components[0]
        for other in components[1:]:
            for u in base:
                for v in other:
                    d = float(np.linalg.norm(positions[u] - positions[v]))
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        _, u, v = best
        result.append((u, v))
        graph.add_edge(u, v)
        components = [sorted(c) for c in nx.connected_components(graph)]
    return result


def ensure_two_edge_connected(
    num_nodes: int,
    edges: list[tuple[int, int]],
    positions: np.ndarray,
) -> list[tuple[int, int]]:
    """Remove bridges by adding the cheapest parallel-protecting edges.

    For every bridge ``(u, v)`` found, adds the geometrically shortest
    absent edge joining the two sides of the bridge.  Iterates until no
    bridge remains.  The graph must already be connected.
    """
    result = list(edges)
    graph = undirected_graph(num_nodes, result)
    if not nx.is_connected(graph):
        raise ValueError("graph must be connected first")
    while True:
        bridges = list(nx.bridges(graph))
        if not bridges:
            return result
        u, v = bridges[0]
        graph.remove_edge(u, v)
        side_u = nx.node_connected_component(graph, u)
        side_v = nx.node_connected_component(graph, v)
        graph.add_edge(u, v)
        best: tuple[float, int, int] | None = None
        for a in sorted(side_u):
            for b in sorted(side_v):
                if a == b or graph.has_edge(a, b):
                    continue
                d = float(np.linalg.norm(positions[a] - positions[b]))
                if best is None or d < best[0]:
                    best = (d, a, b)
        if best is None:
            # Fully dense sides: the bridge cannot be covered.
            return result
        _, a, b = best
        result.append((a, b))
        graph.add_edge(a, b)


def canonical_edges(
    edges: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Deduplicate and sort edges with ``u < v`` normalization."""
    seen = {tuple(sorted(e)) for e in edges if e[0] != e[1]}
    return sorted((int(u), int(v)) for u, v in seen)
