"""Topology substrate: the paper's four topology families plus delay tools."""

from repro.topology.base import (
    DEFAULT_CAPACITY_BPS,
    network_from_edge_delays,
    network_from_edges,
    target_edge_count,
)
from repro.topology.delays import (
    delays_in_range,
    propagation_diameter,
    propagation_distance_matrix,
    scale_to_diameter,
    scale_to_fraction_of_bound,
)
from repro.topology.isp import ISP_CITIES, ISP_LINKS, isp_city_names, isp_topology
from repro.topology.near import near_topology
from repro.topology.powerlaw import barabasi_albert_edges, powerlaw_topology
from repro.topology.rand import rand_topology

__all__ = [
    "DEFAULT_CAPACITY_BPS",
    "ISP_CITIES",
    "ISP_LINKS",
    "barabasi_albert_edges",
    "delays_in_range",
    "isp_city_names",
    "isp_topology",
    "near_topology",
    "network_from_edge_delays",
    "network_from_edges",
    "powerlaw_topology",
    "propagation_diameter",
    "propagation_distance_matrix",
    "rand_topology",
    "scale_to_diameter",
    "scale_to_fraction_of_bound",
    "target_edge_count",
]
