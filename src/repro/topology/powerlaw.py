"""PLTopo: power-law topology based on Barabási–Albert [3] (Section V-A1).

The paper's 30-node PLTopo has 162 arcs = 81 undirected edges, exactly the
BA process with 3 attachments per arriving node (3 * 27 = 81).  Node
positions are still uniform in the unit square, since delays derive from
Euclidean distance.
"""

from __future__ import annotations

import numpy as np

from repro.routing.network import Network
from repro.topology.base import DEFAULT_CAPACITY_BPS, network_from_edges
from repro.topology.geometry import uniform_positions
from repro.topology.validation import ensure_two_edge_connected


def barabasi_albert_edges(
    num_nodes: int, attachments: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Undirected BA edge list via preferential attachment.

    Starts from a clique on ``attachments + 1`` seed nodes (so early nodes
    have enough targets), then attaches each new node to ``attachments``
    distinct existing nodes chosen with probability proportional to their
    degree (implemented with the standard repeated-endpoint urn).
    """
    if not 1 <= attachments < num_nodes:
        raise ValueError("need 1 <= attachments < num_nodes")
    seed = attachments + 1
    edges: list[tuple[int, int]] = [
        (u, v) for u in range(seed) for v in range(u + 1, seed)
    ]
    # The urn holds one entry per edge endpoint: sampling uniformly from
    # it is preferential attachment.
    urn: list[int] = [node for edge in edges for node in edge]
    for new in range(seed, num_nodes):
        targets: set[int] = set()
        while len(targets) < attachments:
            targets.add(int(urn[rng.integers(0, len(urn))]))
        for t in sorted(targets):
            edges.append((t, new))
            urn.extend((t, new))
    return edges


def powerlaw_topology(
    num_nodes: int,
    attachments: int,
    rng: np.random.Generator,
    capacity: float = DEFAULT_CAPACITY_BPS,
    two_edge_connected: bool = True,
) -> Network:
    """Generate a PLTopo instance.

    Args:
        num_nodes: number of nodes.
        attachments: BA edges per arriving node (paper's [30, 162]: 3).
        rng: random generator (positions and attachment choices).
        capacity: per-arc capacity in bits/s.
        two_edge_connected: cover bridges after construction (BA with
            ``attachments >= 2`` is already 2-edge-connected in practice).

    Returns:
        A connected bidirectional :class:`Network` named ``"PLTopo"``.
    """
    positions = uniform_positions(num_nodes, rng)
    edges = barabasi_albert_edges(num_nodes, attachments, rng)
    if two_edge_connected:
        edges = ensure_two_edge_connected(num_nodes, edges, positions)
    return network_from_edges(
        positions, edges, capacity=capacity, name="PLTopo"
    )
