"""The 16-node, 70-arc North-American ISP backbone (Section V-A1).

The paper uses an unnamed "North American ISP backbone network of 16 nodes
and 70 links" with geographically-derived propagation delays.  We build a
stand-in with the same size: 16 major U.S. cities, 35 bidirectional links
(70 arcs) following typical backbone adjacency, 500 Mbps per arc, and
delays from great-circle distance at fiber speed.  DESIGN.md records this
substitution.
"""

from __future__ import annotations

import numpy as np

from repro.routing.arcs import Arc
from repro.routing.network import Network
from repro.topology.base import DEFAULT_CAPACITY_BPS
from repro.topology.geometry import geographic_delay_s, haversine_km

#: City name -> (latitude, longitude); index order defines node ids.
ISP_CITIES: tuple[tuple[str, float, float], ...] = (
    ("Seattle", 47.61, -122.33),
    ("Sunnyvale", 37.37, -122.04),
    ("LosAngeles", 34.05, -118.24),
    ("Phoenix", 33.45, -112.07),
    ("SaltLakeCity", 40.76, -111.89),
    ("Denver", 39.74, -104.99),
    ("Dallas", 32.78, -96.80),
    ("Houston", 29.76, -95.37),
    ("KansasCity", 39.10, -94.58),
    ("Chicago", 41.88, -87.63),
    ("Indianapolis", 39.77, -86.16),
    ("Atlanta", 33.75, -84.39),
    ("Miami", 25.76, -80.19),
    ("WashingtonDC", 38.91, -77.04),
    ("NewYork", 40.71, -74.01),
    ("Boston", 42.36, -71.06),
)

#: The 35 bidirectional links of the backbone (node-id pairs).
ISP_LINKS: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 4), (0, 5), (0, 9),
    (1, 2), (1, 4), (1, 5),
    (2, 3), (2, 4), (2, 6),
    (3, 5), (3, 6), (3, 7),
    (4, 5), (4, 8),
    (5, 6), (5, 8),
    (6, 7), (6, 8), (6, 11),
    (7, 11), (7, 12),
    (8, 9), (8, 10),
    (9, 10), (9, 14), (9, 15),
    (10, 11), (10, 13),
    (11, 12), (11, 13),
    (12, 13),
    (13, 14), (13, 15),
    (14, 15),
)


def isp_city_names() -> tuple[str, ...]:
    """City names in node-id order."""
    return tuple(city[0] for city in ISP_CITIES)


def isp_link_delay_s(u: int, v: int) -> float:
    """Propagation delay of the (u, v) backbone link, in seconds."""
    _, lat1, lon1 = ISP_CITIES[u]
    _, lat2, lon2 = ISP_CITIES[v]
    return geographic_delay_s(haversine_km(lat1, lon1, lat2, lon2))


def isp_topology(capacity: float = DEFAULT_CAPACITY_BPS) -> Network:
    """Build the 16-node, 70-arc ISP backbone.

    Args:
        capacity: per-arc capacity in bits/s (paper: 500 Mbps).

    Returns:
        A :class:`Network` named ``"ISP"`` whose positions store
        ``(longitude, latitude)`` for plotting.
    """
    arcs: list[Arc] = []
    for u, v in ISP_LINKS:
        delay = isp_link_delay_s(u, v)
        arcs.append(Arc(u, v, capacity, delay))
        arcs.append(Arc(v, u, capacity, delay))
    positions = np.asarray(
        [(lon, lat) for _, lat, lon in ISP_CITIES], dtype=np.float64
    )
    return Network(
        num_nodes=len(ISP_CITIES), arcs=arcs, positions=positions, name="ISP"
    )
