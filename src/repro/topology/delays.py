"""Propagation-delay assignment for generated topologies.

Section V-A1: "link propagation delays are determined by the Euclidean
distances between nodes and scaled proportionally to ensure a reasonable
match between the target SLA bound θ and the network diameter"; delays
"ranged roughly from 5 ms to 20 ms".

Two strategies are provided:

* :func:`delays_in_range` maps edge lengths affinely onto [5 ms, 20 ms];
* :func:`scale_to_diameter` rescales delays proportionally so the
  propagation-only network diameter (longest shortest-path delay over SD
  pairs) equals the target — this matches footnote 14 ("maximum end-to-end
  propagation delay was fixed to 25 ms").
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.routing.network import Network

#: Paper's approximate per-arc delay range (seconds).
DEFAULT_DELAY_RANGE = (0.005, 0.020)


def delays_in_range(
    lengths: np.ndarray,
    low: float = DEFAULT_DELAY_RANGE[0],
    high: float = DEFAULT_DELAY_RANGE[1],
) -> np.ndarray:
    """Affinely map edge lengths onto a delay interval.

    Degenerate inputs (all lengths equal) map to the interval midpoint.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    if lengths.size == 0:
        return lengths.copy()
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    span = lengths.max() - lengths.min()
    if span <= 0:
        return np.full_like(lengths, (low + high) / 2.0)
    return low + (lengths - lengths.min()) * (high - low) / span


def propagation_distance_matrix(network: Network) -> np.ndarray:
    """All-pairs shortest *propagation delay* between nodes.

    Uses the propagation delays themselves as arc costs, i.e. the best
    physically-achievable end-to-end delay ignoring queueing.
    """
    n = network.num_nodes
    graph = csr_matrix(
        (network.prop_delay, (network.arc_src, network.arc_dst)),
        shape=(n, n),
    )
    return dijkstra(graph, directed=True)


def propagation_diameter(network: Network) -> float:
    """Largest finite entry of :func:`propagation_distance_matrix`."""
    dist = propagation_distance_matrix(network)
    finite = dist[np.isfinite(dist)]
    off_diag = finite[finite > 0.0]
    if off_diag.size == 0:
        raise ValueError("network has no connected SD pair")
    return float(off_diag.max())


def scale_to_diameter(network: Network, target: float) -> Network:
    """Rescale all propagation delays so the delay diameter equals ``target``.

    Args:
        network: the topology whose delays to rescale.
        target: desired propagation-only diameter in seconds (the paper
            fixes 25 ms for RandTopo in Table V).

    Returns:
        A new :class:`Network` with proportionally scaled delays.
    """
    if target <= 0:
        raise ValueError("target diameter must be positive")
    current = propagation_diameter(network)
    factor = target / current
    return network.with_prop_delays(network.prop_delay * factor)


def scale_to_fraction_of_bound(
    network: Network, theta: float, fraction: float = 1.0
) -> Network:
    """Scale delays so the diameter is ``fraction * theta``.

    ``fraction`` < 1 leaves failure-tolerance margin; the Table V setup
    corresponds to ``fraction = 1.0`` with ``theta`` = 25 ms.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must lie in (0, 1]")
    return scale_to_diameter(network, theta * fraction)
