"""Geometric helpers shared by the topology generators.

Synthetic topologies place nodes uniformly at random in the unit square
(Section V-A1); the ISP topology uses real city coordinates, so both
Euclidean and great-circle distances live here.
"""

from __future__ import annotations

import numpy as np

#: Propagation speed of light in fiber, km/s (standard 2/3 of c).
FIBER_SPEED_KM_PER_S = 2.0e5

#: Mean Earth radius in km, for great-circle distances.
EARTH_RADIUS_KM = 6371.0


def uniform_positions(
    num_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    """Node coordinates drawn uniformly from the unit square."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    return rng.uniform(0.0, 1.0, size=(num_nodes, 2))


def euclidean_distances(positions: np.ndarray) -> np.ndarray:
    """Full pairwise Euclidean distance matrix for 2-D positions."""
    positions = np.asarray(positions, dtype=np.float64)
    diff = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def haversine_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance between two (lat, lon) points, in km."""
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlambda = np.radians(lon2 - lon1)
    a = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin(dlambda / 2.0) ** 2
    )
    return float(2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a)))


def geographic_delay_s(distance_km: float) -> float:
    """Propagation delay of a fiber span of the given length, seconds."""
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    return distance_km / FIBER_SPEED_KM_PER_S


def edge_lengths(
    positions: np.ndarray, edges: list[tuple[int, int]]
) -> np.ndarray:
    """Euclidean length of each undirected edge."""
    positions = np.asarray(positions, dtype=np.float64)
    out = np.empty(len(edges), dtype=np.float64)
    for i, (u, v) in enumerate(edges):
        out[i] = float(np.linalg.norm(positions[u] - positions[v]))
    return out
