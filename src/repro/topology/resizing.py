"""Capacity resizing of congested links (Section V-B).

For NearTopo the paper asks "whether robust optimization would fare
better, if links in the core of the network were resized to eliminate
SLA violations at least under normal conditions.  The resizing was done
by increasing the capacity of those congested links so as to bring down
their utilization below 90 % under normal conditions."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.network import Network


@dataclass(frozen=True)
class ResizeReport:
    """What a resizing pass changed.

    Attributes:
        resized_arcs: arc ids whose capacity grew.
        old_capacity: their previous capacities.
        new_capacity: their new capacities.
        max_utilization_before: network max utilization pre-resize.
        max_utilization_after: and post-resize (same loads).
    """

    resized_arcs: tuple[int, ...]
    old_capacity: tuple[float, ...]
    new_capacity: tuple[float, ...]
    max_utilization_before: float
    max_utilization_after: float

    @property
    def num_resized(self) -> int:
        """How many arcs were upgraded."""
        return len(self.resized_arcs)


def resize_congested_links(
    network: Network,
    loads: np.ndarray,
    utilization_target: float = 0.9,
    symmetric: bool = True,
) -> tuple[Network, ResizeReport]:
    """Upgrade capacities so no arc exceeds the utilization target.

    Args:
        network: the topology.
        loads: per-arc loads (bits/s) under the routing used to judge
            congestion (normal conditions in the paper).
        utilization_target: post-resize per-arc utilization ceiling
            (paper: 0.9).
        symmetric: upgrade both directions of a physical link together
            (fibers are provisioned symmetrically).

    Returns:
        ``(resized_network, report)``.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (network.num_arcs,):
        raise ValueError("one load per arc required")
    if not 0 < utilization_target <= 1:
        raise ValueError("utilization_target must lie in (0, 1]")

    capacity = network.capacity.copy()
    needed = loads / utilization_target
    over = needed > capacity
    if symmetric:
        for group in network.link_groups:
            if any(over[a] for a in group):
                requirement = max(needed[a] for a in group)
                for a in group:
                    needed[a] = max(needed[a], requirement)
                    over[a] = needed[a] > capacity[a]

    resized = np.flatnonzero(over)
    old = capacity[resized]
    capacity[resized] = needed[resized]

    with np.errstate(divide="ignore", invalid="ignore"):
        before = float((loads / network.capacity).max())
        after = float((loads / capacity).max())
    report = ResizeReport(
        resized_arcs=tuple(int(a) for a in resized),
        old_capacity=tuple(float(c) for c in old),
        new_capacity=tuple(float(capacity[a]) for a in resized),
        max_utilization_before=before,
        max_utilization_after=after,
    )
    return network.with_capacities(capacity), report
