"""Shared builder turning undirected edge lists into :class:`Network`.

All synthetic generators produce (positions, undirected edges); this module
attaches capacities and distance-derived propagation delays and emits the
bidirectional directed network the paper's model expects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.arcs import Arc
from repro.routing.network import Network
from repro.topology.delays import DEFAULT_DELAY_RANGE, delays_in_range
from repro.topology.geometry import edge_lengths
from repro.topology.validation import canonical_edges

#: Paper's link capacity: 500 Mbps on every link.
DEFAULT_CAPACITY_BPS = 500e6


def network_from_edges(
    positions: np.ndarray,
    edges: Sequence[tuple[int, int]],
    capacity: float = DEFAULT_CAPACITY_BPS,
    delay_range: tuple[float, float] = DEFAULT_DELAY_RANGE,
    name: str = "topology",
) -> Network:
    """Build a bidirectional network from an undirected edge list.

    Args:
        positions: ``(N, 2)`` node coordinates.
        edges: undirected edges; duplicates and orientation are normalized.
        capacity: per-arc capacity in bits/s (paper: 500 Mbps).
        delay_range: per-arc propagation delays are edge lengths mapped
            affinely onto this interval (seconds).
        name: topology label.

    Returns:
        A strongly-connected-iff-the-edge-set-is :class:`Network` with two
        opposite arcs per edge sharing capacity and delay.
    """
    positions = np.asarray(positions, dtype=np.float64)
    norm_edges = canonical_edges(list(edges))
    lengths = edge_lengths(positions, norm_edges)
    delays = delays_in_range(lengths, *delay_range)
    arcs: list[Arc] = []
    for (u, v), delay in zip(norm_edges, delays):
        arcs.append(Arc(u, v, capacity, float(delay)))
        arcs.append(Arc(v, u, capacity, float(delay)))
    return Network(
        num_nodes=positions.shape[0],
        arcs=arcs,
        positions=positions,
        name=name,
    )


def network_from_edge_delays(
    positions: np.ndarray,
    edges: Sequence[tuple[int, int]],
    delays_s: Sequence[float],
    capacity: float = DEFAULT_CAPACITY_BPS,
    name: str = "topology",
) -> Network:
    """Like :func:`network_from_edges` but with explicit per-edge delays."""
    positions = np.asarray(positions, dtype=np.float64)
    norm_edges = canonical_edges(list(edges))
    if len(norm_edges) != len(edges):
        raise ValueError(
            "explicit delays require a duplicate-free canonical edge list"
        )
    if len(delays_s) != len(norm_edges):
        raise ValueError("one delay per edge required")
    arcs: list[Arc] = []
    for (u, v), delay in zip(norm_edges, delays_s):
        arcs.append(Arc(u, v, capacity, float(delay)))
        arcs.append(Arc(v, u, capacity, float(delay)))
    return Network(
        num_nodes=positions.shape[0],
        arcs=arcs,
        positions=positions,
        name=name,
    )


def target_edge_count(num_nodes: int, mean_degree: float) -> int:
    """Undirected edge budget realizing a mean (arc) degree.

    The paper counts directed arcs: a 30-node, 180-link RandTopo has mean
    node degree 6, i.e. ``edges = n * degree / 2``.
    """
    if mean_degree <= 0:
        raise ValueError("mean_degree must be positive")
    edges = round(num_nodes * mean_degree / 2.0)
    max_edges = num_nodes * (num_nodes - 1) // 2
    if edges < num_nodes - 1:
        raise ValueError(
            f"mean degree {mean_degree} cannot connect {num_nodes} nodes"
        )
    if edges > max_edges:
        raise ValueError("mean degree exceeds complete graph")
    return edges
