"""RandTopo: random graph of given average node degree (Section V-A1).

Nodes are placed uniformly in the unit square; edges are a uniform random
spanning tree (guaranteeing connectivity) plus uniformly random extra
edges up to the target edge budget.  Optionally bridges are covered so
single link failures cannot disconnect the graph.
"""

from __future__ import annotations

import numpy as np

from repro.routing.network import Network
from repro.topology.base import (
    DEFAULT_CAPACITY_BPS,
    network_from_edges,
    target_edge_count,
)
from repro.topology.geometry import uniform_positions
from repro.topology.validation import ensure_two_edge_connected


def random_spanning_tree_edges(
    num_nodes: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """A uniformly-grown random tree over ``0..num_nodes-1``.

    Each node after the first attaches to a uniformly random earlier node
    (random recursive tree), after a random relabeling so no node id is
    structurally special.
    """
    labels = rng.permutation(num_nodes)
    edges = []
    for i in range(1, num_nodes):
        j = int(rng.integers(0, i))
        edges.append((int(labels[i]), int(labels[j])))
    return edges


def rand_topology(
    num_nodes: int,
    mean_degree: float,
    rng: np.random.Generator,
    capacity: float = DEFAULT_CAPACITY_BPS,
    two_edge_connected: bool = True,
) -> Network:
    """Generate a RandTopo instance.

    Args:
        num_nodes: number of nodes.
        mean_degree: target mean node degree (arcs per node); the paper's
            30-node, 180-link RandTopo corresponds to degree 6.
        rng: random generator (controls positions and edges).
        capacity: per-arc capacity in bits/s.
        two_edge_connected: cover bridges so single link failures never
            disconnect the network (adds at most a few edges).

    Returns:
        A strongly connected bidirectional :class:`Network` named
        ``"RandTopo"``.
    """
    positions = uniform_positions(num_nodes, rng)
    budget = target_edge_count(num_nodes, mean_degree)
    edges = {tuple(sorted(e)) for e in random_spanning_tree_edges(num_nodes, rng)}

    candidates = [
        (u, v)
        for u in range(num_nodes)
        for v in range(u + 1, num_nodes)
        if (u, v) not in edges
    ]
    rng.shuffle(candidates)
    for u, v in candidates:
        if len(edges) >= budget:
            break
        edges.add((u, v))

    edge_list = sorted(edges)
    if two_edge_connected:
        edge_list = ensure_two_edge_connected(num_nodes, edge_list, positions)
    return network_from_edges(
        positions, edge_list, capacity=capacity, name="RandTopo"
    )
