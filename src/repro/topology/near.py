"""NearTopo: nodes connect to their closest neighbors (Section V-A1).

The construction unions symmetric k-nearest-neighbor edge sets for growing
``k`` until the edge budget is met, then trims the geometrically longest
non-bridge edges back to the budget.  The result is the paper's
low-path-diversity pathology: traffic between far-apart regions funnels
through a small set of "core" links.
"""

from __future__ import annotations

import numpy as np

from repro.routing.network import Network
from repro.topology.base import (
    DEFAULT_CAPACITY_BPS,
    network_from_edges,
    target_edge_count,
)
from repro.topology.geometry import euclidean_distances, uniform_positions
from repro.topology.validation import (
    ensure_connected,
    ensure_two_edge_connected,
    is_two_edge_connected,
    undirected_graph,
)

import networkx as nx


def knn_edges(
    positions: np.ndarray, k: int
) -> list[tuple[int, int]]:
    """Symmetric k-nearest-neighbor undirected edge set."""
    num_nodes = positions.shape[0]
    if not 1 <= k < num_nodes:
        raise ValueError("need 1 <= k < num_nodes")
    dist = euclidean_distances(positions)
    np.fill_diagonal(dist, np.inf)
    edges: set[tuple[int, int]] = set()
    for u in range(num_nodes):
        nearest = np.argsort(dist[u], kind="stable")[:k]
        for v in nearest:
            edges.add(tuple(sorted((u, int(v)))))
    return sorted(edges)


def _trim_to_budget(
    num_nodes: int,
    edges: list[tuple[int, int]],
    positions: np.ndarray,
    budget: int,
    protect_bridges: bool,
) -> list[tuple[int, int]]:
    """Drop the longest edges until the budget is met, keeping connectivity."""
    graph = undirected_graph(num_nodes, edges)
    dist = euclidean_distances(positions)
    by_length = sorted(
        edges, key=lambda e: (dist[e[0], e[1]], e), reverse=True
    )
    for u, v in by_length:
        if graph.number_of_edges() <= budget:
            break
        graph.remove_edge(u, v)
        ok = nx.is_connected(graph)
        if ok and protect_bridges:
            ok = not list(nx.bridges(graph))
        if not ok:
            graph.add_edge(u, v)
    return sorted(tuple(sorted(e)) for e in graph.edges())


def near_topology(
    num_nodes: int,
    mean_degree: float,
    rng: np.random.Generator,
    capacity: float = DEFAULT_CAPACITY_BPS,
    two_edge_connected: bool = True,
) -> Network:
    """Generate a NearTopo instance.

    Args:
        num_nodes: number of nodes.
        mean_degree: target mean node degree (arcs per node).
        rng: random generator (controls node positions).
        capacity: per-arc capacity in bits/s.
        two_edge_connected: cover bridges after construction.

    Returns:
        A connected bidirectional :class:`Network` named ``"NearTopo"``.
    """
    positions = uniform_positions(num_nodes, rng)
    budget = target_edge_count(num_nodes, mean_degree)

    k = 1
    edges = knn_edges(positions, k)
    while len(edges) < budget and k < num_nodes - 1:
        k += 1
        edges = knn_edges(positions, k)

    edges = ensure_connected(num_nodes, edges, positions)
    if two_edge_connected:
        edges = ensure_two_edge_connected(num_nodes, edges, positions)
    if len(edges) > budget:
        edges = _trim_to_budget(
            num_nodes, edges, positions, budget, two_edge_connected
        )
    if two_edge_connected and not is_two_edge_connected(num_nodes, edges):
        edges = ensure_two_edge_connected(num_nodes, edges, positions)
    return network_from_edges(
        positions, edges, capacity=capacity, name="NearTopo"
    )
