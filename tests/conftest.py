"""Shared fixtures for the test suite.

Fixtures build small deterministic instances so the full suite stays
fast; anything schedule-heavy uses the tiny search configuration from
:func:`tiny_config`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    OptimizerConfig,
    SamplingParams,
    SearchParams,
    WeightParams,
)
from repro.core.evaluation import DtrEvaluator
from repro.core.weights import WeightSetting
from repro.routing.arcs import Arc
from repro.routing.network import Network
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def square_network() -> Network:
    """A 4-node bidirectional square with one diagonal.

    Nodes 0-1-2-3 in a cycle plus the 0-2 diagonal; capacities 100 Mbps,
    propagation delays 1 ms on the ring and 1.5 ms on the diagonal.
    """
    edges = [
        (0, 1, 0.001),
        (1, 2, 0.001),
        (2, 3, 0.001),
        (3, 0, 0.001),
        (0, 2, 0.0015),
    ]
    arcs = []
    for u, v, delay in edges:
        arcs.append(Arc(u, v, 100e6, delay))
        arcs.append(Arc(v, u, 100e6, delay))
    return Network(4, arcs, name="square")


@pytest.fixture
def small_instance() -> tuple[Network, object]:
    """A 10-node RandTopo with scaled traffic (deterministic)."""
    gen = np.random.default_rng(7)
    network = scale_to_diameter(rand_topology(10, 4.0, gen), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(10, gen, 1.0), 0.4, "mean"
    )
    return network, traffic


@pytest.fixture
def tiny_config() -> OptimizerConfig:
    """Optimizer configuration with a minutes-scale search budget."""
    return OptimizerConfig(
        weights=WeightParams(w_min=1, w_max=12, q=0.7),
        search=SearchParams(
            phase1_diversification_interval=3,
            phase1_diversifications=1,
            phase2_diversification_interval=2,
            phase2_diversifications=1,
            improvement_cutoff=0.01,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=3,
            max_iterations=30,
        ),
        sampling=SamplingParams(
            tau=1, min_samples_per_link=2, max_extra_samples=400
        ),
        critical_fraction=0.2,
        keep_acceptable_settings=5,
    )


@pytest.fixture
def small_evaluator(small_instance, tiny_config) -> DtrEvaluator:
    """Evaluator over the small instance with the tiny configuration."""
    network, traffic = small_instance
    return DtrEvaluator(network, traffic, tiny_config)


@pytest.fixture
def random_setting(small_evaluator, rng) -> WeightSetting:
    """A random weight setting matching the small instance."""
    return WeightSetting.random(
        small_evaluator.network.num_arcs,
        small_evaluator.config.weights,
        rng,
    )
