"""Arm sharding: deterministic partition, stubs, artifact merge parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exp.common import (
    ArmControl,
    ShardSpec,
    _arm_key,
    make_instance,
    run_arms,
    set_arm_control,
)


@pytest.fixture
def instances():
    return [make_instance("rand", 10, 4.0, seed=s) for s in (0, 1)]


def run_sequence(control, instances, config):
    previous = set_arm_control(control)
    try:
        return [
            run_arms(instance, config, seed=index)
            for index, instance in enumerate(instances)
        ]
    finally:
        set_arm_control(previous)


# ----------------------------------------------------------------------
# the partition itself
# ----------------------------------------------------------------------
def test_shard_spec_parse():
    spec = ShardSpec.parse("2/3")
    assert (spec.index, spec.count) == (1, 3)
    assert ShardSpec.parse("1/1") == ShardSpec(0, 1)
    for bad in ("0/2", "3/2", "a/b", "2", "2/"):
        with pytest.raises(ValueError):
            ShardSpec.parse(bad)


@pytest.mark.parametrize("count", [1, 2, 3, 5])
def test_partition_exhaustive_and_disjoint(count):
    """Every arm is owned by exactly one shard, for any shard count."""
    shards = [ShardSpec(i, count) for i in range(count)]
    for seq in range(20):
        owners = [s for s in shards if s.owns(seq)]
        assert len(owners) == 1
        assert owners[0].index == seq % count


def test_deferred_arm_returns_stub(instances, tiny_config):
    """A non-owned arm costs no optimization: the stub comes back
    immediately, marked deferred, with uniform weights."""
    control = ArmControl(shard=ShardSpec.parse("2/2"))
    result = run_sequence(control, instances[:1], tiny_config)[0]
    assert result.deferred
    assert np.all(result.robust_setting.delay == 1)
    assert np.all(result.robust_setting.tput == 1)
    assert len(result.all_failures) == 0
    assert control.deferred and not control.computed


def test_arm_keys_are_deterministic(instances, tiny_config):
    control_a = ArmControl(namespace="t")
    control_b = ArmControl(namespace="t")
    keys = [
        _arm_key(c, 0, instances[0], tiny_config, 0, None, False, None)
        for c in (control_a, control_b)
    ]
    assert keys[0] == keys[1]
    assert keys[0].startswith("t-000-")
    changed_seed = _arm_key(
        control_a, 0, instances[0], tiny_config, 1, None, False, None
    )
    assert changed_seed != keys[0]
    changed_instance = _arm_key(
        control_a, 0, instances[1], tiny_config, 0, None, False, None
    )
    assert changed_instance != keys[0]


# ----------------------------------------------------------------------
# artifact store + merge
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sharded_merge_is_bit_identical(tmp_path, instances, tiny_config):
    """Shards computed independently (in either order), merged through
    the artifact store, reproduce the unsharded results bitwise."""
    reference = run_sequence(ArmControl(), instances, tiny_config)

    store = tmp_path / "store"
    # Compute shard 2 BEFORE shard 1: the merge must not care about
    # artifact arrival order.
    for spec in ("2/2", "1/2"):
        control = ArmControl(shard=ShardSpec.parse(spec), store=store)
        run_sequence(control, instances, tiny_config)
        assert len(control.computed) + len(control.loaded) + len(
            control.deferred
        ) == len(instances)

    merge_control = ArmControl(store=store)
    merged = run_sequence(merge_control, instances, tiny_config)
    assert merge_control.computed == []
    assert merge_control.deferred == []
    assert len(merge_control.loaded) == len(instances)
    for got, want in zip(merged, reference):
        assert not got.deferred
        assert np.array_equal(
            got.robust_setting.delay, want.robust_setting.delay
        )
        assert np.array_equal(
            got.robust_setting.tput, want.robust_setting.tput
        )
        assert np.array_equal(
            got.regular_setting.delay, want.regular_setting.delay
        )
        assert got.phase2.best_kfail == want.phase2.best_kfail
        assert got.phase1.best_cost == want.phase1.best_cost


@pytest.mark.slow
def test_store_loads_instead_of_recomputing(
    tmp_path, instances, tiny_config
):
    store = tmp_path / "store"
    first = ArmControl(store=store)
    results = run_sequence(first, instances[:1], tiny_config)
    assert len(first.computed) == 1

    second = ArmControl(store=store)
    again = run_sequence(second, instances[:1], tiny_config)
    assert second.loaded == first.computed
    assert second.computed == []
    assert again[0].phase2.best_kfail == results[0].phase2.best_kfail


@pytest.mark.slow
def test_checkpointed_arm_resumes_through_run_arms(
    tmp_path, instances, tiny_config
):
    """run_arms threads checkpoint/resume into the optimizer: an
    interrupted arm resumes to the bit-identical result."""
    from repro.core.checkpoint import OptimizerInterrupted

    reference = run_sequence(ArmControl(), instances[:1], tiny_config)[0]

    ck_dir = tmp_path / "ck"
    interrupt = ArmControl(
        checkpoint_dir=ck_dir, checkpoint_every=3, interrupt_after=8
    )
    with pytest.raises(OptimizerInterrupted):
        run_sequence(interrupt, instances[:1], tiny_config)
    assert list(ck_dir.glob("*.ckpt"))

    resume = ArmControl(
        checkpoint_dir=ck_dir, checkpoint_every=3, resume=True
    )
    resumed = run_sequence(resume, instances[:1], tiny_config)[0]
    assert np.array_equal(
        resumed.robust_setting.delay, reference.robust_setting.delay
    )
    assert np.array_equal(
        resumed.robust_setting.tput, reference.robust_setting.tput
    )
    assert resumed.phase2.best_kfail == reference.phase2.best_kfail
