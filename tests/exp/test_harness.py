"""Tests for the experiment harness (presets, instances, runner)."""

import numpy as np
import pytest

from repro.exp.common import (
    DEFAULT_THETA,
    ExperimentResult,
    instance_rng,
    make_instance,
    make_topology,
)
from repro.exp.presets import DEFAULT, PAPER, QUICK, get_preset
from repro.exp.runner import EXPERIMENTS, load_experiment
from repro.topology.delays import propagation_diameter


class TestPresets:
    def test_lookup_by_name(self):
        assert get_preset("quick") is QUICK
        assert get_preset("default") is DEFAULT
        assert get_preset("paper") is PAPER

    def test_passthrough(self):
        assert get_preset(QUICK) is QUICK

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown preset"):
            get_preset("warp")

    def test_scaled_nodes(self):
        assert QUICK.scaled_nodes(30) == 12
        assert QUICK.scaled_nodes(10) == 10  # floor
        assert PAPER.scaled_nodes(30) == 30

    def test_paper_preset_has_paper_parameters(self):
        search = PAPER.config.search
        assert search.phase1_diversification_interval == 100
        assert search.phase1_diversifications == 20
        assert search.phase2_diversification_interval == 30
        assert search.phase2_diversifications == 10
        assert search.improvement_cutoff == 0.001
        assert PAPER.config.sampling.tau == 30
        assert PAPER.repeats == 5


class TestMakeTopology:
    @pytest.mark.parametrize("kind", ["rand", "near", "pl"])
    def test_synthetic_kinds(self, kind):
        net = make_topology(kind, 12, 4.0, seed=1)
        assert net.num_nodes == 12
        assert propagation_diameter(net) == pytest.approx(DEFAULT_THETA)

    def test_isp_ignores_size(self):
        net = make_topology("isp", 99, 9.0, seed=1)
        assert net.num_nodes == 16

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("mesh", 10, 4.0, seed=0)

    def test_diameter_fraction(self):
        net = make_topology("rand", 12, 4.0, seed=1, diameter_fraction=0.8)
        assert propagation_diameter(net) == pytest.approx(
            0.8 * DEFAULT_THETA
        )


class TestMakeInstance:
    def test_utilization_target(self):
        instance = make_instance(
            "rand", 12, 4.0, seed=3, target_utilization=0.4
        )
        from repro.traffic.scaling import (
            reference_weights,
            utilization_under_weights,
        )

        utilization = utilization_under_weights(
            instance.network,
            instance.traffic,
            reference_weights(instance.network),
            reference_weights(instance.network),
        )
        assert utilization.mean() == pytest.approx(0.4)

    def test_label_format(self):
        instance = make_instance("rand", 12, 4.0, seed=3)
        assert instance.label.startswith("RandTopo[12,")

    def test_deterministic_per_seed(self):
        a = make_instance("rand", 12, 4.0, seed=5)
        b = make_instance("rand", 12, 4.0, seed=5)
        np.testing.assert_array_equal(
            a.traffic.delay.values, b.traffic.delay.values
        )
        assert [x.endpoints for x in a.network.arcs] == [
            x.endpoints for x in b.network.arcs
        ]

    def test_streams_independent(self):
        r1 = instance_rng(1, 1).integers(0, 1 << 30)
        r2 = instance_rng(1, 2).integers(0, 1 << 30)
        assert r1 != r2


class TestRunner:
    def test_registry_covers_paper(self):
        expected = {
            "table1",
            "table1_load",
            "timing",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig3",
            "fig4",
            "fig5a",
            "fig5bc",
            "fig5d",
            "fig6",
            "fig7",
            "selectors",
            "resize",
            "diversity",
            "multi_failure",
            "scenarios",
            "ablation",
        }
        assert set(EXPERIMENTS) == expected

    def test_all_experiments_importable(self):
        for experiment_id in EXPERIMENTS:
            run = load_experiment(experiment_id)
            assert callable(run)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            load_experiment("table99")

    def test_cli_list(self, capsys):
        from repro.exp.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out


class TestExperimentResult:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            experiment_id="tableX",
            title="demo",
            preset="quick",
            rows=[{"a": 1.0}],
            context={"k": "v"},
        )
        text = result.render()
        assert "tableX" in text
        assert "demo" in text
        assert "k" in text
