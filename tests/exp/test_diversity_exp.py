"""Execution test for the (optimization-free, cheap) diversity experiment."""

from repro.exp.diversity import run


class TestDiversityExperiment:
    def test_runs_and_reports_all_families(self):
        result = run(preset="quick", seed=0)
        assert result.experiment_id == "diversity"
        assert len(result.rows) == 4
        names = {str(row["topology"]).split("[")[0] for row in result.rows}
        assert names == {"RandTopo", "NearTopo", "PLTopo", "ISP"}
        for row in result.rows:
            assert row["mean disjoint paths"] >= 1.0
            assert row["min disjoint paths"] >= 1

    def test_render(self):
        result = run(preset="quick", seed=1)
        text = result.render()
        assert "diversity" in text
        assert "RandTopo" in text
