"""Tests for table rendering and figure series output."""

import numpy as np
import pytest

from repro.analysis.series import (
    FigureData,
    Series,
    render_series,
    series_to_rows,
    sparkline,
)
from repro.analysis.tables import (
    format_value,
    mean_std_cell,
    render_kv,
    render_table,
)


class TestMeanStdCell:
    def test_single_value(self):
        assert mean_std_cell([1.234]) == "1.23"

    def test_mean_and_std(self):
        cell = mean_std_cell([1.0, 3.0])
        assert cell == "2.00 (1.41)"

    def test_empty(self):
        assert mean_std_cell([]) == "-"


class TestFormatValue:
    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_bool(self):
        assert format_value(True) == "yes"

    def test_int(self):
        assert format_value(7) == "7"

    def test_float(self):
        assert format_value(3.14159, digits=3) == "3.142"

    def test_nan(self):
        assert format_value(float("nan")) == "-"

    def test_sequence_becomes_mean_std(self):
        assert "(" in format_value((1.0, 2.0))


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [
            {"name": "a", "value": 1.0},
            {"name": "bbbb", "value": 22.5},
        ]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_missing_key_renders_dash(self):
        rows = [{"a": 1}, {"b": 2}]
        text = render_table(rows, columns=["a", "b"])
        assert "-" in text.splitlines()[-1]

    def test_empty(self):
        assert render_table([]) == "(empty table)"

    def test_render_kv(self):
        text = render_kv({"alpha": 1, "beta": "x"}, title="params")
        assert text.startswith("params")
        assert "alpha" in text and "beta" in text


class TestSeries:
    def test_stats(self):
        s = Series("x", np.asarray([1.0, 2.0, 3.0]))
        assert s.mean == pytest.approx(2.0)
        assert s.peak == pytest.approx(3.0)

    def test_figure_get(self):
        fig = FigureData(
            figure_id="f",
            xlabel="x",
            ylabel="y",
            series=(Series("a", np.ones(3)),),
        )
        assert fig.get("a").name == "a"
        with pytest.raises(KeyError):
            fig.get("b")


class TestSparkline:
    def test_length_capped(self):
        line = sparkline(np.arange(500, dtype=float), width=40)
        assert len(line) == 40

    def test_short_series_kept(self):
        line = sparkline(np.asarray([1.0, 2.0]), width=40)
        assert len(line) == 2

    def test_zero_series(self):
        line = sparkline(np.zeros(5))
        assert line == " " * 5

    def test_empty(self):
        assert sparkline(np.asarray([])) == ""

    def test_render_series_output(self):
        fig = FigureData(
            figure_id="fig9",
            xlabel="x",
            ylabel="y",
            series=(
                Series("a", np.arange(10, dtype=float)),
                Series("b", np.ones(10)),
            ),
        )
        text = render_series(fig)
        assert "[fig9]" in text
        assert "a" in text and "b" in text

    def test_series_to_rows(self):
        fig = FigureData(
            figure_id="fig9",
            xlabel="x",
            ylabel="y",
            series=(Series("a", np.arange(4, dtype=float)),),
        )
        rows = series_to_rows(fig)
        assert rows[0]["figure"] == "fig9"
        assert rows[0]["n"] == 4
