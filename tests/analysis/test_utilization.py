"""Tests for utilization statistics."""


from repro.analysis.utilization import (
    average_link_utilization,
    average_pair_max_utilization,
    max_delay_carrying_utilization,
    max_link_utilization,
)


class TestLinkUtilization:
    def test_mean_below_max(self, small_evaluator, random_setting):
        outcome = small_evaluator.evaluate_normal(random_setting)
        mean = average_link_utilization(outcome)
        peak = max_link_utilization(outcome)
        assert 0 < mean <= peak


class TestPairMaxUtilization:
    def test_within_network_bounds(self, small_evaluator, random_setting):
        value = average_pair_max_utilization(
            small_evaluator, random_setting
        )
        outcome = small_evaluator.evaluate_normal(random_setting)
        assert 0 < value <= max_link_utilization(outcome) + 1e-12

    def test_at_least_mean_of_used(self, small_evaluator, random_setting):
        # each pair's max utilization is at least the network mean of the
        # arcs it uses, so the average is positive for loaded networks
        assert (
            average_pair_max_utilization(small_evaluator, random_setting)
            > 0
        )


class TestDelayCarryingUtilization:
    def test_bounded_by_global_max(self, small_evaluator, random_setting):
        value = max_delay_carrying_utilization(
            small_evaluator, random_setting
        )
        outcome = small_evaluator.evaluate_normal(random_setting)
        assert value <= max_link_utilization(outcome) + 1e-12
        assert value > 0
