"""Tests for path-diversity and failure-margin analysis."""

import numpy as np
import pytest

from repro.analysis.diversity import (
    disjoint_path_counts,
    diversity_summary,
    ecmp_path_counts,
    stretch_path_counts,
)
from repro.analysis.margins import (
    margin_histogram_ms,
    margin_stats,
    pair_margins_s,
)
from repro.topology import near_topology, rand_topology


class TestEcmpPathCounts:
    def test_square_ecmp(self, square_network):
        counts = ecmp_path_counts(
            square_network, np.ones(square_network.num_arcs)
        )
        # 1 -> 3 has two equal-hop paths (via 0 and via 2)
        assert counts[1, 3] == 2
        assert counts[0, 1] == 1
        assert counts[0, 0] == 0


class TestDisjointPathCounts:
    def test_square_connectivity(self, square_network):
        counts = disjoint_path_counts(square_network)
        # node 1 and node 3 each have degree 2; others 3
        assert counts[1, 3] == 2
        assert counts[0, 2] == 3

    def test_symmetric_for_bidirectional_net(self, square_network):
        counts = disjoint_path_counts(square_network)
        np.testing.assert_allclose(counts, counts.T)


class TestStretchPathCounts:
    def test_at_least_one_when_connected(self, square_network):
        counts = stretch_path_counts(square_network, stretch=1.0)
        off_diag = ~np.eye(4, dtype=bool)
        assert np.all(counts[off_diag] >= 1)

    def test_monotone_in_stretch(self, square_network):
        tight = stretch_path_counts(square_network, stretch=1.0)
        loose = stretch_path_counts(square_network, stretch=3.0)
        assert np.all(loose >= tight)

    def test_invalid_stretch(self, square_network):
        with pytest.raises(ValueError):
            stretch_path_counts(square_network, stretch=0.9)


class TestDiversitySummary:
    def test_rand_beats_near(self):
        rand = rand_topology(16, 5.0, np.random.default_rng(3))
        near = near_topology(16, 5.0, np.random.default_rng(3))
        rand_summary = diversity_summary(rand)
        near_summary = diversity_summary(near)
        # the paper's central structural claim
        assert (
            rand_summary.mean_disjoint_paths
            >= near_summary.mean_disjoint_paths
        )

    def test_fields_positive(self, square_network):
        summary = diversity_summary(square_network)
        assert summary.mean_ecmp_paths >= 1
        assert summary.min_disjoint_paths >= 1
        assert summary.mean_stretch_paths >= 1


class TestMargins:
    def test_pair_margins(self, small_evaluator, random_setting):
        theta = small_evaluator.config.sla.theta
        outcome = small_evaluator.evaluate_normal(random_setting)
        margins = pair_margins_s(outcome, theta)
        n = small_evaluator.network.num_nodes
        assert margins.shape == (n * (n - 1),)
        # margin + delay == theta
        delays = outcome.pair_delays
        finite = delays[~np.isnan(delays)]
        np.testing.assert_allclose(margins, theta - finite)

    def test_margin_stats(self, small_evaluator, random_setting):
        theta = small_evaluator.config.sla.theta
        outcome = small_evaluator.evaluate_normal(random_setting)
        stats = margin_stats(outcome, theta)
        assert 0.0 <= stats.at_risk_fraction <= 1.0
        assert stats.p10_ms <= stats.mean_ms + 1e-9

    def test_histogram_counts_all_pairs(
        self, small_evaluator, random_setting
    ):
        theta = small_evaluator.config.sla.theta
        outcome = small_evaluator.evaluate_normal(random_setting)
        counts, edges = margin_histogram_ms(outcome, theta)
        n = small_evaluator.network.num_nodes
        assert counts.sum() == n * (n - 1)
        assert len(edges) == len(counts) + 1
