"""Tests for analysis metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    SlaViolationStats,
    beta_metric,
    normalized_series,
    phi_degradation_percent,
    phi_gap_percent,
    sorted_pair_delays_ms,
    utilization_increase_after_failure,
)
from repro.routing.failures import single_link_failures


@pytest.fixture
def failure_eval(small_evaluator, random_setting):
    failures = single_link_failures(small_evaluator.network)
    return small_evaluator.evaluate_failures(random_setting, failures)


class TestSlaViolationStats:
    def test_from_failures(self, failure_eval):
        stats = SlaViolationStats.from_failures(failure_eval)
        assert stats.mean == pytest.approx(
            np.mean(stats.per_scenario)
        )
        assert stats.worst == max(stats.per_scenario)
        assert stats.total == sum(stats.per_scenario)
        assert stats.top10_mean >= stats.mean

    def test_beta_is_mean(self, failure_eval):
        assert beta_metric(failure_eval) == pytest.approx(
            SlaViolationStats.from_failures(failure_eval).mean
        )


class TestPhiMetrics:
    def test_phi_gap_zero_for_self(self, failure_eval):
        assert phi_gap_percent(failure_eval, failure_eval) == 0.0

    def test_phi_degradation(self, small_evaluator, random_setting):
        normal = small_evaluator.evaluate_normal(random_setting)
        assert phi_degradation_percent(normal, normal) == 0.0


class TestUtilizationIncrease:
    def test_counts_surviving_arcs_only(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        normal = small_evaluator.evaluate_normal(random_setting)
        failed = small_evaluator.evaluate(random_setting, failures[0])
        count, mean_increase = utilization_increase_after_failure(
            normal, failed
        )
        alive = small_evaluator.network.num_arcs - len(
            failures[0].failed_arcs
        )
        assert 0 <= count <= alive
        if count:
            assert mean_increase > 0


class TestSeriesHelpers:
    def test_sorted_pair_delays(self, small_evaluator, random_setting):
        outcome = small_evaluator.evaluate_normal(random_setting)
        delays = sorted_pair_delays_ms(outcome)
        n = small_evaluator.network.num_nodes
        assert delays.shape == (n * (n - 1),)
        assert np.all(np.diff(delays) >= 0)
        assert delays.max() < 1000  # sane millisecond range

    def test_normalized_series(self):
        out = normalized_series(np.asarray([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(out, [0.25, 0.5, 1.0])

    def test_normalized_zero_series(self):
        out = normalized_series(np.zeros(3))
        np.testing.assert_array_equal(out, np.zeros(3))
