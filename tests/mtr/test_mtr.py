"""Tests for the k-class MTR generalization."""

import numpy as np
import pytest

from repro.config import (
    OptimizerConfig,
    SamplingParams,
    SearchParams,
    SlaParams,
    WeightParams,
)
from repro.core import DtrEvaluator, WeightSetting
from repro.mtr import (
    CostModel,
    CostVector,
    MtrClass,
    MtrEvaluator,
    MtrInstance,
    MtrOptimizer,
    MtrSampleStore,
    MtrWeightSetting,
    dtr_instance,
    estimate_mtr_criticality,
    select_mtr_critical_links,
)
from repro.routing.failures import single_link_failures
from repro.traffic import gravity_matrix


@pytest.fixture
def mtr_setup(small_instance, tiny_config):
    network, traffic = small_instance
    instance = dtr_instance(
        traffic.delay, traffic.throughput, tiny_config.sla
    )
    return network, traffic, instance, tiny_config


class TestCostVector:
    def test_lexicographic_order(self):
        assert CostVector((1.0, 9.0, 9.0)) < CostVector((2.0, 0.0, 0.0))
        assert CostVector((1.0, 2.0, 3.0)) < CostVector((1.0, 2.0, 4.0))

    def test_equality_tolerance(self):
        a = CostVector((1.0, 2.0))
        b = CostVector((1.0 + 1e-9, 2.0))
        assert a.equals(b)
        assert not a < b and not b < a

    def test_addition_and_total(self):
        total = CostVector.total(
            [CostVector((1.0, 2.0)), CostVector((3.0, 4.0))]
        )
        assert total == CostVector((4.0, 6.0))

    def test_total_empty_rejected(self):
        with pytest.raises(ValueError):
            CostVector.total([])

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            CostVector((1.0,)) < CostVector((1.0, 2.0))

    def test_relative_improvement(self):
        before = CostVector((100.0, 10.0))
        after = CostVector((90.0, 20.0))
        assert after.relative_improvement_over(before) == pytest.approx(0.1)
        assert before.relative_improvement_over(after) == 0.0


class TestMtrClasses:
    def test_priority_ordering(self, mtr_setup):
        _, _, instance, _ = mtr_setup
        assert [c.name for c in instance.classes] == ["delay", "throughput"]

    def test_sla_class_requires_params(self, small_instance):
        _, traffic = small_instance
        with pytest.raises(ValueError, match="SlaParams"):
            MtrClass("x", traffic.delay, CostModel.SLA, 0)

    def test_duplicate_names_rejected(self, small_instance, tiny_config):
        _, traffic = small_instance
        cls = MtrClass(
            "x", traffic.delay, CostModel.SLA, 0, tiny_config.sla
        )
        other = MtrClass("x", traffic.throughput, CostModel.LOAD, 1)
        with pytest.raises(ValueError, match="unique"):
            MtrInstance(classes=(cls, other))

    def test_class_lookup(self, mtr_setup):
        _, _, instance, _ = mtr_setup
        assert instance.class_named("delay").priority == 0
        with pytest.raises(KeyError):
            instance.class_named("video")


class TestMtrWeights:
    def test_random_and_copy(self, rng):
        params = WeightParams(w_max=15)
        ws = MtrWeightSetting.random(3, 20, params, rng)
        assert ws.num_classes == 3 and ws.num_arcs == 20
        cp = ws.copy()
        cp.set_arc(0, np.asarray([1, 1, 1]))
        assert not np.array_equal(cp.weights, ws.weights) or np.all(
            ws.arc_column(0) == 1
        )

    def test_failure_emulation_requires_all_classes(self, rng):
        params = WeightParams(w_max=20)
        ws = MtrWeightSetting.uniform(2, 5)
        ws.set_arc(1, np.asarray([20, 5]))
        assert not ws.emulates_failure(1, params)
        ws.set_arc(1, np.asarray([20, 15]))
        assert ws.emulates_failure(1, params)

    def test_fail_arc(self, rng):
        params = WeightParams(w_max=20)
        ws = MtrWeightSetting.uniform(3, 5)
        ws.fail_arc(2, params, rng)
        assert ws.emulates_failure(2, params)


class TestMtrEvaluatorMatchesDtr:
    def test_two_class_equivalence(self, mtr_setup, rng):
        network, traffic, instance, config = mtr_setup
        mtr_eval = MtrEvaluator(network, instance, config.delay)
        dtr_eval = DtrEvaluator(network, traffic, config)
        for seed in range(3):
            ws = WeightSetting.random(
                network.num_arcs,
                config.weights,
                np.random.default_rng(seed),
            )
            mws = MtrWeightSetting(np.stack([ws.delay, ws.tput]))
            mtr_cost = mtr_eval.evaluate_normal(mws).cost
            dtr_cost = dtr_eval.evaluate_normal(ws).cost
            assert mtr_cost.values[0] == pytest.approx(
                dtr_cost.lam, abs=1e-9
            )
            assert mtr_cost.values[1] == pytest.approx(
                dtr_cost.phi, rel=1e-12
            )

    def test_equivalence_under_failures(self, mtr_setup):
        network, traffic, instance, config = mtr_setup
        mtr_eval = MtrEvaluator(network, instance, config.delay)
        dtr_eval = DtrEvaluator(network, traffic, config)
        ws = WeightSetting.random(
            network.num_arcs, config.weights, np.random.default_rng(7)
        )
        mws = MtrWeightSetting(np.stack([ws.delay, ws.tput]))
        for scenario in single_link_failures(network):
            mtr_cost = mtr_eval.evaluate(mws, scenario).cost
            dtr_cost = dtr_eval.evaluate(ws, scenario).cost
            assert mtr_cost.values[0] == pytest.approx(
                dtr_cost.lam, abs=1e-9
            )
            assert mtr_cost.values[1] == pytest.approx(
                dtr_cost.phi, rel=1e-12
            )


class TestMtrCriticality:
    def test_store_and_estimate(self):
        store = MtrSampleStore(2, 3)
        store.add(0, CostVector((10.0, 1.0)))
        store.add(0, CostVector((50.0, 5.0)))
        store.add(1, CostVector((20.0, 2.0)))
        assert store.total_samples == 3
        assert store.counts().tolist() == [2, 1, 0]
        from repro.config import SamplingParams as SP

        criticality = estimate_mtr_criticality(store, SP())
        assert criticality.rho.shape == (2, 3)
        assert criticality.rho[0, 0] > 0  # wide samples on arc 0

    def test_arity_check(self):
        store = MtrSampleStore(2, 3)
        with pytest.raises(ValueError):
            store.add(0, CostVector((1.0,)))

    def test_selection_covers_dominant_arcs(self):
        from repro.config import SamplingParams as SP
        from repro.mtr.criticality import MtrCriticality

        rho = np.zeros((3, 10))
        rho[0, 4] = 5.0
        rho[1, 7] = 5.0
        rho[2, 1] = 5.0
        criticality = MtrCriticality(rho=rho, tails=np.ones((3, 10)))
        selection = select_mtr_critical_links(criticality, 3)
        assert {1, 4, 7}.issubset(set(selection.critical_arcs))


class TestMtrOptimizer:
    def test_three_class_end_to_end(self, small_instance):
        network, traffic = small_instance
        gen = np.random.default_rng(9)
        video = gravity_matrix(
            network.num_nodes, gen, traffic.delay.total / 2, name="video"
        )
        instance = MtrInstance(
            classes=(
                MtrClass(
                    "voice",
                    traffic.delay,
                    CostModel.SLA,
                    0,
                    SlaParams(theta=0.025),
                ),
                MtrClass(
                    "video",
                    video,
                    CostModel.SLA,
                    1,
                    SlaParams(theta=0.060),
                ),
                MtrClass("bulk", traffic.throughput, CostModel.LOAD, 2),
            )
        )
        config = OptimizerConfig(
            weights=WeightParams(w_max=12),
            search=SearchParams(
                phase1_diversification_interval=3,
                phase1_diversifications=1,
                phase2_diversification_interval=2,
                phase2_diversifications=1,
                arcs_per_iteration_fraction=0.4,
                round_iteration_cap_factor=2,
                max_iterations=15,
            ),
            sampling=SamplingParams(
                tau=1, min_samples_per_link=2, max_extra_samples=150
            ),
        )
        evaluator = MtrEvaluator(network, instance, config.delay)
        optimizer = MtrOptimizer(
            evaluator, config, rng=np.random.default_rng(11)
        )
        result = optimizer.run()
        assert result.regular_setting.num_classes == 3
        assert len(result.robust_kfail) == 3
        # robust normal cost satisfies the generalized constraints
        from repro.mtr import MtrConstraints

        constraints = MtrConstraints(
            star=result.regular_cost, chi=config.sampling.chi
        )
        assert constraints.satisfied_by(result.robust_normal_cost)
        assert len(result.selection) >= 1
