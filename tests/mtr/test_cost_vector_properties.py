"""Property tests: the k-component lexicographic order is lawful."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lexicographic import CostPair
from repro.mtr.cost_vector import CostVector


def vectors(k: int):
    return st.builds(
        lambda vals: CostVector(tuple(vals)),
        st.lists(
            st.floats(0, 1e6, allow_nan=False),
            min_size=k,
            max_size=k,
        ),
    )


class TestOrderLaws:
    @settings(max_examples=60, deadline=None)
    @given(a=vectors(3), b=vectors(3))
    def test_antisymmetry(self, a, b):
        assert not (a < b and b < a)

    @settings(max_examples=60, deadline=None)
    @given(a=vectors(3), b=vectors(3), c=vectors(3))
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @settings(max_examples=60, deadline=None)
    @given(a=vectors(3), b=vectors(3))
    def test_totality(self, a, b):
        assert (a < b) or (b < a) or a.equals(b)

    # CostVector applies the SLA absolute tolerance (1e-6) to every
    # component while CostPair's phi uses a relative-only tolerance, so
    # the two orderings agree except within 1e-6 of a tie; keep the
    # generated magnitudes away from that boundary.
    clear_floats = st.just(0.0) | st.floats(1e-3, 1e6)

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.tuples(clear_floats, clear_floats),
        b=st.tuples(clear_floats, clear_floats),
    )
    def test_two_component_matches_cost_pair(self, a, b):
        va, vb = CostVector(a), CostVector(b)
        pa, pb = CostPair(*a), CostPair(*b)
        assert (va < vb) == (pa < pb)
        assert (va > vb) == (pa > pb)

    # Addition monotonicity cannot hold near the relative-tolerance
    # boundary: adding a large common vector grows the comparison
    # scale, so a difference that was significant before the addition
    # (e.g. 1e-5 at scale 1) can lawfully collapse into a tie at scale
    # 1e4 (rel tol 1e-9 * scale) and hand the decision to a
    # lower-priority component.  Integer-valued components — the
    # domain the optimizer actually produces on integer weights — stay
    # clear of both tolerances (distinct values differ by >= 1, exact
    # ties stay exact under identical additions), where the law is
    # genuine.  Same boundary-avoidance policy as clear_floats above.
    integral_vectors = st.builds(
        lambda vals: CostVector(tuple(float(v) for v in vals)),
        st.lists(st.integers(0, 10**6), min_size=3, max_size=3),
    )

    @settings(max_examples=40, deadline=None)
    @given(a=integral_vectors, b=integral_vectors, c=integral_vectors)
    def test_addition_monotone(self, a, b, c):
        # adding the same vector to both sides preserves weak order
        if a < b:
            assert a + c <= b + c


class TestImprovementLaws:
    @settings(max_examples=40, deadline=None)
    @given(a=vectors(3), b=vectors(3))
    def test_improvement_nonnegative(self, a, b):
        assert b.relative_improvement_over(a) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(a=vectors(3))
    def test_self_improvement_zero(self, a):
        assert a.relative_improvement_over(a) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(a=vectors(3), b=vectors(3))
    def test_improvement_positive_iff_better(self, a, b):
        improvement = b.relative_improvement_over(a)
        if b.is_better_than(a):
            assert improvement > 0.0
        else:
            assert improvement == 0.0


class TestZeroAndTotal:
    def test_zero_is_identity(self):
        a = CostVector((1.0, 2.0, 3.0))
        assert (a + CostVector.zero(3)).equals(a)

    @settings(max_examples=30, deadline=None)
    @given(
        vs=st.lists(vectors(2), min_size=1, max_size=6),
    )
    def test_total_is_fold_of_addition(self, vs):
        total = CostVector.total(vs)
        manual = vs[0]
        for v in vs[1:]:
            manual = manual + v
        assert total.equals(manual)
