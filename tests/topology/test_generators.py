"""Tests for the four topology generators."""

import numpy as np
import pytest

from repro.topology import (
    isp_topology,
    near_topology,
    powerlaw_topology,
    rand_topology,
)
from repro.topology.isp import ISP_CITIES, ISP_LINKS, isp_city_names
from repro.topology.near import knn_edges
from repro.topology.powerlaw import barabasi_albert_edges
from repro.topology.rand import random_spanning_tree_edges


class TestRandTopo:
    def test_target_size(self, rng):
        net = rand_topology(30, 6.0, rng, two_edge_connected=False)
        assert net.num_nodes == 30
        assert net.num_arcs == 180

    def test_strongly_connected(self, rng):
        net = rand_topology(20, 4.0, rng)
        assert net.is_strongly_connected()

    def test_two_edge_connected_survives_any_link(self, rng):
        net = rand_topology(15, 4.0, rng, two_edge_connected=True)
        for group in net.link_groups:
            assert net.survives_arc_failures(list(group))

    def test_deterministic_under_seed(self):
        net1 = rand_topology(12, 4.0, np.random.default_rng(5))
        net2 = rand_topology(12, 4.0, np.random.default_rng(5))
        assert [a.endpoints for a in net1.arcs] == [
            a.endpoints for a in net2.arcs
        ]

    def test_positions_in_unit_square(self, rng):
        net = rand_topology(12, 4.0, rng)
        assert net.positions is not None
        assert np.all((net.positions >= 0) & (net.positions <= 1))

    def test_spanning_tree_connects(self, rng):
        edges = random_spanning_tree_edges(10, rng)
        assert len(edges) == 9
        import networkx as nx

        graph = nx.Graph(edges)
        graph.add_nodes_from(range(10))
        assert nx.is_connected(graph)


class TestNearTopo:
    def test_size_close_to_target(self, rng):
        net = near_topology(30, 6.0, rng)
        # trimming protects bridges, so a small overshoot is possible
        assert abs(net.num_arcs - 180) <= 12

    def test_connected(self, rng):
        net = near_topology(20, 5.0, rng)
        assert net.is_strongly_connected()

    def test_knn_edges_are_local(self, rng):
        positions = rng.uniform(0, 1, size=(20, 2))
        edges = knn_edges(positions, 2)
        # every node appears in at least 2 edges (its own k-NN)
        degrees = np.zeros(20, dtype=int)
        for u, v in edges:
            degrees[u] += 1
            degrees[v] += 1
        assert degrees.min() >= 2

    def test_knn_k_bounds(self, rng):
        positions = rng.uniform(0, 1, size=(5, 2))
        with pytest.raises(ValueError, match="1 <= k"):
            knn_edges(positions, 5)

    def test_longer_paths_than_rand(self):
        """NearTopo's locality should give longer hop paths than RandTopo."""
        import networkx as nx

        gen = np.random.default_rng(3)
        near = near_topology(30, 6.0, gen, two_edge_connected=False)
        gen = np.random.default_rng(3)
        rand = rand_topology(30, 6.0, gen, two_edge_connected=False)
        near_len = nx.average_shortest_path_length(
            near.to_networkx().to_undirected()
        )
        rand_len = nx.average_shortest_path_length(
            rand.to_networkx().to_undirected()
        )
        assert near_len > rand_len


class TestPLTopo:
    def test_ba_edge_count(self, rng):
        edges = barabasi_albert_edges(30, 3, rng)
        # clique on 4 seeds (6 edges) + 3 per remaining 26 nodes
        assert len(edges) == 6 + 3 * 26

    def test_paper_size(self, rng):
        net = powerlaw_topology(30, 3, rng, two_edge_connected=False)
        # 162 arcs in the paper (81 edges); the seed clique adds 3 extra
        assert net.num_arcs == 168

    def test_degree_skew(self, rng):
        net = powerlaw_topology(50, 2, rng, two_edge_connected=False)
        degrees = np.asarray([net.degree(v) for v in range(50)])
        # power-law graphs have hubs: max degree much larger than median
        assert degrees.max() >= 3 * np.median(degrees)

    def test_attachment_bounds(self, rng):
        with pytest.raises(ValueError, match="attachments"):
            barabasi_albert_edges(5, 5, rng)

    def test_connected(self, rng):
        net = powerlaw_topology(25, 3, rng)
        assert net.is_strongly_connected()


class TestIspTopology:
    def test_paper_dimensions(self):
        net = isp_topology()
        assert net.num_nodes == 16
        assert net.num_arcs == 70
        assert net.num_links == 35

    def test_matches_link_table(self):
        assert len(ISP_LINKS) == 35
        assert len(ISP_CITIES) == 16
        assert len(isp_city_names()) == 16

    def test_strongly_connected(self):
        assert isp_topology().is_strongly_connected()

    def test_survives_single_link_failures(self):
        net = isp_topology()
        for group in net.link_groups:
            assert net.survives_arc_failures(list(group))

    def test_geographic_delays_plausible(self):
        net = isp_topology()
        # spans from regional (~1 ms) to coast-to-coast (~20 ms)
        assert net.prop_delay.min() > 0.0005
        assert net.prop_delay.max() < 0.025

    def test_custom_capacity(self):
        net = isp_topology(capacity=1e9)
        assert np.all(net.capacity == 1e9)
