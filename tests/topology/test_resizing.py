"""Tests for congested-link capacity resizing (Section V-B)."""

import numpy as np
import pytest

from repro.topology.resizing import resize_congested_links


class TestResizeCongestedLinks:
    def test_noop_when_uncongested(self, square_network):
        loads = np.full(square_network.num_arcs, 10e6)  # 10% of 100 Mbps
        resized, report = resize_congested_links(square_network, loads)
        assert report.num_resized == 0
        np.testing.assert_array_equal(
            resized.capacity, square_network.capacity
        )

    def test_brings_utilization_to_target(self, square_network):
        loads = np.full(square_network.num_arcs, 10e6)
        loads[0] = 99e6  # 99% of the 100 Mbps arc
        resized, report = resize_congested_links(
            square_network, loads, utilization_target=0.9
        )
        assert 0 in report.resized_arcs
        utilization = loads / resized.capacity
        assert utilization.max() <= 0.9 + 1e-12
        assert report.max_utilization_after <= 0.9 + 1e-12
        assert report.max_utilization_before == pytest.approx(0.99)

    def test_symmetric_resizing_covers_reverse(self, square_network):
        loads = np.zeros(square_network.num_arcs)
        forward = square_network.arc_id(0, 1)
        backward = square_network.arc_id(1, 0)
        loads[forward] = 95e6
        resized, report = resize_congested_links(
            square_network, loads, symmetric=True
        )
        assert forward in report.resized_arcs
        assert backward in report.resized_arcs
        assert (
            resized.capacity[forward] == resized.capacity[backward]
        )

    def test_asymmetric_mode(self, square_network):
        loads = np.zeros(square_network.num_arcs)
        forward = square_network.arc_id(0, 1)
        loads[forward] = 95e6
        resized, report = resize_congested_links(
            square_network, loads, symmetric=False
        )
        assert report.resized_arcs == (forward,)

    def test_validation(self, square_network):
        with pytest.raises(ValueError, match="per arc"):
            resize_congested_links(square_network, np.ones(3))
        with pytest.raises(ValueError, match="utilization_target"):
            resize_congested_links(
                square_network,
                np.zeros(square_network.num_arcs),
                utilization_target=0.0,
            )

    def test_other_attributes_preserved(self, square_network):
        loads = np.zeros(square_network.num_arcs)
        loads[0] = 99e6
        resized, _ = resize_congested_links(square_network, loads)
        np.testing.assert_array_equal(
            resized.prop_delay, square_network.prop_delay
        )
        assert resized.num_arcs == square_network.num_arcs
