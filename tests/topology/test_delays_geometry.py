"""Tests for delay scaling and geometric helpers."""

import numpy as np
import pytest

from repro.topology.delays import (
    delays_in_range,
    propagation_diameter,
    propagation_distance_matrix,
    scale_to_diameter,
    scale_to_fraction_of_bound,
)
from repro.topology.geometry import (
    FIBER_SPEED_KM_PER_S,
    edge_lengths,
    euclidean_distances,
    geographic_delay_s,
    haversine_km,
    uniform_positions,
)
from repro.topology import rand_topology


class TestGeometry:
    def test_uniform_positions_shape(self, rng):
        pos = uniform_positions(7, rng)
        assert pos.shape == (7, 2)
        assert np.all((pos >= 0) & (pos <= 1))

    def test_euclidean_symmetry(self, rng):
        pos = uniform_positions(6, rng)
        dist = euclidean_distances(pos)
        np.testing.assert_allclose(dist, dist.T)
        assert np.all(np.diag(dist) == 0)

    def test_haversine_known_distance(self):
        # New York to Los Angeles is roughly 3940 km
        d = haversine_km(40.71, -74.01, 34.05, -118.24)
        assert 3800 < d < 4100

    def test_haversine_zero(self):
        assert haversine_km(42.0, -71.0, 42.0, -71.0) == pytest.approx(0.0)

    def test_geographic_delay(self):
        assert geographic_delay_s(FIBER_SPEED_KM_PER_S) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            geographic_delay_s(-1.0)

    def test_edge_lengths(self):
        pos = np.asarray([[0.0, 0.0], [3.0, 4.0]])
        lengths = edge_lengths(pos, [(0, 1)])
        assert lengths[0] == pytest.approx(5.0)


class TestDelaysInRange:
    def test_maps_to_interval(self, rng):
        lengths = rng.uniform(0, 2, 50)
        delays = delays_in_range(lengths, 0.005, 0.020)
        assert delays.min() == pytest.approx(0.005)
        assert delays.max() == pytest.approx(0.020)

    def test_monotone(self, rng):
        lengths = np.sort(rng.uniform(0, 2, 20))
        delays = delays_in_range(lengths)
        assert np.all(np.diff(delays) >= 0)

    def test_degenerate_input(self):
        delays = delays_in_range(np.full(5, 1.0), 0.004, 0.010)
        np.testing.assert_allclose(delays, 0.007)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            delays_in_range(np.ones(3), 0.02, 0.01)


class TestDiameterScaling:
    def test_scale_to_diameter(self, rng):
        net = rand_topology(15, 4.0, rng)
        scaled = scale_to_diameter(net, 0.025)
        assert propagation_diameter(scaled) == pytest.approx(0.025)

    def test_scaling_preserves_ratios(self, rng):
        net = rand_topology(15, 4.0, rng)
        scaled = scale_to_diameter(net, 0.05)
        ratio = scaled.prop_delay / net.prop_delay
        np.testing.assert_allclose(ratio, ratio[0])

    def test_fraction_of_bound(self, rng):
        net = rand_topology(15, 4.0, rng)
        scaled = scale_to_fraction_of_bound(net, 0.025, 0.8)
        assert propagation_diameter(scaled) == pytest.approx(0.02)

    def test_distance_matrix_diagonal_zero(self, rng):
        net = rand_topology(10, 4.0, rng)
        dist = propagation_distance_matrix(net)
        assert np.all(np.diag(dist) == 0)

    def test_invalid_target(self, rng):
        net = rand_topology(10, 4.0, rng)
        with pytest.raises(ValueError):
            scale_to_diameter(net, 0.0)
