"""Tests for topology validation and repair helpers."""

import pytest

from repro.topology.validation import (
    canonical_edges,
    ensure_connected,
    ensure_two_edge_connected,
    is_connected,
    is_two_edge_connected,
)


@pytest.fixture
def positions(rng):
    return rng.uniform(0, 1, size=(8, 2))


class TestConnectivityChecks:
    def test_connected_cycle(self):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        assert is_connected(5, edges)
        assert is_two_edge_connected(5, edges)

    def test_disconnected(self):
        assert not is_connected(4, [(0, 1), (2, 3)])

    def test_bridge_detected(self):
        # two triangles joined by one bridge
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
        assert is_connected(6, edges)
        assert not is_two_edge_connected(6, edges)


class TestEnsureConnected:
    def test_joins_components(self, positions):
        edges = [(0, 1), (2, 3), (4, 5), (6, 7)]
        fixed = ensure_connected(8, edges, positions)
        assert is_connected(8, fixed)
        assert set(edges).issubset(set(fixed))

    def test_noop_when_connected(self, positions):
        edges = [(i, (i + 1) % 8) for i in range(8)]
        fixed = ensure_connected(8, edges, positions)
        assert sorted(fixed) == sorted(edges)


class TestEnsureTwoEdgeConnected:
    def test_covers_bridge(self, positions):
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
        fixed = ensure_two_edge_connected(6, edges, positions[:6])
        assert is_two_edge_connected(6, fixed)

    def test_requires_connected_input(self, positions):
        with pytest.raises(ValueError, match="connected"):
            ensure_two_edge_connected(4, [(0, 1), (2, 3)], positions[:4])

    def test_noop_on_cycle(self, positions):
        edges = [(i, (i + 1) % 6) for i in range(6)]
        fixed = ensure_two_edge_connected(6, edges, positions[:6])
        assert sorted(fixed) == sorted(edges)


class TestCanonicalEdges:
    def test_dedup_and_orientation(self):
        edges = [(1, 0), (0, 1), (2, 1), (3, 3)]
        assert canonical_edges(edges) == [(0, 1), (1, 2)]

    def test_sorted_output(self):
        assert canonical_edges([(5, 4), (1, 0)]) == [(0, 1), (4, 5)]
